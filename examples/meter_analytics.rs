//! Meter analytics: the paper's §8.2.2 customer scenario end to end —
//! Database-Designer-driven physical design, bulk load, compression
//! reporting, and time-series queries with window functions.
//!
//! ```sh
//! cargo run -p vdb_examples --example meter_analytics
//! ```

use vdb_bench::workloads::meter;
use vdb_core::Engine;

fn main() -> vdb_core::DbResult<()> {
    let db = Engine::builder().open()?;
    db.execute("CREATE TABLE meter_data (metric INT, meter INT, ts TIMESTAMP, value FLOAT)")?;

    // Let the Database Designer pick projections and encodings from a
    // sample + the workload (§6.3), instead of hand-writing DDL.
    let sample = meter::generate(20_000, &vdb_bench::repro::scaled_meter_config(20_000));
    let rationales = db.run_designer(
        "meter_data",
        &sample,
        1_000_000,
        &[
            "SELECT meter, SUM(value) FROM meter_data WHERE metric = 3 GROUP BY meter",
            "SELECT metric, COUNT(*) FROM meter_data GROUP BY metric",
        ],
        vdb_designer::DesignPolicy::Balanced,
    )?;
    println!("Database Designer proposals:");
    for r in &rationales {
        println!("  - {r}");
    }

    let rows = meter::generate(200_000, &vdb_bench::repro::scaled_meter_config(200_000));
    db.load("meter_data", &rows)?;
    println!(
        "\nloaded {} rows; encoded footprint {} bytes ({:.2} B/row vs ~{:.0} B/row as CSV)",
        rows.len(),
        db.disk_bytes(),
        db.disk_bytes() as f64 / rows.len() as f64,
        meter::as_csv(&rows[..1000]).len() as f64 / 1000.0
    );

    // Top meters for one metric.
    let top = db.query(
        "SELECT meter, SUM(value) AS total FROM meter_data WHERE metric = 1 \
         GROUP BY meter ORDER BY total DESC LIMIT 5",
    )?;
    println!("\ntop meters for metric 1:");
    for r in &top {
        println!("  meter {} total {}", r[0], r[1]);
    }

    // Windowed time series: per-meter running total for one metric.
    let running = db.query(
        "SELECT meter, SUM(value) OVER (PARTITION BY meter ORDER BY ts) AS running \
         FROM meter_data WHERE metric = 1 AND meter < 2 ORDER BY meter LIMIT 8",
    )?;
    println!("\nrunning totals (metric 1, meters 0-1):");
    for r in &running {
        println!("  meter {} running {}", r[0], r[1]);
    }
    Ok(())
}
