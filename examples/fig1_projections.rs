//! Figure 1 example: the relationship between a table and its projections —
//! a super projection sorted by date and a narrow (cust, price) projection
//! sorted by cust, each with its own segmentation.
//!
//! ```sh
//! cargo run -p vdb_examples --example fig1_projections
//! ```

fn main() -> vdb_core::DbResult<()> {
    print!("{}", vdb_bench::repro::figure1(50_000)?);
    Ok(())
}
