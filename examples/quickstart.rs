//! Quickstart: create a table and projections, bulk load, query.
//!
//! ```sh
//! cargo run -p vdb_examples --example quickstart
//! ```

use vdb_core::{Engine, Value};

fn main() -> vdb_core::DbResult<()> {
    // A 3-node, K=1 cluster: every segmented projection keeps a buddy.
    let db = Engine::builder().nodes(3).k_safety(1).open()?;

    db.execute(
        "CREATE TABLE sales (
            sale_id INT NOT NULL,
            cust VARCHAR,
            price FLOAT,
            date TIMESTAMP
         ) PARTITION BY YEAR_MONTH(date)",
    )?;
    db.execute(
        "CREATE PROJECTION sales_super AS
            SELECT sale_id, cust, price, date FROM sales
            ORDER BY date SEGMENTED BY HASH(sale_id) ALL NODES",
    )?;

    // Bulk load goes straight to ROS containers (§7 of the paper).
    let rows: Vec<Vec<Value>> = (0..10_000i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Varchar(format!("cust{}", i % 100)),
                Value::Float(f64::from((i % 500) as i32) / 10.0),
                Value::Timestamp(vdb_types::date::timestamp_from_civil(
                    2012,
                    1 + (i % 6) as u32,
                    15,
                    0,
                    0,
                    0,
                )),
            ]
        })
        .collect();
    let epoch = db.load("sales", &rows)?;
    println!("loaded {} rows at epoch {epoch}", rows.len());

    // Trickle inserts land in the WOS; the tuple mover moves them out.
    db.execute("INSERT INTO sales VALUES (99999, 'walk-in', 42.0, 1330000000)")?;
    db.tuple_mover_tick()?;

    // Query: grouped aggregate with a filter and ordering.
    let result = db.execute(
        "SELECT cust, COUNT(*), SUM(price)
         FROM sales WHERE price > 40 GROUP BY cust ORDER BY cust LIMIT 5",
    )?;
    println!("{}", result.columns.join(" | "));
    for row in &result.rows {
        let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }

    // EXPLAIN shows the projection choice, pushdowns and the merge step.
    let plan = db.execute("EXPLAIN SELECT cust, COUNT(*) FROM sales GROUP BY cust")?;
    println!("\nplan:");
    for row in &plan.rows {
        println!("  {}", row[0]);
    }

    // Fast bulk delete of one month (file-level, §3.5).
    let dropped = db.execute("ALTER TABLE sales DROP PARTITION 201203")?;
    println!("\n{}", dropped.tag);
    let left = db.query("SELECT date, COUNT(*) FROM sales GROUP BY date LIMIT 1")?;
    println!("months remaining start at {}", left[0][0]);
    Ok(())
}
