//! Figure 3 example: the multi-threaded pipelined query plan — EXPLAIN
//! rendering of a grouped aggregate and the StorageUnion-resegmented
//! parallel GroupBy at 1 vs 4 lanes.
//!
//! ```sh
//! cargo run -p vdb_examples --example fig3_parallel_plan
//! ```

fn main() -> vdb_core::DbResult<()> {
    print!("{}", vdb_bench::repro::figure3(400_000)?);
    Ok(())
}
