//! Figure 2 example: physical storage layout within a node — month/year
//! partitions × local segments × ROS containers × column files — plus the
//! partition-pruned scan the layout enables.
//!
//! ```sh
//! cargo run -p vdb_examples --example fig2_storage_layout
//! ```

fn main() -> vdb_core::DbResult<()> {
    print!("{}", vdb_bench::repro::figure2(2_000)?);
    Ok(())
}
