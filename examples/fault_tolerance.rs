//! Fault tolerance walkthrough (§5.1–5.3): a kill-and-recover drill
//! against the durable WOS redo log, then K-safety, buddy-sourced reads,
//! loads during a node outage, incremental recovery, and the backup path.
//!
//! ```sh
//! cargo run -p vdb_examples --example fault_tolerance
//! ```

use vdb_core::{Engine, Value};

fn main() -> vdb_core::DbResult<()> {
    // §5.1: crash durability. The demo streams commits into a durable
    // database, injects a fault mid-moveout (the moment a real deployment
    // would take a `kill -9`), then reopens from disk and proves that
    // manifest attach + redo-log replay recover every committed row.
    println!("=== kill-and-recover (§5.1) ===");
    let root = std::env::temp_dir().join(format!("vdb_ft_demo_{}", std::process::id()));
    for line in vdb_tests::torture::kill_and_recover_demo(&root) {
        println!("{line}");
    }
    let _ = std::fs::remove_dir_all(&root);

    // §5.2–5.3: node failures in a K-safe cluster.
    println!("\n=== node failure and recovery (§5.2) ===");
    let db = Engine::builder().nodes(3).k_safety(1).open()?;
    db.execute("CREATE TABLE events (id INT, kind INT)")?;
    db.execute(
        "CREATE PROJECTION events_super AS SELECT id, kind FROM events ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )?;
    let rows: Vec<Vec<Value>> = (0..9_000i64)
        .map(|i| vec![Value::Integer(i), Value::Integer(i % 5)])
        .collect();
    db.load("events", &rows)?;

    let count = |db: &Engine| -> i64 {
        db.query("SELECT kind, COUNT(*) FROM events GROUP BY kind")
            .unwrap()
            .iter()
            .map(|r| r[1].as_i64().unwrap())
            .sum()
    };
    println!("all nodes up:        {} rows visible", count(&db));
    println!(
        "cluster available: {} (quorum {}, data {})",
        db.cluster().is_available(),
        db.cluster().has_quorum(),
        db.cluster().data_available()
    );

    // Take a hard-link backup snapshot while everything is healthy (§5.2).
    let files = db.cluster().backup("nightly")?;
    println!("backup 'nightly' hard-linked {files} files");

    // Kill node 1. Its WOS is lost; the buddy projections cover its rows.
    db.cluster().fail_node(1);
    println!("\nnode 1 failed");
    println!("still available:     {}", db.cluster().is_available());
    println!("buddy-sourced reads: {} rows visible", count(&db));

    // Loads keep flowing while the node is down.
    let more: Vec<Vec<Value>> = (9_000..10_000i64)
        .map(|i| vec![Value::Integer(i), Value::Integer(i % 5)])
        .collect();
    db.load("events", &more)?;
    println!("loaded 1000 rows during the outage: {} visible", count(&db));

    // Recover: truncate to the node's LGE, then historical + current phase
    // replay from the buddy (§5.2).
    let stats = db.cluster().recover_node(1)?;
    println!(
        "\nnode 1 recovered: {} projections, {} historical rows, {} current rows",
        stats.projections_recovered, stats.historical_rows, stats.current_rows
    );
    println!("after recovery:      {} rows visible", count(&db));

    // Losing two of three nodes breaks quorum: writes are refused.
    db.cluster().fail_node(0);
    db.cluster().fail_node(2);
    let refused = db.load("events", &[vec![Value::Integer(-1), Value::Integer(0)]]);
    println!(
        "\ntwo more failures -> available={}, load refused: {}",
        db.cluster().is_available(),
        refused.is_err()
    );
    Ok(())
}
