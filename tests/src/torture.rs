//! Trickle-load torture harness (§3.7, §5.1).
//!
//! Streams randomized WOS inserts and deletes from writer threads while the
//! tuple mover runs on its own cadence and reader threads issue generated
//! SQL — scans, filtered aggregates, multi-way joins, HAVING — asserting
//! snapshot-isolation invariants against a shadow model:
//!
//! * a reader's epoch snapshot never sees uncommitted rows,
//! * committed rows never disappear from a snapshot that should see them,
//! * aggregate totals reconcile exactly with the shadow at that epoch.
//!
//! The shadow keeps, per commit epoch, the cumulative per-group
//! `(COUNT, SUM(v))` state; a query that executed at snapshot `E` must
//! match the shadow entry with the greatest epoch `≤ E`, no matter how the
//! query raced concurrent commits or tuple-mover activity.
//!
//! [`kill_and_recover`] drives the other half of the story: build committed
//! state, arm one of the durability fault points
//! ([`vdb_storage::fault`]), crash mid-operation, reopen, and verify that
//! exactly the committed rows survive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vdb_core::{Database, Engine, QueryResult, Value};
use vdb_storage::fault;
use vdb_types::{Epoch, Expr, Row};

/// Distinct `grp` values in the torture table (and rows in each dimension).
pub const N_GRPS: usize = 8;

/// Harness knobs. `Default` is sized for a quick local run;
/// [`TortureConfig::from_env`] honours the CI environment variables.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// Wall-clock duration of the concurrent phase.
    pub secs: f64,
    /// Writer threads streaming inserts/deletes into the WOS.
    pub writers: usize,
    /// Reader threads issuing generated SQL.
    pub readers: usize,
    /// Tuple-mover cadence (forced moveout + threshold mergeout).
    pub mover_interval_ms: u64,
    /// Rows per trickle-insert commit.
    pub batch_rows: usize,
    /// Seed for all randomized decisions (workload is deterministic modulo
    /// thread scheduling).
    pub seed: u64,
    /// `Some(dir)` runs against a durable on-disk database (the directory
    /// is wiped first); `None` runs in memory.
    pub data_root: Option<PathBuf>,
}

impl Default for TortureConfig {
    fn default() -> TortureConfig {
        TortureConfig {
            secs: 2.0,
            writers: 2,
            readers: 2,
            mover_interval_ms: 25,
            batch_rows: 16,
            seed: 0xC0FFEE,
            data_root: None,
        }
    }
}

impl TortureConfig {
    /// Defaults overridden by `VDB_TORTURE_SECS`, `VDB_TORTURE_WRITERS`,
    /// `VDB_TORTURE_READERS`.
    pub fn from_env() -> TortureConfig {
        let mut c = TortureConfig::default();
        if let Some(secs) = env_parse::<f64>("VDB_TORTURE_SECS") {
            c.secs = secs;
        }
        if let Some(w) = env_parse::<usize>("VDB_TORTURE_WRITERS") {
            c.writers = w.max(1);
        }
        if let Some(r) = env_parse::<usize>("VDB_TORTURE_READERS") {
            c.readers = r.max(1);
        }
        c
    }
}

fn env_parse<T: std::str::FromStr>(var: &str) -> Option<T> {
    std::env::var(var).ok().and_then(|v| v.parse().ok())
}

/// What a torture run did and whether the invariants held.
#[derive(Debug)]
pub struct TortureReport {
    pub rows_ingested: u64,
    pub deletes: u64,
    pub commits: u64,
    pub queries: u64,
    pub elapsed_secs: f64,
    pub ingest_rows_per_sec: f64,
    pub query_p99_ms: f64,
    /// Invariant violations (empty = clean run). Capped at 64 entries.
    pub violations: Vec<String>,
    /// The committed table contents at shutdown per the shadow model,
    /// `(id, grp, v)` sorted by id — what a reopen must reproduce exactly.
    pub expected_rows: Vec<(i64, i64, i64)>,
}

/// Cumulative per-group aggregate state after some commit.
#[derive(Debug, Clone, Default, PartialEq)]
struct GrpAgg {
    count: i64,
    sum: i64,
}

/// The shadow model. Writers mutate it under lock *around* each DML commit,
/// so the per-epoch aggregate history is exact.
struct Shadow {
    /// id → (grp, v) for live committed rows.
    live: HashMap<i64, (i64, i64)>,
    /// Sampling pool of live ids (swap_remove on delete).
    ids: Vec<i64>,
    /// Commit epoch → cumulative per-group state visible at snapshots ≥ it.
    by_epoch: BTreeMap<u64, Vec<GrpAgg>>,
    /// Highest epoch recorded; readers wait for this to reach their
    /// snapshot before judging results.
    max_epoch: u64,
    next_id: i64,
}

impl Shadow {
    fn new(baseline_epoch: u64) -> Shadow {
        let zeros = vec![GrpAgg::default(); N_GRPS];
        let mut by_epoch = BTreeMap::new();
        by_epoch.insert(0, zeros.clone());
        // Schema-setup commits (dimension loads) happen before any writer
        // runs; the table is still empty at that snapshot.
        by_epoch.insert(baseline_epoch, zeros);
        Shadow {
            live: HashMap::new(),
            ids: Vec::new(),
            by_epoch,
            max_epoch: baseline_epoch,
            next_id: 0,
        }
    }

    /// Record the post-commit state for `epoch` by applying `mutate` to the
    /// latest state.
    fn record(&mut self, epoch: Epoch, mutate: impl FnOnce(&mut Vec<GrpAgg>)) {
        let mut state = self
            .by_epoch
            .values()
            .next_back()
            .cloned()
            .expect("shadow has a baseline entry");
        mutate(&mut state);
        self.by_epoch.insert(epoch.0, state);
        self.max_epoch = self.max_epoch.max(epoch.0);
    }

    fn state_at(&self, snapshot: Epoch) -> Vec<GrpAgg> {
        self.by_epoch
            .range(..=snapshot.0)
            .next_back()
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| vec![GrpAgg::default(); N_GRPS])
    }
}

struct Counters {
    rows_ingested: AtomicU64,
    deletes: AtomicU64,
    commits: AtomicU64,
    queries: AtomicU64,
}

fn violate(violations: &Mutex<Vec<String>>, msg: String) {
    let mut v = violations.lock().unwrap();
    if v.len() < 64 {
        v.push(msg);
    }
}

fn setup_schema(db: &Database) {
    db.execute("CREATE TABLE t (id INT, grp INT, v INT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    db.execute("CREATE TABLE d (grp INT, name VARCHAR)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION d_super AS SELECT grp, name FROM d ORDER BY grp \
         UNSEGMENTED ALL NODES",
    )
    .unwrap();
    db.execute("CREATE TABLE d2 (grp INT, region VARCHAR)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION d2_super AS SELECT grp, region FROM d2 ORDER BY grp \
         UNSEGMENTED ALL NODES",
    )
    .unwrap();
    let dims: Vec<Row> = (0..N_GRPS as i64)
        .map(|k| vec![Value::Integer(k), Value::Varchar(format!("g{k}"))])
        .collect();
    db.load("d", &dims).unwrap();
    let regions: Vec<Row> = (0..N_GRPS as i64)
        .map(|k| vec![Value::Integer(k), Value::Varchar(format!("r{}", k % 2))])
        .collect();
    db.load("d2", &regions).unwrap();
}

/// Run the torture workload. Panics only on harness/setup bugs; engine
/// misbehaviour is reported through [`TortureReport::violations`].
pub fn run(config: &TortureConfig) -> TortureReport {
    let db = Arc::new(match &config.data_root {
        Some(root) => {
            let _ = std::fs::remove_dir_all(root);
            Engine::builder()
                .data_dir(root)
                .open()
                .expect("open durable torture database")
        }
        None => Engine::builder()
            .open()
            .expect("open in-memory torture database"),
    });
    setup_schema(&db);
    let baseline = db.cluster().epochs.read_committed_snapshot();
    let shadow = Arc::new(Mutex::new(Shadow::new(baseline.0)));
    let stop = Arc::new(AtomicBool::new(false));
    let counters = Arc::new(Counters {
        rows_ingested: AtomicU64::new(0),
        deletes: AtomicU64::new(0),
        commits: AtomicU64::new(0),
        queries: AtomicU64::new(0),
    });
    let violations = Arc::new(Mutex::new(Vec::new()));

    let started = Instant::now();
    let mut handles = Vec::new();
    for w in 0..config.writers {
        let (db, shadow, stop, counters, violations) = (
            db.clone(),
            shadow.clone(),
            stop.clone(),
            counters.clone(),
            violations.clone(),
        );
        let (seed, batch_rows) = (config.seed.wrapping_add(w as u64), config.batch_rows);
        handles.push(std::thread::spawn(move || {
            writer_loop(
                &db,
                &shadow,
                &stop,
                &counters,
                &violations,
                seed,
                batch_rows,
            );
            Vec::new()
        }));
    }
    for r in 0..config.readers {
        let (db, shadow, stop, counters, violations) = (
            db.clone(),
            shadow.clone(),
            stop.clone(),
            counters.clone(),
            violations.clone(),
        );
        let seed = config.seed.wrapping_add(1000 + r as u64);
        handles.push(std::thread::spawn(move || {
            reader_loop(&db, &shadow, &stop, &counters, &violations, seed)
        }));
    }
    {
        let (db, stop, violations) = (db.clone(), stop.clone(), violations.clone());
        let interval = config.mover_interval_ms;
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(interval));
                if let Err(e) = db.tuple_mover_tick() {
                    if !fault::is_fault(&e) {
                        violate(&violations, format!("tuple mover tick failed: {e}"));
                    }
                }
            }
            Vec::new()
        }));
    }

    std::thread::sleep(Duration::from_secs_f64(config.secs));
    stop.store(true, Ordering::Relaxed);
    let mut latencies: Vec<Duration> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("torture thread panicked"));
    }
    let elapsed = started.elapsed().as_secs_f64();

    // Final reconciliation: the quiesced table must equal the shadow's live
    // set exactly, row for row.
    let sh = shadow.lock().unwrap();
    let mut expected_rows: Vec<(i64, i64, i64)> =
        sh.live.iter().map(|(&id, &(g, v))| (id, g, v)).collect();
    expected_rows.sort_unstable();
    drop(sh);
    match db.query("SELECT id, grp, v FROM t ORDER BY id") {
        Err(e) => violate(&violations, format!("final scan failed: {e}")),
        Ok(rows) => {
            let got: Vec<(i64, i64, i64)> = rows
                .iter()
                .map(|r| {
                    (
                        r[0].as_i64().unwrap_or(i64::MIN),
                        r[1].as_i64().unwrap_or(i64::MIN),
                        r[2].as_i64().unwrap_or(i64::MIN),
                    )
                })
                .collect();
            if got != expected_rows {
                violate(
                    &violations,
                    format!(
                        "final table state diverged from shadow: {} rows vs {} expected",
                        got.len(),
                        expected_rows.len()
                    ),
                );
            }
        }
    }

    latencies.sort_unstable();
    let query_p99_ms = if latencies.is_empty() {
        0.0
    } else {
        let idx = ((latencies.len() - 1) as f64 * 0.99) as usize;
        latencies[idx].as_secs_f64() * 1e3
    };
    let rows_ingested = counters.rows_ingested.load(Ordering::Relaxed);
    TortureReport {
        rows_ingested,
        deletes: counters.deletes.load(Ordering::Relaxed),
        commits: counters.commits.load(Ordering::Relaxed),
        queries: counters.queries.load(Ordering::Relaxed),
        elapsed_secs: elapsed,
        ingest_rows_per_sec: rows_ingested as f64 / elapsed.max(1e-9),
        query_p99_ms,
        violations: Arc::try_unwrap(violations)
            .map(|m| m.into_inner().unwrap())
            .unwrap_or_else(|arc| arc.lock().unwrap().clone()),
        expected_rows,
    }
}

fn writer_loop(
    db: &Database,
    shadow: &Mutex<Shadow>,
    stop: &AtomicBool,
    counters: &Counters,
    violations: &Mutex<Vec<String>>,
    seed: u64,
    batch_rows: usize,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    while !stop.load(Ordering::Relaxed) {
        // The shadow lock is held across the DML call AND the bookkeeping:
        // commits are serialized, so the per-epoch history is exact.
        let mut sh = shadow.lock().unwrap();
        if !sh.ids.is_empty() && rng.gen_bool(0.3) {
            let idx = rng.gen_range(0..sh.ids.len());
            let id = sh.ids[idx];
            let pred = Expr::eq(Expr::col(0, "id"), Expr::int(id));
            match db.cluster().delete("t", Some(&pred)) {
                Ok((epoch, n)) => {
                    if n != 1 {
                        violate(
                            violations,
                            format!("DELETE id={id} matched {n} rows (expected 1)"),
                        );
                    }
                    sh.ids.swap_remove(idx);
                    let (grp, v) = sh.live.remove(&id).expect("shadow row");
                    sh.record(epoch, |state| {
                        state[grp as usize].count -= 1;
                        state[grp as usize].sum -= v;
                    });
                    counters.deletes.fetch_add(1, Ordering::Relaxed);
                    counters.commits.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => violate(violations, format!("DELETE id={id} failed: {e}")),
            }
        } else {
            let mut rows = Vec::with_capacity(batch_rows);
            let mut adds = Vec::with_capacity(batch_rows);
            for _ in 0..batch_rows {
                let id = sh.next_id;
                sh.next_id += 1;
                let grp = rng.gen_range(0..N_GRPS as i64);
                let v = rng.gen_range(0..1000i64);
                rows.push(vec![
                    Value::Integer(id),
                    Value::Integer(grp),
                    Value::Integer(v),
                ]);
                adds.push((id, grp, v));
            }
            match db.load_wos("t", &rows) {
                Ok(epoch) => {
                    for &(id, grp, v) in &adds {
                        sh.live.insert(id, (grp, v));
                        sh.ids.push(id);
                    }
                    sh.record(epoch, |state| {
                        for &(_, grp, v) in &adds {
                            state[grp as usize].count += 1;
                            state[grp as usize].sum += v;
                        }
                    });
                    counters
                        .rows_ingested
                        .fetch_add(batch_rows as u64, Ordering::Relaxed);
                    counters.commits.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => violate(violations, format!("trickle INSERT failed: {e}")),
            }
        }
        drop(sh);
        std::thread::yield_now();
    }
}

#[derive(Debug, Clone, Copy)]
enum QueryKind {
    Total,
    PerGrp,
    Filtered(i64),
    Join,
    Having(i64),
}

fn reader_loop(
    db: &Database,
    shadow: &Mutex<Shadow>,
    stop: &AtomicBool,
    counters: &Counters,
    violations: &Mutex<Vec<String>>,
    seed: u64,
) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut latencies = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let kind = match rng.gen_range(0..5u32) {
            0 => QueryKind::Total,
            1 => QueryKind::PerGrp,
            2 => QueryKind::Filtered(rng.gen_range(0..N_GRPS as i64)),
            3 => QueryKind::Join,
            _ => QueryKind::Having(rng.gen_range(0..50_000i64)),
        };
        let sql = match kind {
            QueryKind::Total => "SELECT COUNT(*), SUM(v) FROM t".to_string(),
            QueryKind::PerGrp => {
                "SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp ORDER BY grp".to_string()
            }
            QueryKind::Filtered(k) => {
                format!("SELECT COUNT(*), SUM(v) FROM t WHERE grp = {k}")
            }
            QueryKind::Join => "SELECT d.name, COUNT(*), SUM(t.v) FROM t \
                 JOIN d ON t.grp = d.grp JOIN d2 ON t.grp = d2.grp \
                 GROUP BY d.name ORDER BY d.name"
                .to_string(),
            QueryKind::Having(x) => {
                format!("SELECT grp, SUM(v) FROM t GROUP BY grp HAVING SUM(v) >= {x} ORDER BY grp")
            }
        };
        let t0 = Instant::now();
        match db.query_snapshot(&sql) {
            Err(e) => violate(violations, format!("query failed: {sql}: {e}")),
            Ok((snapshot, result)) => {
                latencies.push(t0.elapsed());
                counters.queries.fetch_add(1, Ordering::Relaxed);
                match wait_for_state(shadow, snapshot) {
                    None => violate(
                        violations,
                        format!(
                            "snapshot {snapshot} never appeared in the shadow \
                             (query saw an uncommitted epoch?): {sql}"
                        ),
                    ),
                    Some(state) => check_result(kind, &state, &result, snapshot, &sql, violations),
                }
            }
        }
    }
    latencies
}

/// Wait (bounded) until every commit ≤ `snapshot` is recorded, then return
/// the shadow state at that snapshot. A query's snapshot is always a
/// committed epoch, so the only gap is the instant between a writer's
/// commit and its bookkeeping — both under the shadow lock.
fn wait_for_state(shadow: &Mutex<Shadow>, snapshot: Epoch) -> Option<Vec<GrpAgg>> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        {
            let sh = shadow.lock().unwrap();
            if sh.max_epoch >= snapshot.0 {
                return Some(sh.state_at(snapshot));
            }
        }
        if Instant::now() > deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn num_is(v: &Value, want: i64) -> bool {
    match v {
        Value::Integer(i) => *i == want,
        Value::Float(f) => *f == want as f64,
        Value::Null => want == 0,
        _ => false,
    }
}

fn check_result(
    kind: QueryKind,
    state: &[GrpAgg],
    result: &QueryResult,
    snapshot: Epoch,
    sql: &str,
    violations: &Mutex<Vec<String>>,
) {
    let total_count: i64 = state.iter().map(|g| g.count).sum();
    let total_sum: i64 = state.iter().map(|g| g.sum).sum();
    let fail = |detail: String| {
        violate(
            violations,
            format!(
                "snapshot {snapshot}: {detail} [{sql}] got {:?}",
                result.rows
            ),
        );
    };
    // Expected (label, count, sum) rows for the grouped query shapes, in
    // grp order (group labels g0..g7 sort identically).
    let grouped: Vec<(i64, i64, i64)> = state
        .iter()
        .enumerate()
        .filter(|(_, g)| g.count > 0)
        .map(|(k, g)| (k as i64, g.count, g.sum))
        .collect();
    match kind {
        QueryKind::Total => {
            if result.rows.len() != 1
                || !num_is(&result.rows[0][0], total_count)
                || !num_is(&result.rows[0][1], total_sum)
            {
                fail(format!("expected COUNT={total_count} SUM={total_sum}"));
            }
        }
        QueryKind::Filtered(k) => {
            let g = &state[k as usize];
            let empty_ok = g.count == 0 && result.rows.is_empty();
            if !empty_ok
                && (result.rows.len() != 1
                    || !num_is(&result.rows[0][0], g.count)
                    || !num_is(&result.rows[0][1], g.sum))
            {
                fail(format!("grp {k}: expected COUNT={} SUM={}", g.count, g.sum));
            }
        }
        QueryKind::PerGrp | QueryKind::Join => {
            let ok = result.rows.len() == grouped.len()
                && result.rows.iter().zip(&grouped).all(|(row, &(k, c, s))| {
                    let label_ok = match kind {
                        QueryKind::Join => row[0] == Value::Varchar(format!("g{k}")),
                        _ => num_is(&row[0], k),
                    };
                    label_ok && num_is(&row[1], c) && num_is(&row[2], s)
                });
            if !ok {
                fail(format!("expected per-group state {grouped:?}"));
            }
        }
        QueryKind::Having(x) => {
            let expect: Vec<(i64, i64)> = grouped
                .iter()
                .filter(|&&(_, _, s)| s >= x)
                .map(|&(k, _, s)| (k, s))
                .collect();
            let ok = result.rows.len() == expect.len()
                && result
                    .rows
                    .iter()
                    .zip(&expect)
                    .all(|(row, &(k, s))| num_is(&row[0], k) && num_is(&row[1], s));
            if !ok {
                fail(format!("expected HAVING(≥{x}) rows {expect:?}"));
            }
        }
    }
}

// ---------------------------------------------------------------------
// kill-and-recover
// ---------------------------------------------------------------------

/// Every production fault point, in pipeline order — the set
/// [`kill_and_recover`] is expected to survive.
pub const FAULT_POINTS: &[&str] = &[
    fault::WOS_BEFORE_DRAIN,
    fault::MOVEOUT_BEFORE_MANIFEST,
    fault::MOVEOUT_BEFORE_WOS_TRUNCATE,
    fault::MERGEOUT_AFTER_PICK,
    fault::MERGEOUT_BEFORE_MANIFEST,
    fault::MERGEOUT_BEFORE_CLEANUP,
    fault::COMMIT_BEFORE_MARKER,
    fault::DROP_PARTITION_BEFORE_MANIFEST,
    fault::DROP_PARTITION_BEFORE_CLEANUP,
    fault::TRUNCATE_BEFORE_MANIFEST,
];

/// Build committed state in a durable database under `root`, arm `point`,
/// crash mid-operation (the returned fault error + dropping the handle is
/// the simulated `kill -9`), reopen, and verify that exactly the committed
/// rows survived — no committed row lost, no uncommitted row visible.
pub fn kill_and_recover(root: &Path, point: &str) -> Result<(), String> {
    if point == fault::DROP_PARTITION_BEFORE_MANIFEST
        || point == fault::DROP_PARTITION_BEFORE_CLEANUP
    {
        return kill_and_recover_drop_partition(root, point);
    }
    if point == fault::TRUNCATE_BEFORE_MANIFEST {
        return kill_and_recover_truncate(root);
    }
    fault::disarm_all();
    let _ = std::fs::remove_dir_all(root);
    let fmt = |e: &dyn std::fmt::Display| format!("[{point}] {e}");
    let db = Engine::builder()
        .data_dir(root)
        .open()
        .map_err(|e| fmt(&e))?;
    db.execute("CREATE TABLE t (id INT, grp INT, v INT)")
        .map_err(|e| fmt(&e))?;
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .map_err(|e| fmt(&e))?;

    // Committed workload. Four direct-ROS loads stock a mergeout stratum
    // up to the merge threshold without running the tuple mover (the
    // armed tick below must find the merge still pending); the trailing
    // trickle load leaves committed rows in the WOS so the drain/moveout
    // points have work.
    let mut expected: Vec<(i64, i64, i64)> = Vec::new();
    let mut next_id = 0i64;
    let batch = |next_id: &mut i64, n: i64| -> Vec<Row> {
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                let id = *next_id + i;
                vec![
                    Value::Integer(id),
                    Value::Integer(id % N_GRPS as i64),
                    Value::Integer(id * 7 % 1000),
                ]
            })
            .collect();
        *next_id += n;
        rows
    };
    for _ in 0..4 {
        let rows = batch(&mut next_id, 25);
        for r in &rows {
            expected.push((
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            ));
        }
        db.load("t", &rows).map_err(|e| fmt(&e))?;
    }
    let pred = Expr::eq(Expr::col(0, "id"), Expr::int(3));
    let (_, n) = db.cluster().delete("t", Some(&pred)).map_err(|e| fmt(&e))?;
    if n != 1 {
        return Err(format!("[{point}] setup delete matched {n} rows"));
    }
    expected.retain(|&(id, _, _)| id != 3);
    let wos_rows = batch(&mut next_id, 5);
    for r in &wos_rows {
        expected.push((
            r[0].as_i64().unwrap(),
            r[1].as_i64().unwrap(),
            r[2].as_i64().unwrap(),
        ));
    }
    db.load_wos("t", &wos_rows).map_err(|e| fmt(&e))?;
    expected.sort_unstable();

    // Arm and trigger. `commit.before_marker` crashes an *uncommitted*
    // trickle load (whose rows must vanish on recovery); every other point
    // crashes inside the tuple mover.
    fault::arm(point);
    let outcome = if point == fault::COMMIT_BEFORE_MARKER {
        let doomed = batch(&mut next_id, 5);
        db.load_wos("t", &doomed).map(|_| ())
    } else {
        db.tuple_mover_tick()
    };
    match outcome {
        Err(e) if fault::is_fault(&e) => {}
        Err(e) => {
            fault::disarm_all();
            return Err(format!("[{point}] unexpected non-fault error: {e}"));
        }
        Ok(()) => {
            fault::disarm_all();
            return Err(format!("[{point}] fault point never fired"));
        }
    }
    drop(db); // the kill: in-memory state (incl. the volatile WOS) is gone

    let db = Engine::builder()
        .data_dir(root)
        .open()
        .map_err(|e| fmt(&e))?;
    let got: Vec<(i64, i64, i64)> = db
        .query("SELECT id, grp, v FROM t ORDER BY id")
        .map_err(|e| fmt(&e))?
        .iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            )
        })
        .collect();
    if got != expected {
        return Err(format!(
            "[{point}] recovery mismatch: {} rows recovered, {} expected; \
             first diff at {:?}",
            got.len(),
            expected.len(),
            got.iter().zip(&expected).find(|(a, b)| a != b),
        ));
    }
    // The recovered database must accept new commits.
    db.load_wos("t", &batch(&mut next_id, 1))
        .map_err(|e| fmt(&e))?;
    let count = db
        .execute("SELECT COUNT(*) FROM t")
        .map_err(|e| fmt(&e))?
        .scalar()
        .and_then(Value::as_i64);
    if count != Some(expected.len() as i64 + 1) {
        return Err(format!("[{point}] post-recovery insert lost: {count:?}"));
    }
    Ok(())
}

/// Drill for the two `ALTER TABLE ... DROP PARTITION` crash windows.
/// Crashing before the manifest rewrite must recover the partition intact;
/// crashing after it (before file cleanup) must recover with the partition
/// gone and its orphaned files garbage-collected. Either way, the live
/// handle is poisoned after the fault and must refuse to serve until the
/// reopen.
fn kill_and_recover_drop_partition(root: &Path, point: &str) -> Result<(), String> {
    fault::disarm_all();
    let _ = std::fs::remove_dir_all(root);
    let fmt = |e: &dyn std::fmt::Display| format!("[{point}] {e}");
    let db = Engine::builder()
        .data_dir(root)
        .open()
        .map_err(|e| fmt(&e))?;
    db.execute("CREATE TABLE t (id INT, grp INT, v INT) PARTITION BY grp")
        .map_err(|e| fmt(&e))?;
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .map_err(|e| fmt(&e))?;
    let rows: Vec<Row> = (0..60i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i % 3),
                Value::Integer(i * 7 % 1000),
            ]
        })
        .collect();
    db.load("t", &rows).map_err(|e| fmt(&e))?;
    let mut expected: Vec<(i64, i64, i64)> = rows
        .iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            )
        })
        .collect();
    expected.sort_unstable();

    fault::arm(point);
    match db.execute("ALTER TABLE t DROP PARTITION 1") {
        Err(e) if fault::is_fault(&e) => {}
        Err(e) => {
            fault::disarm_all();
            return Err(format!("[{point}] unexpected non-fault error: {e}"));
        }
        Ok(_) => {
            fault::disarm_all();
            return Err(format!("[{point}] fault point never fired"));
        }
    }
    // The store diverged from disk mid-operation; the poisoned handle must
    // refuse to serve rather than expose a half-dropped image.
    if db.query("SELECT COUNT(*) FROM t").is_ok() {
        return Err(format!(
            "[{point}] poisoned store served a query after a mid-drop crash"
        ));
    }
    drop(db); // the kill

    if point == fault::DROP_PARTITION_BEFORE_CLEANUP {
        // Manifest committed before the crash: the drop is durable.
        expected.retain(|&(_, grp, _)| grp != 1);
    }
    let db = Engine::builder()
        .data_dir(root)
        .open()
        .map_err(|e| fmt(&e))?;
    let got: Vec<(i64, i64, i64)> = db
        .query("SELECT id, grp, v FROM t ORDER BY id")
        .map_err(|e| fmt(&e))?
        .iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            )
        })
        .collect();
    if got != expected {
        return Err(format!(
            "[{point}] recovery mismatch: {} rows recovered, {} expected",
            got.len(),
            expected.len()
        ));
    }
    // The recovered database keeps working, including a clean retry of the
    // same partition drop.
    db.execute("ALTER TABLE t DROP PARTITION 2")
        .map_err(|e| fmt(&e))?;
    expected.retain(|&(_, grp, _)| grp != 2);
    let count = db
        .execute("SELECT COUNT(*) FROM t")
        .map_err(|e| fmt(&e))?
        .scalar()
        .and_then(Value::as_i64);
    if count != Some(expected.len() as i64) {
        return Err(format!("[{point}] post-recovery drop wrong: {count:?}"));
    }
    Ok(())
}

/// Drill for a crash *during recovery itself*: the reopen's
/// truncate-after-marker pass dies before its manifest commit, and the
/// next reopen must still converge to exactly the committed rows —
/// recovery is idempotent.
fn kill_and_recover_truncate(root: &Path) -> Result<(), String> {
    let point = fault::TRUNCATE_BEFORE_MANIFEST;
    fault::disarm_all();
    let _ = std::fs::remove_dir_all(root);
    let fmt = |e: &dyn std::fmt::Display| format!("[{point}] {e}");
    let db = Engine::builder()
        .data_dir(root)
        .open()
        .map_err(|e| fmt(&e))?;
    db.execute("CREATE TABLE t (id INT, grp INT, v INT)")
        .map_err(|e| fmt(&e))?;
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .map_err(|e| fmt(&e))?;
    let rows: Vec<Row> = (0..40i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i % N_GRPS as i64),
                Value::Integer(i),
            ]
        })
        .collect();
    db.load("t", &rows[..30]).map_err(|e| fmt(&e))?;
    db.load_wos("t", &rows[30..]).map_err(|e| fmt(&e))?;
    // Crash an uncommitted trickle load so the next recovery has post-marker
    // effects to truncate.
    fault::arm(fault::COMMIT_BEFORE_MARKER);
    let doomed: Vec<Row> = (100..105i64)
        .map(|i| vec![Value::Integer(i), Value::Integer(0), Value::Integer(0)])
        .collect();
    match db.load_wos("t", &doomed) {
        Err(e) if fault::is_fault(&e) => {}
        other => {
            fault::disarm_all();
            return Err(format!("[{point}] setup crash failed: {other:?}"));
        }
    }
    drop(db);

    // First reopen: recovery's truncation crashes before its manifest
    // commit.
    fault::arm(point);
    match Engine::builder().data_dir(root).open() {
        Err(e) if fault::is_fault(&e) => {}
        Err(e) => {
            fault::disarm_all();
            return Err(format!("[{point}] unexpected non-fault error: {e}"));
        }
        Ok(_) => {
            fault::disarm_all();
            return Err(format!("[{point}] fault point never fired"));
        }
    }

    // Second reopen: clean recovery to exactly the committed rows.
    let db = Engine::builder()
        .data_dir(root)
        .open()
        .map_err(|e| fmt(&e))?;
    let count = db
        .execute("SELECT COUNT(*) FROM t")
        .map_err(|e| fmt(&e))?
        .scalar()
        .and_then(Value::as_i64);
    if count != Some(40) {
        return Err(format!(
            "[{point}] recovery-of-recovery mismatch: {count:?} rows, 40 expected"
        ));
    }
    db.execute("INSERT INTO t VALUES (1000, 0, 0)")
        .map_err(|e| fmt(&e))?;
    let count = db
        .execute("SELECT COUNT(*) FROM t")
        .map_err(|e| fmt(&e))?
        .scalar()
        .and_then(Value::as_i64);
    if count != Some(41) {
        return Err(format!("[{point}] post-recovery insert lost: {count:?}"));
    }
    Ok(())
}

/// Scripted kill-and-recover walkthrough shared by
/// `examples/fault_tolerance.rs` and the integration suite: returns the
/// narration lines it printed-worthy, panicking if recovery misbehaves.
pub fn kill_and_recover_demo(root: &Path) -> Vec<String> {
    let mut lines = Vec::new();
    fault::disarm_all();
    let _ = std::fs::remove_dir_all(root);
    let db = Engine::builder().data_dir(root).open().unwrap();
    db.execute("CREATE TABLE t (id INT, grp INT, v INT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    let rows: Vec<Row> = (0..300i64)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i % N_GRPS as i64),
                Value::Integer(i),
            ]
        })
        .collect();
    db.load_wos("t", &rows[..200]).unwrap();
    db.tuple_mover_tick().unwrap(); // 200 rows now in a ROS container
    db.load_wos("t", &rows[200..]).unwrap(); // 100 committed rows in the WOS
    let (_, deleted) = db
        .cluster()
        .delete("t", Some(&Expr::eq(Expr::col(0, "id"), Expr::int(42))))
        .unwrap();
    assert_eq!(deleted, 1);
    let committed = 299i64;
    lines.push(format!(
        "committed {committed} rows (200 moved to ROS, 99 in the WOS redo log, 1 deleted)"
    ));

    fault::arm(fault::MOVEOUT_BEFORE_WOS_TRUNCATE);
    let err = db.tuple_mover_tick().unwrap_err();
    assert!(fault::is_fault(&err), "{err}");
    lines.push(format!("kill -9 mid-moveout: {err}"));
    drop(db);

    let db = Engine::builder().data_dir(root).open().unwrap();
    let count = db
        .execute("SELECT COUNT(*) FROM t")
        .unwrap()
        .scalar()
        .and_then(Value::as_i64)
        .unwrap();
    assert_eq!(count, committed, "recovery lost or resurrected rows");
    lines.push(format!(
        "reopened: manifest attach + redo replay recovered all {count} committed rows"
    ));
    db.execute("INSERT INTO t VALUES (1000, 0, 0)").unwrap();
    let count = db
        .execute("SELECT COUNT(*) FROM t")
        .unwrap()
        .scalar()
        .and_then(Value::as_i64)
        .unwrap();
    assert_eq!(count, committed + 1);
    lines.push("recovered database accepts new commits".to_string());
    lines
}
