//! Integration test package (tests live in `tests/`).

#![deny(rustdoc::broken_intra_doc_links)]
