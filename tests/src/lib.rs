//! Integration test package (tests live in `tests/`), plus the
//! trickle-load [`torture`] harness consumed by the suites, the bench
//! repro binary and the fault-tolerance example.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod torture;
