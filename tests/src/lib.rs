//! Integration test package (tests live in `tests/`).
