//! Storage-stack integration: encodings ↔ containers ↔ tuple mover ↔
//! epochs, including a property test that arbitrary load/delete/moveout/
//! mergeout interleavings preserve snapshot semantics.

use proptest::prelude::*;
use std::sync::Arc;
use vdb_storage::projection::ProjectionDef;
use vdb_storage::{MemBackend, ProjectionStore, RowLocation, TupleMover, TupleMoverConfig};
use vdb_types::{ColumnDef, DataType, Epoch, Row, TableSchema, Value};

fn store() -> ProjectionStore {
    let schema = TableSchema::new(
        "t",
        vec![
            ColumnDef::new("id", DataType::Integer),
            ColumnDef::new("v", DataType::Integer),
        ],
    );
    let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
    ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()))
}

#[derive(Debug, Clone)]
enum Op {
    LoadWos(u8),
    LoadRos(u8),
    Delete(u8),
    Moveout,
    Mergeout,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..20).prop_map(Op::LoadWos),
        (1u8..20).prop_map(Op::LoadRos),
        any::<u8>().prop_map(Op::Delete),
        Just(Op::Moveout),
        Just(Op::Mergeout),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A reference model (plain vectors with epochs) and the real storage
    /// stack must agree on the visible rows at EVERY epoch, under any
    /// interleaving of loads, deletes and tuple-mover activity.
    #[test]
    fn storage_matches_reference_model(ops in prop::collection::vec(arb_op(), 1..25)) {
        let mover = TupleMover::new(TupleMoverConfig {
            strata_base_bytes: 512,
            strata_factor: 4,
            merge_threshold: 3,
            ..Default::default()
        });
        let mut s = store();
        // Model: (row, commit epoch, delete epoch).
        let mut model: Vec<(Row, u64, Option<u64>)> = Vec::new();
        let mut epoch = 1u64;
        let mut next_id = 0i64;
        for op in &ops {
            match op {
                Op::LoadWos(n) | Op::LoadRos(n) => {
                    let rows: Vec<Row> = (0..*n as i64)
                        .map(|k| vec![Value::Integer(next_id + k), Value::Integer(k)])
                        .collect();
                    next_id += *n as i64;
                    for r in &rows {
                        model.push((r.clone(), epoch, None));
                    }
                    if matches!(op, Op::LoadWos(_)) {
                        s.insert_wos(rows, Epoch(epoch)).unwrap();
                    } else {
                        s.insert_direct_ros(rows, Epoch(epoch)).unwrap();
                    }
                    epoch += 1;
                }
                Op::Delete(sel) => {
                    // Delete every visible row whose id % 7 matches.
                    let target = i64::from(*sel % 7);
                    let snapshot = Epoch(epoch - 1);
                    let victims: Vec<RowLocation> = s
                        .visible_rows_with_locations(snapshot)
                        .unwrap()
                        .into_iter()
                        .filter(|(_, r)| r[0].as_i64().unwrap() % 7 == target)
                        .map(|(loc, _)| loc)
                        .collect();
                    for loc in victims {
                        s.mark_deleted(loc, Epoch(epoch)).unwrap();
                    }
                    for (r, ce, de) in model.iter_mut() {
                        if de.is_none()
                            && *ce < epoch
                            && r[0].as_i64().unwrap() % 7 == target
                        {
                            *de = Some(epoch);
                        }
                    }
                    epoch += 1;
                }
                Op::Moveout => {
                    s.moveout(Epoch(epoch - 1)).unwrap();
                }
                Op::Mergeout => {
                    mover.run_mergeout(&mut s, Epoch::ZERO).unwrap();
                }
            }
        }
        // Verify every epoch's snapshot.
        for e in 0..epoch {
            let snap = Epoch(e);
            let mut got = s.visible_rows(snap).unwrap();
            got.sort();
            let mut want: Vec<Row> = model
                .iter()
                .filter(|(_, ce, de)| *ce <= e && de.is_none_or(|d| d > e))
                .map(|(r, _, _)| r.clone())
                .collect();
            want.sort();
            prop_assert_eq!(got, want, "snapshot {} diverged", e);
        }
    }

    /// Tuple-mover equivalence: the same DML workload applied to a store
    /// with interleaved moveout/mergeout activity and to a store with NO
    /// tuple-mover activity at all must yield identical query results at
    /// every epoch — physical reorganization is invisible to snapshots.
    #[test]
    fn prop_tuple_mover(ops in prop::collection::vec(arb_op(), 1..30)) {
        let mover = TupleMover::new(TupleMoverConfig {
            strata_base_bytes: 512,
            strata_factor: 4,
            merge_threshold: 3,
            ..Default::default()
        });
        let mut moved = store();
        let mut still = store();
        let mut epoch = 1u64;
        let mut next_id = 0i64;
        for op in &ops {
            match op {
                Op::LoadWos(n) | Op::LoadRos(n) => {
                    let rows: Vec<Row> = (0..*n as i64)
                        .map(|k| vec![Value::Integer(next_id + k), Value::Integer(k)])
                        .collect();
                    next_id += *n as i64;
                    if matches!(op, Op::LoadWos(_)) {
                        moved.insert_wos(rows.clone(), Epoch(epoch)).unwrap();
                        still.insert_wos(rows, Epoch(epoch)).unwrap();
                    } else {
                        moved.insert_direct_ros(rows.clone(), Epoch(epoch)).unwrap();
                        still.insert_direct_ros(rows, Epoch(epoch)).unwrap();
                    }
                    epoch += 1;
                }
                Op::Delete(sel) => {
                    let target = i64::from(*sel % 7);
                    for s in [&mut moved, &mut still] {
                        let victims: Vec<RowLocation> = s
                            .visible_rows_with_locations(Epoch(epoch - 1))
                            .unwrap()
                            .into_iter()
                            .filter(|(_, r)| r[0].as_i64().unwrap() % 7 == target)
                            .map(|(loc, _)| loc)
                            .collect();
                        for loc in victims {
                            s.mark_deleted(loc, Epoch(epoch)).unwrap();
                        }
                    }
                    epoch += 1;
                }
                // Tuple-mover activity only on one side.
                Op::Moveout => {
                    moved.moveout(Epoch(epoch - 1)).unwrap();
                }
                Op::Mergeout => {
                    mover.run_mergeout(&mut moved, Epoch::ZERO).unwrap();
                }
            }
        }
        for e in 0..epoch {
            let mut a = moved.visible_rows(Epoch(e)).unwrap();
            let mut b = still.visible_rows(Epoch(e)).unwrap();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b, "epoch {} diverged after tuple-mover activity", e);
        }
    }

    /// AHM purge: after mergeout with an AHM, snapshots at or after the AHM
    /// are unchanged (older history may legitimately disappear).
    #[test]
    fn ahm_purge_preserves_recent_snapshots(
        deletes in prop::collection::vec(0u8..50, 1..10)
    ) {
        let mover = TupleMover::new(TupleMoverConfig {
            strata_base_bytes: 128,
            merge_threshold: 2,
            ..Default::default()
        });
        let mut s = store();
        let rows: Vec<Row> = (0..50i64)
            .map(|i| vec![Value::Integer(i), Value::Integer(i)])
            .collect();
        s.insert_direct_ros(rows, Epoch(1)).unwrap();
        let mut epoch = 2u64;
        for d in &deletes {
            let victims: Vec<RowLocation> = s
                .visible_rows_with_locations(Epoch(epoch - 1))
                .unwrap()
                .into_iter()
                .filter(|(_, r)| r[0].as_i64().unwrap() == i64::from(*d))
                .map(|(loc, _)| loc)
                .collect();
            for loc in victims {
                s.mark_deleted(loc, Epoch(epoch)).unwrap();
            }
            epoch += 1;
        }
        let ahm = Epoch(epoch / 2);
        let reference: Vec<Vec<Row>> = (ahm.0..epoch)
            .map(|e| {
                let mut v = s.visible_rows(Epoch(e)).unwrap();
                v.sort();
                v
            })
            .collect();
        mover.run_mergeout(&mut s, ahm).unwrap();
        for (i, e) in (ahm.0..epoch).enumerate() {
            let mut v = s.visible_rows(Epoch(e)).unwrap();
            v.sort();
            prop_assert_eq!(&v, &reference[i], "post-AHM snapshot {} changed", e);
        }
    }
}

/// Regression: a row deleted at epoch E must stay visible to a snapshot at
/// E-1 and disappear exactly at E — in the WOS, after the delete mark is
/// carried through moveout, and after mergeout rewrites the delete vector.
#[test]
fn delete_vector_respects_epoch_boundary() {
    let mover = TupleMover::new(TupleMoverConfig {
        strata_base_bytes: 128,
        merge_threshold: 2,
        ..Default::default()
    });
    let mut s = store();
    let rows: Vec<Row> = (0..4i64)
        .map(|i| vec![Value::Integer(i), Value::Integer(i * 10)])
        .collect();
    // Half the rows land in the WOS, half directly in ROS containers, so
    // the delete at epoch 3 exercises both DVWOS and DVROS paths.
    s.insert_wos(rows[..2].to_vec(), Epoch(1)).unwrap();
    s.insert_direct_ros(rows[2..].to_vec(), Epoch(2)).unwrap();

    let delete_epoch = 3u64;
    let victims: Vec<RowLocation> = s
        .visible_rows_with_locations(Epoch(delete_epoch - 1))
        .unwrap()
        .into_iter()
        .filter(|(_, r)| r[0].as_i64().unwrap() % 2 == 1)
        .map(|(loc, _)| loc)
        .collect();
    assert_eq!(victims.len(), 2);
    for loc in victims {
        s.mark_deleted(loc, Epoch(delete_epoch)).unwrap();
    }

    let ids_at = |s: &ProjectionStore, e: u64| -> Vec<i64> {
        let mut ids: Vec<i64> = s
            .visible_rows(Epoch(e))
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        ids.sort();
        ids
    };
    let check = |s: &ProjectionStore, stage: &str| {
        assert_eq!(
            ids_at(s, delete_epoch - 1),
            vec![0, 1, 2, 3],
            "{stage}: deleted rows must remain visible at epoch E-1"
        );
        assert_eq!(
            ids_at(s, delete_epoch),
            vec![0, 2],
            "{stage}: delete must take effect exactly at epoch E"
        );
    };
    check(&s, "wos-resident");

    s.moveout(Epoch(delete_epoch)).unwrap();
    check(&s, "post-moveout");

    mover.run_mergeout(&mut s, Epoch::ZERO).unwrap();
    check(&s, "post-mergeout");
}
