//! End-to-end SQL integration tests spanning every crate: parser → binder
//! → optimizer → cluster → exec → storage → encodings.

use vdb_core::{Engine, Value};
use vdb_types::Row;

fn sales_db(nodes: usize, k: usize) -> Engine {
    let db = if nodes == 1 {
        Engine::builder().open().unwrap()
    } else {
        Engine::builder().nodes(nodes).k_safety(k).open().unwrap()
    };
    db.execute("CREATE TABLE sales (id INT NOT NULL, region VARCHAR, amt FLOAT, ts TIMESTAMP)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION sales_super AS SELECT id, region, amt, ts FROM sales \
         ORDER BY ts, id SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    db
}

fn load_sales(db: &Engine, n: i64) {
    let regions = ["east", "west", "north", "south"];
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Varchar(regions[(i % 4) as usize].into()),
                Value::Float((i % 100) as f64),
                Value::Timestamp(1_330_000_000 + i * 60),
            ]
        })
        .collect();
    db.load("sales", &rows).unwrap();
}

#[test]
fn full_query_matrix_single_node_vs_cluster() {
    // The same queries must return identical results on a single node and
    // on a 3-node K-safe cluster (distribution transparency).
    let single = sales_db(1, 0);
    let cluster = sales_db(3, 1);
    load_sales(&single, 5000);
    load_sales(&cluster, 5000);
    let queries = [
        "SELECT region, COUNT(*), SUM(amt), MIN(amt), MAX(amt), AVG(amt) \
         FROM sales GROUP BY region ORDER BY region",
        "SELECT id, amt FROM sales WHERE amt > 95 AND id < 1000 ORDER BY id",
        "SELECT COUNT(*) FROM sales",
        "SELECT region, COUNT(DISTINCT amt) FROM sales GROUP BY region ORDER BY region",
        "SELECT DISTINCT region FROM sales ORDER BY region",
        "SELECT id, amt FROM sales ORDER BY amt DESC, id LIMIT 7",
        "SELECT region, COUNT(*) FROM sales WHERE ts BETWEEN 1330000000 AND 1330060000 \
         GROUP BY region ORDER BY region",
        "SELECT region, COUNT(*) FROM sales GROUP BY region HAVING COUNT(*) > 100 \
         ORDER BY region",
    ];
    for q in queries {
        let a = single.query(q).unwrap();
        let b = cluster.query(q).unwrap();
        assert_eq!(a, b, "query diverged between topologies: {q}");
        assert!(!a.is_empty(), "query returned nothing: {q}");
    }
}

#[test]
fn joins_and_star_queries() {
    let db = sales_db(3, 1);
    load_sales(&db, 2000);
    db.execute("CREATE TABLE regions (name VARCHAR, zone INT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION regions_super AS SELECT name, zone FROM regions \
         ORDER BY name UNSEGMENTED ALL NODES",
    )
    .unwrap();
    db.execute("INSERT INTO regions VALUES ('east', 1), ('west', 2), ('north', 1), ('south', 2)")
        .unwrap();
    let rows = db
        .query(
            "SELECT zone, COUNT(*), SUM(amt) FROM sales JOIN regions \
             ON sales.region = regions.name GROUP BY zone ORDER BY zone",
        )
        .unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1], Value::Integer(1000));
    assert_eq!(rows[1][1], Value::Integer(1000));
    // LEFT JOIN keeps unmatched dimension-less rows.
    db.execute("DELETE FROM regions WHERE name = 'east'")
        .unwrap();
    let left = db
        .query(
            "SELECT id, region, zone FROM sales LEFT JOIN regions \
             ON sales.region = regions.name WHERE id < 4 ORDER BY id",
        )
        .unwrap();
    assert_eq!(left.len(), 4);
    assert!(
        left.iter().any(|r| r[2].is_null()),
        "east rows get NULL zone"
    );
}

#[test]
fn dml_visibility_and_history() {
    let db = sales_db(1, 0);
    load_sales(&db, 100);
    let before = db.cluster().epochs.read_committed_snapshot();
    db.execute("DELETE FROM sales WHERE id < 50").unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM sales").unwrap()[0][0],
        Value::Integer(50)
    );
    // Historical snapshot still sees everything (epoch MVCC).
    assert_eq!(db.cluster().table_rows("sales", before).unwrap().len(), 100);
    db.execute("UPDATE sales SET amt = 0.5 WHERE id = 60")
        .unwrap();
    let got = db.query("SELECT amt FROM sales WHERE id = 60").unwrap();
    assert_eq!(got[0][0], Value::Float(0.5));
}

#[test]
fn tuple_mover_does_not_change_results() {
    let db = sales_db(1, 0);
    // Many small trickle inserts → WOS, then moveout + mergeout.
    for i in 0..20 {
        db.execute(&format!(
            "INSERT INTO sales VALUES ({i}, 'east', {i}.0, {})",
            1_330_000_000 + i
        ))
        .unwrap();
    }
    let before = db
        .query("SELECT region, SUM(amt) FROM sales GROUP BY region")
        .unwrap();
    db.tuple_mover_tick().unwrap();
    let after = db
        .query("SELECT region, SUM(amt) FROM sales GROUP BY region")
        .unwrap();
    assert_eq!(before, after);
}

#[test]
fn csv_loader_rejected_records() {
    let db = sales_db(1, 0);
    let report = vdb_core::load_csv(
        &db,
        "sales",
        "1,east,10.5,1330000000\nbad,west,1.0,0\n2,west,2.0,1330000001\n",
    )
    .unwrap();
    assert_eq!(report.loaded, 2);
    assert_eq!(report.rejected.len(), 1);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM sales").unwrap()[0][0],
        Value::Integer(2)
    );
}

#[test]
fn explain_shows_sip_and_projection_choice() {
    let db = sales_db(1, 0);
    load_sales(&db, 1000);
    db.execute("CREATE TABLE r (name VARCHAR, z INT)").unwrap();
    db.execute(
        "CREATE PROJECTION r_super AS SELECT name, z FROM r ORDER BY name \
         UNSEGMENTED ALL NODES",
    )
    .unwrap();
    db.execute("INSERT INTO r VALUES ('east', 1)").unwrap();
    let plan = db
        .execute(
            "EXPLAIN SELECT z, COUNT(*) FROM sales JOIN r ON sales.region = r.name \
             GROUP BY z",
        )
        .unwrap();
    let text: String = plan.rows.iter().map(|r| format!("{}\n", r[0])).collect();
    assert!(text.contains("HashJoin"), "{text}");
    assert!(text.contains("SIP"), "{text}");
    assert!(text.contains("sales_super"), "{text}");
}

#[test]
fn error_paths_are_clean() {
    let db = sales_db(1, 0);
    assert!(db.execute("SELECT nope FROM sales").is_err());
    assert!(db.execute("SELECT * FROM missing_table").is_err());
    assert!(
        db.execute("CREATE TABLE sales (x INT)").is_err(),
        "duplicate"
    );
    assert!(db.execute("INSERT INTO sales VALUES (1)").is_err(), "arity");
    assert!(db.execute("garbage statement").is_err());
    // NOT NULL enforcement through SQL.
    assert!(db
        .execute("INSERT INTO sales VALUES (NULL, 'x', 1.0, 0)")
        .is_err());
}
