//! Trickle-load torture suite: concurrent ingest under query fire with
//! snapshot-isolation checking, durable-reopen verification, and
//! kill-and-recover drills at every durability fault point.
//!
//! CI runs this with `VDB_TORTURE_SECS=10` (see `torture-smoke` in
//! `.github/workflows/ci.yml`); locally it defaults to a ~2 s run.

use std::sync::Mutex;
use vdb_core::{Engine, Value};
use vdb_tests::torture::{self, TortureConfig, FAULT_POINTS};

// The fault registry is process-global and tests in one binary run on
// parallel threads, so everything here serializes. Poisoning is ignored:
// a failed sibling shouldn't cascade into PoisonError noise.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vdb_torture_{tag}_{}", std::process::id()))
}

#[test]
fn torture_in_memory_no_violations() {
    let _guard = serial();
    let config = TortureConfig::from_env();
    let report = torture::run(&config);
    assert!(
        report.violations.is_empty(),
        "snapshot-isolation violations:\n{:#?}",
        report.violations
    );
    assert!(report.commits > 0, "writers never committed");
    assert!(report.queries > 0, "readers never ran");
    assert!(report.rows_ingested > 0);
    eprintln!(
        "torture(mem): {:.1}s, {} commits ({} rows, {} deletes), {} queries, \
         {:.0} rows/s ingest, p99 {:.2} ms",
        report.elapsed_secs,
        report.commits,
        report.rows_ingested,
        report.deletes,
        report.queries,
        report.ingest_rows_per_sec,
        report.query_p99_ms
    );
}

#[test]
fn torture_durable_survives_reopen() {
    let _guard = serial();
    let root = temp_root("durable");
    let mut config = TortureConfig::from_env();
    // The durable phase is filesystem-bound; a shorter window still turns
    // over plenty of redo/manifest churn. The long CI soak is in-memory.
    config.secs = config.secs.min(4.0);
    config.data_root = Some(root.clone());
    let report = torture::run(&config);
    assert!(
        report.violations.is_empty(),
        "violations during durable torture:\n{:#?}",
        report.violations
    );
    assert!(report.commits > 0);

    // Kill (drop) happened when `run` returned; reopen and demand exactly
    // the committed rows back.
    let db = Engine::builder().data_dir(&root).open().unwrap();
    let got: Vec<(i64, i64, i64)> = db
        .query("SELECT id, grp, v FROM t ORDER BY id")
        .unwrap()
        .iter()
        .map(|r| {
            (
                r[0].as_i64().unwrap(),
                r[1].as_i64().unwrap(),
                r[2].as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(
        got,
        report.expected_rows,
        "reopen lost or resurrected rows ({} recovered, {} expected)",
        got.len(),
        report.expected_rows.len()
    );
    // And the epoch clock restarted past everything recovered.
    db.execute("INSERT INTO t VALUES (-1, 0, 0)").unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t").unwrap().scalar(),
        Some(&Value::Integer(report.expected_rows.len() as i64 + 1))
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn kill_and_recover_at_every_fault_point() {
    let _guard = serial();
    let root = temp_root("kill");
    for point in FAULT_POINTS {
        torture::kill_and_recover(&root, point).unwrap_or_else(|e| panic!("{e}"));
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn poisoned_store_refuses_service_until_reopen() {
    let _guard = serial();
    let root = temp_root("poison");
    let _ = std::fs::remove_dir_all(&root);
    let db = Engine::builder().data_dir(&root).open().unwrap();
    db.execute("CREATE TABLE t (id INT, grp INT, v INT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..50i64)
        .map(|i| vec![Value::Integer(i), Value::Integer(i % 4), Value::Integer(i)])
        .collect();
    db.load_wos("t", &rows).unwrap();

    // A moveout that dies after draining the WOS leaves memory ahead of
    // disk; the store must refuse to serve that image instead of leaking
    // rows whose durability was never committed.
    vdb_storage::fault::arm(vdb_storage::fault::MOVEOUT_BEFORE_MANIFEST);
    let err = db.tuple_mover_tick().unwrap_err();
    assert!(vdb_storage::fault::is_fault(&err), "{err}");
    let refused = db.query("SELECT COUNT(*) FROM t").unwrap_err();
    assert!(
        refused.to_string().contains("needs reopen"),
        "expected poisoned-store refusal, got: {refused}"
    );
    assert!(
        db.execute("INSERT INTO t VALUES (999, 0, 0)").is_err(),
        "poisoned store accepted a write"
    );
    drop(db);

    // Reopen = the sanctioned recovery path: all 50 committed rows back,
    // store serving again.
    let db = Engine::builder().data_dir(&root).open().unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t").unwrap().scalar(),
        Some(&Value::Integer(50))
    );
    db.execute("INSERT INTO t VALUES (999, 0, 0)").unwrap();
    assert_eq!(
        db.execute("SELECT COUNT(*) FROM t").unwrap().scalar(),
        Some(&Value::Integer(51))
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&root);
}
