//! Automatic physical design must be invisible in query answers: whatever
//! projections `auto_design` installs, every query keeps returning exactly
//! what the default superprojection returned — across NULLs, delete
//! vectors, and an unmoved WOS tail — and an online backfill racing
//! concurrent trickle-load ingest (the torture harness's writer pattern)
//! must converge to the same committed state the writers produced.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use vdb_core::{DesignPolicy, Engine, Value};
use vdb_types::Row;

/// `t(id, grp, v)` with the superprojection sorted by `id` — useless for
/// the grp-filtered trace workload, so the designer has something to win.
fn build_engine() -> Engine {
    let db = Engine::builder().open().unwrap();
    db.execute("CREATE TABLE t (id INT, grp INT, v INT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    db
}

fn rows_of(pairs: &[(Option<i64>, i64)], first_id: i64) -> Vec<Row> {
    pairs
        .iter()
        .enumerate()
        .map(|(i, (grp, v))| {
            vec![
                Value::Integer(first_id + i as i64),
                grp.map_or(Value::Null, Value::Integer),
                Value::Integer(*v),
            ]
        })
        .collect()
}

/// The workload that both seeds the trace and judges equivalence. Every
/// statement carries ORDER BY (or is an aggregate) so answers compare
/// deterministically.
fn query_mix() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) FROM t",
        "SELECT grp, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY grp ORDER BY grp",
        "SELECT id, v FROM t WHERE grp = 3 ORDER BY id, v",
        "SELECT SUM(v) FROM t WHERE grp = 1",
        "SELECT id, grp, v FROM t ORDER BY v, id LIMIT 25",
    ]
}

fn arb_rows() -> impl Strategy<Value = Vec<(Option<i64>, i64)>> {
    prop::collection::vec(
        (prop::option::weighted(0.85, 0i64..6), -100i64..100),
        1..150,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Control engine (superprojection only) vs designed engine (same data,
    /// trace-driven projections installed mid-history): every statement
    /// must agree, before and after post-design DML lands in the WOS.
    #[test]
    fn designed_projections_equal_superprojection(
        base in arb_rows(),
        tail in arb_rows(),
        post in arb_rows(),
        cut in prop::option::of(-60i64..60),
        post_cut in prop::option::of(-60i64..60),
    ) {
        let control = build_engine();
        let designed = build_engine();
        for db in [&control, &designed] {
            db.load("t", &rows_of(&base, 0)).unwrap();
            db.tuple_mover_tick().unwrap(); // encode base rows into ROS
            if let Some(cut) = cut {
                db.execute(&format!("DELETE FROM t WHERE v < {cut}")).unwrap();
            }
            if !tail.is_empty() {
                db.load("t", &rows_of(&tail, 10_000)).unwrap(); // WOS tail
            }
            // Seed the trace on both (reads are side-effect free on the
            // control; only `designed` acts on its trace).
            for _ in 0..4 {
                for q in query_mix() {
                    db.query(q).unwrap();
                }
            }
        }
        designed.auto_design(DesignPolicy::QueryOptimized).unwrap();
        // Post-design DML: the installed projections must track new
        // writes and deletes exactly like the superprojection.
        for db in [&control, &designed] {
            if !post.is_empty() {
                db.load("t", &rows_of(&post, 20_000)).unwrap();
            }
            if let Some(cut) = post_cut {
                db.execute(&format!("DELETE FROM t WHERE v >= {cut}")).unwrap();
            }
        }
        for q in query_mix() {
            let want = control.query(q).unwrap();
            let got = designed.query(q).unwrap();
            prop_assert_eq!(got, want, "designed engine diverged on: {}", q);
        }
    }
}

/// Online backfill under fire: trickle-load writers (the torture harness
/// pattern: small WOS batches, unique ids, deterministic values) keep
/// committing while `auto_design` installs and backfills projections. After
/// the writers drain and the mover ticks, the hot queries — now answered by
/// the backfilled projection — must reconcile exactly with what the writers
/// committed.
#[test]
fn backfill_converges_under_concurrent_ingest() {
    const PRELOAD: i64 = 2_000;
    const WRITERS: usize = 2;
    const BATCH: i64 = 16;
    let db = Arc::new(build_engine());
    let row = |id: i64| -> Row {
        vec![
            Value::Integer(id),
            Value::Integer(id % 8),
            Value::Integer(id % 13),
        ]
    };
    let preload: Vec<Row> = (0..PRELOAD).map(row).collect();
    db.load("t", &preload).unwrap();
    db.tuple_mover_tick().unwrap();
    // Seed the trace with the hot grp-filtered mix.
    let hot = [
        "SELECT COUNT(*) FROM t WHERE grp = 3",
        "SELECT SUM(v) FROM t WHERE grp = 5",
        "SELECT grp, COUNT(*) FROM t WHERE grp = 1 GROUP BY grp",
    ];
    for _ in 0..6 {
        for q in &hot {
            db.query(q).unwrap();
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let next_id = Arc::new(AtomicI64::new(PRELOAD));
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            let db = db.clone();
            let stop = stop.clone();
            let next_id = next_id.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let first = next_id.fetch_add(BATCH, Ordering::SeqCst);
                    let batch: Vec<Row> = (first..first + BATCH).map(row).collect();
                    // Retry until this batch commits: a conflict with the
                    // concurrent CREATE PROJECTION must delay ingest, not
                    // lose it (ids are pre-claimed, so order is free).
                    // Trickle cadence — back off between attempts and
                    // batches so the backfill's lock requests get windows
                    // on a single-core host.
                    while db.load("t", &batch).is_err() {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        })
        .collect();
    // The design round races the writers: enumerate from the trace,
    // CREATE PROJECTION online, backfill through refresh + tuple mover.
    let report = db.auto_design(DesignPolicy::QueryOptimized).unwrap();
    assert!(
        !report.installed.is_empty(),
        "the grp-hot trace must yield a projection: {report:?}"
    );
    // Let ingest continue against the freshly installed projection.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    db.tuple_mover_tick().unwrap();
    let total = next_id.load(Ordering::SeqCst);
    // Convergence: the backfilled projection answers the hot queries with
    // exactly the committed state (ids 0..total, grp = id % 8, v = id % 13).
    let count = |rows: &[Row]| match &rows[0][0] {
        Value::Integer(n) => *n,
        other => panic!("expected integer, got {other:?}"),
    };
    let all = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(
        count(&all),
        total,
        "rows lost or duplicated during backfill"
    );
    let grp3 = db.query("SELECT COUNT(*) FROM t WHERE grp = 3").unwrap();
    assert_eq!(
        count(&grp3),
        (0..total).filter(|id| id % 8 == 3).count() as i64
    );
    let sum5 = db.query("SELECT SUM(v) FROM t WHERE grp = 5").unwrap();
    assert_eq!(
        count(&sum5),
        (0..total)
            .filter(|id| id % 8 == 5)
            .map(|id| id % 13)
            .sum::<i64>()
    );
    // And the answers really came through the installed projection.
    let installed = &report.installed[0].name;
    let explain = db
        .execute("EXPLAIN SELECT COUNT(*) FROM t WHERE grp = 3")
        .unwrap();
    let text: String = explain.rows.iter().map(|r| format!("{}\n", r[0])).collect();
    assert!(
        text.contains(installed.as_str()),
        "planner should pick {installed}:\n{text}"
    );
}
