//! Cluster-wide fault-tolerance integration: failures during a workload,
//! buddy-sourced queries, recovery, refresh and backup — the §5.2/§5.3
//! behaviours exercised through the public facade.

use std::sync::Mutex;
use vdb_core::{Engine, Value};
use vdb_types::Row;

// The fault-injection registry is process-global, so the kill-and-recover
// demo (which arms a fault point) must not overlap with other tests that
// drive the tuple mover.
static FAULT_SERIAL: Mutex<()> = Mutex::new(());

fn fault_serial() -> std::sync::MutexGuard<'static, ()> {
    FAULT_SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn db() -> Engine {
    let db = Engine::builder().nodes(4).k_safety(1).open().unwrap();
    db.execute("CREATE TABLE t (id INT, grp INT, v FLOAT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    db
}

fn rows(lo: i64, hi: i64) -> Vec<Row> {
    (lo..hi)
        .map(|i| {
            vec![
                Value::Integer(i),
                Value::Integer(i % 8),
                Value::Float((i % 100) as f64),
            ]
        })
        .collect()
}

fn total(db: &vdb_core::Database) -> i64 {
    db.query("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        .unwrap()
        .iter()
        .map(|r| r[1].as_i64().unwrap())
        .sum()
}

#[test]
fn queries_and_loads_survive_single_failure() {
    let db = db();
    db.load("t", &rows(0, 4000)).unwrap();
    assert_eq!(total(&db), 4000);
    db.cluster().fail_node(2);
    assert!(db.cluster().is_available());
    assert_eq!(total(&db), 4000, "buddy reads cover the down node");
    db.load("t", &rows(4000, 5000)).unwrap();
    assert_eq!(total(&db), 5000);
    let stats = db.cluster().recover_node(2).unwrap();
    assert!(stats.projections_recovered > 0);
    assert_eq!(total(&db), 5000);
    // After recovery, fail a *different* node: the recovered node must now
    // serve buddy reads, proving its replicas are complete.
    db.cluster().fail_node(3);
    assert_eq!(total(&db), 5000);
}

#[test]
fn deletes_during_outage_replay_on_recovery() {
    let db = db();
    db.load("t", &rows(0, 1000)).unwrap();
    db.cluster().fail_node(1);
    db.execute("DELETE FROM t WHERE id < 100").unwrap();
    db.execute("UPDATE t SET v = 1.5 WHERE id = 500").unwrap();
    db.cluster().recover_node(1).unwrap();
    assert_eq!(total(&db), 900);
    let got = db.query("SELECT v FROM t WHERE id = 500").unwrap();
    assert_eq!(got[0][0], Value::Float(1.5));
    // Cross-check from the recovered node's perspective: fail its buddy
    // source and re-query.
    db.cluster().fail_node(2);
    assert_eq!(total(&db), 900);
}

#[test]
fn quorum_loss_refuses_work() {
    let db = db();
    db.load("t", &rows(0, 100)).unwrap();
    db.cluster().fail_node(0);
    db.cluster().fail_node(1);
    // 2 of 4 nodes: no strict majority.
    assert!(!db.cluster().has_quorum());
    assert!(db.load("t", &rows(100, 101)).is_err());
    assert!(db.query("SELECT COUNT(*) FROM t").is_err());
}

#[test]
fn adjacent_double_failure_loses_data_with_k1() {
    let db = db();
    db.load("t", &rows(0, 100)).unwrap();
    // K=1: two *adjacent* ring failures make some segment unreadable.
    db.cluster().fail_node(1);
    db.cluster().fail_node(2);
    assert!(!db.cluster().data_available());
    assert!(!db.cluster().is_available());
}

#[test]
fn replicated_projections_survive_any_single_node() {
    let db = Engine::builder().nodes(3).k_safety(1).open().unwrap();
    db.execute("CREATE TABLE dim (k INT, name VARCHAR)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION dim_super AS SELECT k, name FROM dim ORDER BY k \
         UNSEGMENTED ALL NODES",
    )
    .unwrap();
    db.execute("INSERT INTO dim VALUES (1, 'a'), (2, 'b')")
        .unwrap();
    for n in 0..3 {
        let db2 = &db;
        db2.cluster().fail_node(n);
        assert_eq!(db2.query("SELECT k FROM dim").unwrap().len(), 2);
        db2.cluster().recover_node(n).unwrap();
    }
}

#[test]
fn backup_links_every_projection_file() {
    let db = db();
    db.load("t", &rows(0, 500)).unwrap();
    let files = db.cluster().backup("snap").unwrap();
    assert!(files > 0);
    // Backup is non-destructive: queries still fine.
    assert_eq!(total(&db), 500);
}

/// The fault_tolerance example's kill-and-recover walkthrough, asserted:
/// a fault fires mid-moveout, the database is dropped ("killed") and
/// reopened, and every committed row survives.
#[test]
fn kill_and_recover_demo_recovers_all_commits() {
    let _guard = fault_serial();
    let root = std::env::temp_dir().join(format!("vdb_ft_demo_test_{}", std::process::id()));
    let lines = vdb_tests::torture::kill_and_recover_demo(&root);
    let _ = std::fs::remove_dir_all(&root);
    let expect = |needle: &str| {
        assert!(
            lines.iter().any(|l| l.contains(needle)),
            "demo narration missing {needle:?}:\n{lines:#?}"
        );
    };
    expect("kill -9 mid-moveout");
    expect("recovered all 299 committed rows");
    expect("recovered database accepts new commits");
}

#[test]
fn ahm_freeze_preserves_history_for_recovery() {
    let _guard = fault_serial();
    let db = vdb_core::Database::new(vdb_core::database::DatabaseConfig {
        cluster: vdb_core::ClusterConfig {
            n_nodes: 3,
            k_safety: 1,
            history_retention: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    db.execute("CREATE TABLE t (id INT, grp INT, v FLOAT)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION t_super AS SELECT id, grp, v FROM t ORDER BY id \
         SEGMENTED BY HASH(id) ALL NODES",
    )
    .unwrap();
    db.load("t", &rows(0, 100)).unwrap();
    db.cluster().fail_node(1);
    for batch in 0..5 {
        db.load("t", &rows(100 + batch * 10, 110 + batch * 10))
            .unwrap();
    }
    // Mergeouts while the node is down must not purge replay history.
    db.tuple_mover_tick().unwrap();
    db.cluster().recover_node(1).unwrap();
    assert_eq!(total(&db), 150);
}
