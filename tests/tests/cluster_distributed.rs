//! Distribution transparency: the same workload must produce identical
//! answers on 1, 2, and 4 logical nodes — across plain/RLE/dict column
//! shapes, NULL join keys, delete vectors, and an unmoved WOS tail — and
//! keep producing them when a node is killed mid-query (buddy reads) and
//! later recovered.

use proptest::prelude::*;
use std::sync::Mutex;
use vdb_core::{Engine, Value};
use vdb_types::Row;

/// Fault points are process-global; the kill tests serialize on this.
static FAULT_SERIAL: Mutex<()> = Mutex::new(());

fn fault_serial() -> std::sync::MutexGuard<'static, ()> {
    FAULT_SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const DIM_WORDS: [&str; 4] = ["ash", "birch", "cedar", "oak"];

/// Build a `nodes`-wide engine with a segmented fact `f(k, v)` (sorted by
/// `k`, so low-cardinality keys RLE-compress) and a dim `d(k, w)` that is
/// deliberately segmented on `w` — NOT the join key — which forces the
/// planner's exchange resegmentation path for `f JOIN d ON f.k = d.k`.
fn build(
    nodes: usize,
    fact: &[(Option<i64>, i64)],
    dim: &[(i64, i64)],
    wos_tail: &[(Option<i64>, i64)],
    delete_cut: Option<i64>,
) -> Engine {
    let db = Engine::builder().nodes(nodes).open().unwrap();
    db.execute("CREATE TABLE f (k INT, v INT)").unwrap();
    db.execute(
        "CREATE PROJECTION f_super AS SELECT k, v FROM f ORDER BY k \
         SEGMENTED BY HASH(k) ALL NODES",
    )
    .unwrap();
    db.execute("CREATE TABLE d (k INT, w VARCHAR)").unwrap();
    db.execute(
        "CREATE PROJECTION d_super AS SELECT k, w FROM d ORDER BY w \
         SEGMENTED BY HASH(w) ALL NODES",
    )
    .unwrap();
    let fact_rows = |pairs: &[(Option<i64>, i64)]| -> Vec<Row> {
        pairs
            .iter()
            .map(|(k, v)| vec![k.map_or(Value::Null, Value::Integer), Value::Integer(*v)])
            .collect()
    };
    db.load("f", &fact_rows(fact)).unwrap();
    let dim_rows: Vec<Row> = dim
        .iter()
        .map(|(k, w)| {
            vec![
                Value::Integer(*k),
                Value::Varchar(DIM_WORDS[(w.rem_euclid(4)) as usize].into()),
            ]
        })
        .collect();
    if !dim_rows.is_empty() {
        db.load("d", &dim_rows).unwrap();
    }
    // Move WOS contents into (encoded) ROS containers, then delete a slice
    // so delete vectors mask ROS rows, then land a fresh WOS tail.
    db.tuple_mover_tick().unwrap();
    if let Some(cut) = delete_cut {
        db.execute(&format!("DELETE FROM f WHERE v < {cut}"))
            .unwrap();
    }
    if !wos_tail.is_empty() {
        db.load("f", &fact_rows(wos_tail)).unwrap();
    }
    db
}

fn query_mix() -> Vec<&'static str> {
    vec![
        "SELECT COUNT(*) FROM f",
        "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM f GROUP BY k ORDER BY k",
        "SELECT k, v FROM f ORDER BY v, k LIMIT 25",
        // Inner join on the fact's segmentation key: the dim side runs
        // through the exchange (resegment), NULL keys match nothing.
        "SELECT w, COUNT(*), SUM(v) FROM f JOIN d ON f.k = d.k GROUP BY w ORDER BY w",
        "SELECT f.k, f.v, d.w FROM f JOIN d ON f.k = d.k ORDER BY f.v, f.k, d.w LIMIT 40",
        "SELECT COUNT(*) FROM f JOIN d ON f.k = d.k",
    ]
}

fn arb_fact() -> impl Strategy<Value = Vec<(Option<i64>, i64)>> {
    prop::collection::vec(
        (prop::option::weighted(0.85, 0i64..6), -100i64..100),
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn distributed_equals_single_node(
        fact in arb_fact(),
        dim in prop::collection::vec((0i64..6, 0i64..8), 0..16),
        tail in arb_fact(),
        cut in prop::option::of(-60i64..60),
    ) {
        let single = build(1, &fact, &dim, &tail, cut);
        let expected: Vec<Vec<Row>> = query_mix()
            .iter()
            .map(|q| single.query(q).unwrap())
            .collect();
        for nodes in [2usize, 4] {
            let cluster = build(nodes, &fact, &dim, &tail, cut);
            for (q, want) in query_mix().iter().zip(&expected) {
                let got = cluster.query(q).unwrap();
                prop_assert_eq!(&got, want, "{} nodes diverged on: {}", nodes, q);
            }
        }
    }
}

/// EXPLAIN must surface the distribution decisions: distributed execution,
/// the resegmented dim, and the local (buddy-aware) fact.
#[test]
fn explain_shows_distributed_plan() {
    let fact: Vec<(Option<i64>, i64)> = (0..200).map(|i| (Some(i % 6), i)).collect();
    let dim: Vec<(i64, i64)> = (0..6).map(|k| (k, k)).collect();
    let db = build(4, &fact, &dim, &[], None);
    let result = db
        .execute("EXPLAIN SELECT w, SUM(v) FROM f JOIN d ON f.k = d.k GROUP BY w ORDER BY w")
        .unwrap();
    let text: String = result
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Varchar(s) => format!("{s}\n"),
            other => format!("{other}\n"),
        })
        .collect();
    assert!(
        text.contains("distributed over 4/4 up nodes"),
        "missing distribution header:\n{text}"
    );
    assert!(
        text.contains("f_super: local segments (buddy-aware)"),
        "fact should scan locally:\n{text}"
    );
    assert!(
        text.contains("d_super: resegment through exchange"),
        "dim should resegment:\n{text}"
    );
    assert!(text.contains("merge at initiator"), "{text}");
}

/// Kill a node mid-query (fault point fires inside its local-plan job):
/// the query must still answer — correctly, from buddy replicas — the
/// node must be marked down, and recovery must bring it back with full
/// data coverage.
#[test]
fn kill_node_mid_query_answers_from_buddy_then_recovers() {
    let _guard = fault_serial();
    vdb_storage::fault::disarm_all();
    let fact: Vec<(Option<i64>, i64)> = (0..300).map(|i| (Some(i % 6), i)).collect();
    let dim: Vec<(i64, i64)> = (0..6).map(|k| (k, k)).collect();
    let db = build(4, &fact, &dim, &[], None);
    let queries = query_mix();
    let expected: Vec<Vec<Row>> = queries.iter().map(|q| db.query(q).unwrap()).collect();

    // Node 2 dies while running its slice of the next query.
    vdb_storage::fault::arm("cluster.exec.node2");
    let got = db.query(queries[1]).unwrap();
    assert_eq!(got, expected[1], "mid-kill answer must come from buddies");
    assert!(
        !db.cluster().is_up(2),
        "the dying node must be ejected by the retry loop"
    );

    // Degraded but correct: every query still answers without node 2.
    for (q, want) in queries.iter().zip(&expected) {
        assert_eq!(&db.query(q).unwrap(), want, "degraded run diverged: {q}");
    }

    // Recover from buddy containers and verify full coverage returns.
    db.cluster().recover_node(2).unwrap();
    assert!(db.cluster().is_up(2));
    for (q, want) in queries.iter().zip(&expected) {
        assert_eq!(
            &db.query(q).unwrap(),
            want,
            "post-recovery run diverged: {q}"
        );
    }
}

/// Write into the cluster after a mid-query kill: WOS commits route to the
/// surviving buddies, and the recovered node catches up through the
/// tuple-mover/recovery path, keeping buddy projections in sync.
#[test]
fn buddies_stay_in_sync_through_wos_after_kill() {
    let _guard = fault_serial();
    vdb_storage::fault::disarm_all();
    let fact: Vec<(Option<i64>, i64)> = (0..120).map(|i| (Some(i % 5), i)).collect();
    let db = build(3, &fact, &[], &[], None);
    vdb_storage::fault::arm("cluster.exec.node1");
    let n0: i64 = match db.query("SELECT COUNT(*) FROM f").unwrap()[0][0] {
        Value::Integer(n) => n,
        ref other => panic!("count came back as {other:?}"),
    };
    assert_eq!(n0, 120);
    assert!(!db.cluster().is_up(1));
    // Trickle more rows while the node is down (WOS path), then recover.
    let tail: Vec<Row> = (0..30)
        .map(|i| vec![Value::Integer(i % 5), Value::Integer(1000 + i)])
        .collect();
    db.load("f", &tail).unwrap();
    db.cluster().recover_node(1).unwrap();
    db.tuple_mover_tick().unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM f").unwrap(),
        vec![vec![Value::Integer(150)]]
    );
    // And the recovered node participates again: kill a DIFFERENT node and
    // the remaining pair (including node 1) still covers the ring.
    db.cluster().fail_node(0);
    assert_eq!(
        db.query("SELECT COUNT(*) FROM f").unwrap(),
        vec![vec![Value::Integer(150)]]
    );
    db.cluster().recover_node(0).unwrap();
}
