//! Paper-claim integration tests: cheap versions of the evaluation-section
//! *shapes* that must hold on every run (the benches measure magnitudes).

use vdb_bench::workloads::{cstore7, meter, random_ints};
use vdb_encoding::{ColumnWriter, EncodingType};
use vdb_types::Value;

/// Column footprint after the Database Designer's empirical encoding
/// choice (try everything, keep the smallest — §6.3), matching what a
/// DBD-designed projection would store.
fn auto_bytes(col: &[Value]) -> usize {
    let mut best = usize::MAX;
    for enc in EncodingType::CONCRETE
        .iter()
        .copied()
        .chain([EncodingType::Auto])
    {
        let mut w = ColumnWriter::new(enc);
        w.extend(col.iter().cloned());
        let (d, i) = w.finish();
        best = best.min(d.len() + i.encode().len());
    }
    best
}

/// Table 4a shape: Vertica < gzip+sort < gzip < raw.
#[test]
fn table4a_ordering_holds() {
    let ints = random_ints::generate(100_000, 42);
    let text = random_ints::as_text(&ints);
    let raw = text.len();
    let gz = vdb_compress::compress(text.as_bytes()).len();
    let mut sorted = ints.clone();
    sorted.sort_unstable();
    let gz_sorted = vdb_compress::compress(random_ints::as_text(&sorted).as_bytes()).len();
    let col: Vec<Value> = sorted.iter().map(|&v| Value::Integer(v)).collect();
    let vertica = auto_bytes(&col);
    assert!(gz < raw, "gzip-class compresses digit text");
    assert!(gz_sorted < gz, "sorting helps the byte compressor");
    assert!(
        vertica < gz_sorted,
        "type-aware encoding beats byte compression"
    );
    // Paper: Vertica ≈ 0.6 B/row at 1M; allow generous slack at 100k.
    assert!(
        (vertica as f64) / 100_000.0 < 2.0,
        "vertica B/row = {}",
        vertica as f64 / 100_000.0
    );
}

/// Table 4b shape: Vertica beats the byte compressor on meter data, and
/// the per-column story matches (metric tiny, value dominant).
#[test]
fn table4b_per_column_story() {
    let rows = meter::generate(60_000, &vdb_bench::repro::scaled_meter_config(60_000));
    let csv = meter::as_csv(&rows);
    let gz = vdb_compress::compress(csv.as_bytes()).len();
    let col = |c: usize| -> Vec<Value> { rows.iter().map(|r| r[c].clone()).collect() };
    let metric = auto_bytes(&col(0));
    let meter_b = auto_bytes(&col(1));
    let ts = auto_bytes(&col(2));
    let value = auto_bytes(&col(3));
    let total = metric + meter_b + ts + value;
    assert!(total < gz, "vertica {total} vs gzip-class {gz}");
    assert!(metric < meter_b.max(1) * 10, "metric column is tiny (RLE)");
    assert!(
        value > metric && value > ts,
        "value column dominates as in the paper (got metric={metric} ts={ts} value={value})"
    );
}

/// Table 3 shape: Vertica answers the 7-query suite faster in total and
/// uses less disk than the C-Store baseline.
#[test]
fn table3_shape_vertica_wins() {
    let (li, ord) = cstore7::generate(60_000, 7);
    let vertica = cstore7::setup_vertica(&li, &ord).unwrap();
    let cstore = cstore7::setup_cstore(li, ord).unwrap();
    let c = cstore7::constants();
    // Warm both once.
    for q in 1..=7 {
        let _ = vertica.query(&cstore7::vertica_sql(q, &c)).unwrap();
        let _ = cstore7::run_cstore(&cstore, q, &c).unwrap();
    }
    let t = std::time::Instant::now();
    for q in 1..=7 {
        let _ = cstore7::run_cstore(&cstore, q, &c).unwrap();
    }
    let cstore_total = t.elapsed();
    let t = std::time::Instant::now();
    for q in 1..=7 {
        let _ = vertica.query(&cstore7::vertica_sql(q, &c)).unwrap();
    }
    let vertica_total = t.elapsed();
    // Paper: ~1.9x total. The timing half of the claim only holds in
    // optimized builds — debug builds bury the vectorized engine under
    // per-Value overhead — so assert it under release only (the bench
    // harness measures it properly).
    if !cfg!(debug_assertions) {
        assert!(
            vertica_total.as_secs_f64() < cstore_total.as_secs_f64() * 0.95,
            "vertica {vertica_total:?} should beat cstore {cstore_total:?}"
        );
    }
    assert!(
        vertica.disk_bytes() < cstore.disk_bytes(),
        "vertica disk {} vs cstore {}",
        vertica.disk_bytes(),
        cstore.disk_bytes()
    );
}

/// §8.1's feature list: the overheads Vertica added over the prototype all
/// exist here — NULLs, floats/varchars, deletes, ROS+WOS, transactions —
/// exercised in one pass.
#[test]
fn product_grade_features_coexist() {
    let db = vdb_core::Engine::builder().open().unwrap();
    db.execute("CREATE TABLE everything (i INT, f FLOAT, s VARCHAR, b BOOLEAN, t TIMESTAMP)")
        .unwrap();
    db.execute(
        "CREATE PROJECTION everything_super AS SELECT i, f, s, b, t FROM everything \
         ORDER BY i SEGMENTED BY HASH(i) ALL NODES",
    )
    .unwrap();
    db.execute(
        "INSERT INTO everything VALUES \
         (1, 1.5, 'x', TRUE, 1000), (2, NULL, NULL, FALSE, 2000), (NULL, 0.0, '', TRUE, NULL)",
    )
    .unwrap();
    let rows = db
        .query("SELECT COUNT(*), COUNT(i), COUNT(f), MIN(f), MAX(t) FROM everything")
        .unwrap();
    assert_eq!(
        rows[0],
        vec![
            Value::Integer(3),
            Value::Integer(2),
            Value::Integer(2),
            Value::Float(0.0),
            Value::Timestamp(2000),
        ]
    );
    db.execute("DELETE FROM everything WHERE i IS NULL")
        .unwrap();
    assert_eq!(
        db.query("SELECT COUNT(*) FROM everything").unwrap()[0][0],
        Value::Integer(2)
    );
}
