//! The cluster: nodes, membership, quorum commit, routed loads,
//! distributed query execution and maintenance.

use crate::segmentation::RingRouter;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use vdb_exec::plan::{execute_collect, ExecContext};
use vdb_optimizer::{
    MergeSpec, OptimizerCatalog, PlannedQuery, ProjectionMeta, TableAccess, TableMeta,
};
use vdb_storage::projection::ProjectionDef;
use vdb_storage::store::SnapshotScan;
use vdb_storage::{MemBackend, StorageEngine, TupleMover, TupleMoverConfig};
use vdb_txn::txn::Isolation;
use vdb_txn::{EpochManager, LockMode, TransactionManager};
use vdb_types::{DbError, DbResult, Epoch, Expr, Func, NodeId, Row, TableSchema, Value};

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub n_nodes: usize,
    /// K-safety: segmented projections keep K+1 buddy replicas (§5.2).
    pub k_safety: usize,
    /// Local segments per node (§3.6, Figure 2 uses 3).
    pub n_local_segments: u32,
    /// AHM retention policy in epochs (§5.1).
    pub history_retention: u64,
    pub tuple_mover: TupleMoverConfig,
    /// When set, each node's storage lives on disk under
    /// `<data_root>/node<i>` and DML commits persist an epoch marker,
    /// making the cluster recoverable across process restarts (§5.1).
    /// `None` keeps everything in memory.
    pub data_root: Option<std::path::PathBuf>,
    /// Per-node WOS memory budget in bytes (§3.7 back-pressure). After a
    /// WOS-path commit, any up node whose total WOS footprint (across all
    /// its projection stores) exceeds this triggers an immediate forced
    /// moveout, spilling the WOS into sorted, encoded ROS instead of
    /// growing without bound. `None` = unbounded (moveout happens only on
    /// the tuple mover's own schedule).
    pub wos_budget_bytes: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            n_nodes: 3,
            k_safety: 1,
            n_local_segments: 3,
            history_retention: u64::MAX,
            tuple_mover: TupleMoverConfig::default(),
            data_root: None,
            wos_budget_bytes: None,
        }
    }
}

struct Node {
    /// Node identity (display/debug; the index in `nodes` is authoritative).
    #[allow(dead_code)]
    id: NodeId,
    engine: StorageEngine,
}

/// One logical projection family: K+1 physical buddy replicas.
#[derive(Debug, Clone)]
pub(crate) struct Family {
    pub(crate) table: String,
    /// The family definition (replica 0's def; its name is the family name).
    pub(crate) def: ProjectionDef,
    /// Physical replica projection names, index = buddy offset.
    pub(crate) replicas: Vec<String>,
}

/// A simulated shared-nothing cluster (§2.1: "Vertica is designed from the
/// ground up to be a distributed database").
pub struct Cluster {
    pub config: ClusterConfig,
    nodes: Vec<Node>,
    up: RwLock<Vec<bool>>,
    pub epochs: Arc<EpochManager>,
    pub txns: TransactionManager,
    router: RingRouter,
    families: RwLock<BTreeMap<String, Family>>,
    tables: RwLock<BTreeMap<String, (TableSchema, Option<Expr>)>>,
    mover: TupleMover,
    /// Highest commit epoch each node has fully applied; a down node's
    /// entry freezes at its failure point and drives recovery's truncation
    /// (its effective Last Good Epoch).
    applied: RwLock<Vec<Epoch>>,
    /// Serializes commit-epoch stamping, apply, and the commit-marker
    /// write across DML transactions. Table locks alone don't: I-locks
    /// are self-compatible (Table 1), and writers on *different* tables
    /// share the node-level marker. Without this, two transactions could
    /// stamp the same pending epoch E, one could persist marker=E while
    /// the other is mid-apply, and a crash would recover the second
    /// transaction's partial writes as committed. Held only after the
    /// table lock is granted, so lock ordering is table lock → commit
    /// lock everywhere and the mutex cannot deadlock.
    pub(crate) commit_serial: Mutex<()>,
    /// Shutdown flags of in-flight exchanges. `fail_node` sets every live
    /// flag so routers blocked on a channel whose consumer died drain and
    /// join cleanly; the aborted query retries against buddy replicas.
    exchange_aborts: Mutex<Vec<std::sync::Weak<std::sync::atomic::AtomicBool>>>,
    /// Bytes shipped through exchange resegmentation (network accounting).
    exchange_bytes: Arc<std::sync::atomic::AtomicU64>,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Cluster {
        Cluster::try_new(config).expect("cluster construction failed")
    }

    /// Fallible construction — only durable clusters (`data_root` set) can
    /// actually fail, on filesystem errors creating node directories.
    pub fn try_new(config: ClusterConfig) -> DbResult<Cluster> {
        let epochs = Arc::new(EpochManager::new(config.history_retention));
        let mut nodes = Vec::with_capacity(config.n_nodes);
        for i in 0..config.n_nodes {
            let backend: Arc<dyn vdb_storage::StorageBackend> = match &config.data_root {
                Some(root) => Arc::new(vdb_storage::FsBackend::new(root.join(format!("node{i}")))?),
                None => Arc::new(MemBackend::new()),
            };
            nodes.push(Node {
                id: NodeId(i as u32),
                engine: StorageEngine::new(backend, config.n_local_segments),
            });
        }
        Ok(Cluster {
            commit_serial: Mutex::new(()),
            exchange_aborts: Mutex::new(Vec::new()),
            exchange_bytes: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            applied: RwLock::new(vec![Epoch::ZERO; config.n_nodes]),
            router: RingRouter::new(config.n_nodes),
            up: RwLock::new(vec![true; config.n_nodes]),
            epochs: epochs.clone(),
            txns: TransactionManager::new(epochs),
            families: RwLock::new(BTreeMap::new()),
            tables: RwLock::new(BTreeMap::new()),
            mover: TupleMover::new(config.tuple_mover.clone()),
            nodes,
            config,
        })
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    pub fn node_engine(&self, node: usize) -> &StorageEngine {
        &self.nodes[node].engine
    }

    pub fn up_nodes(&self) -> Vec<usize> {
        self.up
            .read()
            .iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(i, _)| i)
            .collect()
    }

    pub fn is_up(&self, node: usize) -> bool {
        self.up.read()[node]
    }

    // ------------------------------------------------------------------
    // membership / safety (§5.3)
    // ------------------------------------------------------------------

    /// Quorum: more than half the nodes must be up ("a N/2+1 quorum to
    /// protect against network partitions and avoid split brain").
    pub fn has_quorum(&self) -> bool {
        self.up_nodes().len() * 2 > self.nodes.len()
    }

    /// Is every ring position of every segmented family readable?
    pub fn data_available(&self) -> bool {
        let up = self.up.read().clone();
        self.families.read().values().all(|f| {
            if self.router.is_replicated(&f.def) {
                up.iter().any(|&u| u)
            } else {
                self.router
                    .all_positions_readable(&up, f.replicas.len() - 1)
            }
        })
    }

    /// The cluster keeps serving only with quorum AND availability.
    pub fn is_available(&self) -> bool {
        self.has_quorum() && self.data_available()
    }

    /// Eject a node (failure injection / failed commit apply). Freezes the
    /// AHM so history needed for recovery is preserved (§5.1).
    pub fn fail_node(&self, node: usize) {
        self.up.write()[node] = false;
        self.epochs.freeze_ahm(true);
        // A crash loses the in-memory WOS (§5.1): epochs whose data only
        // reached the WOS are NOT durable on this node, so its effective
        // Last Good Epoch drops to the minimum store LGE before the WOS
        // contents vanish. Recovery replays from there.
        let applied = self.applied.read()[node];
        let mut lge = applied;
        for pname in self.nodes[node].engine.projection_names() {
            if let Ok(store) = self.nodes[node].engine.projection(&pname) {
                lge = lge.min(store.read().last_good_epoch(applied));
            }
        }
        self.applied.write()[node] = lge;
        for pname in self.nodes[node].engine.projection_names() {
            if let Ok(store) = self.nodes[node].engine.projection(&pname) {
                store.write().lose_wos();
            }
        }
        // Wake every in-flight exchange: a router blocked sending to the
        // dead node's consumer would otherwise never return. Routers see
        // the flag, drain, and join with a retryable error.
        for weak in self.exchange_aborts.lock().drain(..) {
            if let Some(flag) = weak.upgrade() {
                flag.store(true, std::sync::atomic::Ordering::Release);
            }
        }
    }

    /// Create a shutdown flag wired to `fail_node` for one exchange run.
    fn register_exchange(&self) -> vdb_exec::exchange::ShutdownFlag {
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut reg = self.exchange_aborts.lock();
        reg.retain(|w| w.strong_count() > 0);
        reg.push(Arc::downgrade(&flag));
        flag
    }

    /// Total bytes shipped through exchange resegmentation so far.
    pub fn exchange_bytes_sent(&self) -> u64 {
        self.exchange_bytes
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // DDL
    // ------------------------------------------------------------------

    pub fn create_table(&self, schema: TableSchema, partition_by: Option<Expr>) -> DbResult<()> {
        for n in &self.nodes {
            n.engine
                .create_table(schema.clone(), partition_by.clone())?;
        }
        self.tables
            .write()
            .insert(schema.name.clone(), (schema, partition_by));
        Ok(())
    }

    pub fn table_schema(&self, name: &str) -> Option<TableSchema> {
        self.tables.read().get(name).map(|(s, _)| s.clone())
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Create a projection family: replicated projections get one replica;
    /// segmented ones get K+1 buddies (§5.2: "each projection must have at
    /// least one buddy projection ... no row is stored on the same node by
    /// both projections").
    pub fn create_projection(&self, def: ProjectionDef) -> DbResult<()> {
        let family_name = def.name.clone();
        if self.families.read().contains_key(&family_name) {
            return Err(DbError::AlreadyExists(format!("projection {family_name}")));
        }
        if !def.prejoin.is_empty() && !self.router.is_replicated(&def) {
            return Err(DbError::Plan(
                "prejoin projections must be replicated (UNSEGMENTED)".into(),
            ));
        }
        let n_replicas = if self.router.is_replicated(&def) {
            1
        } else {
            self.config.k_safety + 1
        };
        let mut replicas = Vec::with_capacity(n_replicas);
        for b in 0..n_replicas {
            let mut rdef = def.clone();
            rdef.name = if n_replicas == 1 {
                family_name.clone()
            } else {
                format!("{family_name}_b{b}")
            };
            for n in &self.nodes {
                n.engine.create_projection(rdef.clone())?;
            }
            replicas.push(rdef.name);
        }
        self.families.write().insert(
            family_name,
            Family {
                table: def.anchor_table.clone(),
                def,
                replicas,
            },
        );
        Ok(())
    }

    pub fn drop_projection(&self, family: &str) -> DbResult<()> {
        let f = self
            .families
            .write()
            .remove(family)
            .ok_or_else(|| DbError::NotFound(format!("projection {family}")))?;
        for r in &f.replicas {
            for n in &self.nodes {
                let _ = n.engine.drop_projection(r);
            }
        }
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let families: Vec<String> = self
            .families
            .read()
            .iter()
            .filter(|(_, f)| f.table == name)
            .map(|(k, _)| k.clone())
            .collect();
        for f in families {
            self.drop_projection(&f)?;
        }
        for n in &self.nodes {
            n.engine.drop_table(name)?;
        }
        self.tables.write().remove(name);
        Ok(())
    }

    pub fn projection_families_of(&self, table: &str) -> Vec<String> {
        self.families
            .read()
            .iter()
            .filter(|(_, f)| f.table == table)
            .map(|(k, _)| k.clone())
            .collect()
    }

    pub fn family_def(&self, family: &str) -> Option<ProjectionDef> {
        self.families.read().get(family).map(|f| f.def.clone())
    }

    /// Does `table` have at least one family covering every column?
    pub fn has_super_projection(&self, table: &str) -> bool {
        let Some((schema, _)) = self.tables.read().get(table).cloned() else {
            return false;
        };
        self.families
            .read()
            .values()
            .any(|f| f.table == table && f.def.is_super(schema.arity()))
    }

    // ------------------------------------------------------------------
    // DML (quorum commit, no 2PC — §5)
    // ------------------------------------------------------------------

    fn check_writable(&self) -> DbResult<()> {
        if !self.is_available() {
            return Err(DbError::Unavailable(
                "quorum or K-safety data coverage lost".into(),
            ));
        }
        Ok(())
    }

    /// Bulk/trickle load: routes each row to its owning node per replica.
    /// Returns the commit epoch.
    pub fn load(&self, table: &str, rows: &[Row], direct_ros: bool) -> DbResult<Epoch> {
        self.check_writable()?;
        if !self.has_super_projection(table) {
            return Err(DbError::Plan(format!(
                "table {table} has no super projection; create one before loading"
            )));
        }
        let txn = self.txns.begin(Isolation::ReadCommitted);
        self.txns.lock(&txn, table, LockMode::I)?;
        // Stamping the epoch inside the commit mutex gives this
        // transaction a commit epoch no concurrent DML shares, so the
        // marker written below never vouches for another transaction's
        // in-flight writes.
        let _commit = self.commit_serial.lock();
        let epoch = self.txns.pending_commit_epoch();
        let result = self
            .apply_load(table, rows, epoch, direct_ros)
            .and_then(|()| self.persist_commit_marker(epoch));
        match result {
            Ok(()) => {
                self.txns.commit(&txn, true)?;
                self.record_applied(epoch);
                if !direct_ros {
                    self.enforce_wos_budgets();
                }
                Ok(epoch)
            }
            Err(e) => {
                self.txns.rollback(&txn);
                Err(e)
            }
        }
    }

    /// Total WOS bytes across all of `node`'s projection stores.
    pub fn node_wos_bytes(&self, node: usize) -> usize {
        let engine = &self.nodes[node].engine;
        engine
            .projection_names()
            .iter()
            .filter_map(|name| engine.projection(name).ok())
            .map(|store| store.read().wos_bytes())
            .sum()
    }

    /// §3.7 back-pressure: force a moveout on every up node whose WOS
    /// footprint exceeds [`ClusterConfig::wos_budget_bytes`]. Runs after
    /// the commit completes (outside the table lock and commit mutex), so
    /// it never extends the writer's critical section. Best-effort: the
    /// rows are already durably committed, so a moveout error must not
    /// fail the load that triggered it — the next tick retries.
    fn enforce_wos_budgets(&self) {
        let Some(budget) = self.config.wos_budget_bytes else {
            return;
        };
        let epoch = self.epochs.read_committed_snapshot();
        for n in self.up_nodes() {
            if self.node_wos_bytes(n) <= budget {
                continue;
            }
            for pname in self.nodes[n].engine.projection_names() {
                if let Ok(store) = self.nodes[n].engine.projection(&pname) {
                    let _ = self.mover.run_moveout(&mut store.write(), epoch, true);
                }
            }
        }
    }

    fn apply_load(
        &self,
        table: &str,
        rows: &[Row],
        epoch: Epoch,
        direct_ros: bool,
    ) -> DbResult<()> {
        let families: Vec<Family> = self
            .families
            .read()
            .values()
            .filter(|f| f.table == table)
            .cloned()
            .collect();
        let up = self.up.read().clone();
        // Validate once against the schema (projection stores re-validate
        // arity only).
        let (schema, _) = self
            .tables
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
        let mut validated: Vec<Row> = Vec::with_capacity(rows.len());
        for r in rows {
            let mut row = r.clone();
            schema.validate_row(&mut row)?;
            validated.push(row);
        }
        for family in &families {
            for (b, replica) in family.replicas.iter().enumerate() {
                if self.router.is_replicated(&family.def) {
                    for (n, node) in self.nodes.iter().enumerate() {
                        if up[n] {
                            node.engine
                                .insert_projection_rows(replica, &validated, epoch, direct_ros)?;
                        }
                    }
                    continue;
                }
                // Route by segmentation. The segmentation expression is in
                // projection column space: project each row first.
                let mut per_node: HashMap<usize, Vec<Row>> = HashMap::new();
                for row in &validated {
                    // Prejoin families are replicated (enforced at create),
                    // so this branch only sees ordinary projections.
                    let prow = family.def.project_row(row)?;
                    let node = self
                        .router
                        .node_for(&family.def, &prow, b)?
                        .expect("segmented");
                    per_node.entry(node).or_default().push(row.clone());
                }
                for (n, node_rows) in per_node {
                    if up[n] {
                        self.nodes[n]
                            .engine
                            .insert_projection_rows(replica, &node_rows, epoch, direct_ros)?;
                    }
                    // Down node: rows are skipped; recovery replays them
                    // from the buddy (§5.2).
                }
            }
        }
        Ok(())
    }

    /// DELETE: marks matching rows in every projection replica on every up
    /// node. Returns (commit epoch, rows deleted on replica 0).
    pub fn delete(&self, table: &str, predicate: Option<&Expr>) -> DbResult<(Epoch, u64)> {
        self.check_writable()?;
        let txn = self.txns.begin(Isolation::ReadCommitted);
        self.txns.lock(&txn, table, LockMode::X)?;
        // See `commit_serial`: writers on other tables share the marker.
        let _commit = self.commit_serial.lock();
        let epoch = self.txns.pending_commit_epoch();
        let result = self
            .apply_delete(table, predicate, epoch)
            .and_then(|deleted| self.persist_commit_marker(epoch).map(|()| deleted));
        match result {
            Ok(deleted_primary) => {
                self.txns.commit(&txn, true)?;
                self.record_applied(epoch);
                Ok((epoch, deleted_primary))
            }
            Err(e) => {
                self.txns.rollback(&txn);
                Err(e)
            }
        }
    }

    fn apply_delete(&self, table: &str, predicate: Option<&Expr>, epoch: Epoch) -> DbResult<u64> {
        let snapshot = epoch.prev();
        let mut deleted_primary = 0u64;
        let families: Vec<Family> = self
            .families
            .read()
            .values()
            .filter(|f| f.table == table)
            .cloned()
            .collect();
        for family in &families {
            for (b, replica) in family.replicas.iter().enumerate() {
                for n in self.up_nodes() {
                    let store = self.nodes[n].engine.projection(replica)?;
                    // Hold the write lock across scan AND mark: a
                    // concurrent moveout re-bases WOS positions on drain,
                    // so row locations must not go stale in between.
                    let mut s = store.write();
                    let def = s.def().clone();
                    let pred = match predicate {
                        None => None,
                        Some(p) => Some(
                            p.remap_columns(&|c| def.projection_column_of(c))
                                .ok_or_else(|| {
                                    DbError::Plan(format!(
                                        "DELETE predicate not coverable by projection {replica}"
                                    ))
                                })?,
                        ),
                    };
                    let mut locations = Vec::new();
                    for (loc, row) in s.visible_rows_with_locations(snapshot)? {
                        let keep = match &pred {
                            None => true,
                            Some(p) => p.matches(&row)?,
                        };
                        if keep {
                            locations.push(loc);
                        }
                    }
                    if b == 0 {
                        deleted_primary += locations.len() as u64;
                    }
                    for loc in locations {
                        s.mark_deleted(loc, epoch)?;
                    }
                }
            }
        }
        Ok(deleted_primary)
    }

    /// UPDATE = DELETE + INSERT of modified rows (§3.7.1). Sets are
    /// (table column, value expr over table columns).
    pub fn update(
        &self,
        table: &str,
        sets: &[(usize, Expr)],
        predicate: Option<&Expr>,
    ) -> DbResult<(Epoch, u64)> {
        self.check_writable()?;
        // Collect the new rows from the (full) table image first.
        let snapshot = self.epochs.read_committed_snapshot();
        let old_rows = self.table_rows(table, snapshot)?;
        let mut new_rows = Vec::new();
        for row in old_rows {
            let matches = match predicate {
                None => true,
                Some(p) => p.matches(&row)?,
            };
            if matches {
                let mut updated = row.clone();
                for (col, e) in sets {
                    updated[*col] = e.eval(&row)?;
                }
                new_rows.push(updated);
            }
        }
        let (epoch, deleted) = self.delete(table, predicate)?;
        if !new_rows.is_empty() {
            self.load(table, &new_rows, false)?;
        }
        Ok((epoch, deleted))
    }

    /// ALTER TABLE ... DROP PARTITION: file-level bulk delete on every
    /// replica (§3.5).
    pub fn drop_partition(&self, table: &str, key: &Value) -> DbResult<usize> {
        self.check_writable()?;
        let txn = self.txns.begin(Isolation::ReadCommitted);
        self.txns.lock(&txn, table, LockMode::O)?;
        // See `commit_serial`: writers on other tables share the marker.
        let _commit = self.commit_serial.lock();
        let epoch = self.txns.pending_commit_epoch();
        let apply = || -> DbResult<usize> {
            let mut dropped = 0;
            for n in self.up_nodes() {
                dropped += self.nodes[n].engine.drop_partition(table, key, epoch)?;
            }
            self.persist_commit_marker(epoch)?;
            Ok(dropped)
        };
        match apply() {
            Ok(dropped) => {
                self.txns.commit(&txn, true)?;
                self.record_applied(epoch);
                Ok(dropped)
            }
            Err(e) => {
                self.txns.rollback(&txn);
                Err(e)
            }
        }
    }

    /// All visible rows of a table (via the first covering family) — used
    /// by UPDATE and recovery tooling, not the query path.
    pub fn table_rows(&self, table: &str, snapshot: Epoch) -> DbResult<Vec<Row>> {
        self.table_rows_excluding(table, snapshot, None)
    }

    /// [`Cluster::table_rows`] with one family excluded as a source.
    /// Refresh MUST exclude the projection being populated: family lookup
    /// is map-ordered, so a freshly created identity-ordered projection
    /// could otherwise be chosen as its own (empty) refresh source.
    pub fn table_rows_excluding(
        &self,
        table: &str,
        snapshot: Epoch,
        exclude_family: Option<&str>,
    ) -> DbResult<Vec<Row>> {
        let (schema, _) = self
            .tables
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
        // Prefer an identity-ordered super projection (the canonical super);
        // any covering projection works as a fallback.
        let fams = self.families.read();
        let eligible = |f: &&Family| {
            f.table == table
                && f.def.prejoin.is_empty()
                && Some(f.def.name.as_str()) != exclude_family
        };
        let family = fams
            .values()
            .find(|f| eligible(f) && f.def.columns == (0..schema.arity()).collect::<Vec<_>>())
            .or_else(|| {
                fams.values()
                    .find(|f| eligible(f) && f.def.is_super(schema.arity()))
            })
            .cloned()
            .ok_or_else(|| DbError::Plan(format!("no super projection on {table}")))?;
        drop(fams);
        let snaps = self.family_snapshot_per_node(&family, snapshot)?;
        let mut out = Vec::new();
        for (n, snap) in snaps {
            let _ = n;
            // Read rows directly from the snapshot containers.
            for sc in &snap.containers {
                let visible = sc.visible(sc.backend.as_ref())?;
                if matches!(visible, vdb_storage::store::VisibleSet::None) {
                    continue;
                }
                let rows = sc.container.read_rows(sc.backend.as_ref())?;
                for (i, mut row) in rows.into_iter().enumerate() {
                    if visible.is_visible(i as u64) {
                        row.pop();
                        // Reorder projection row into table column order.
                        let mut table_row = vec![Value::Null; schema.arity()];
                        for (pi, &tc) in family.def.columns.iter().enumerate() {
                            table_row[tc] = row[pi].clone();
                        }
                        out.push(table_row);
                    }
                }
            }
            out.extend(snap.wos_rows.into_iter().map(|row| {
                let mut table_row = vec![Value::Null; schema.arity()];
                for (pi, &tc) in family.def.columns.iter().enumerate() {
                    table_row[tc] = row[pi].clone();
                }
                table_row
            }));
            if self.router.is_replicated(&family.def) {
                break; // one node suffices for replicated data
            }
        }
        Ok(out)
    }

    /// Visible rows one family currently holds (buddy-aware), in the
    /// family's projected column shape. Used by refresh to subtract rows
    /// that already fanned out into a freshly created projection.
    pub(crate) fn family_projected_rows(
        &self,
        family: &Family,
        snapshot: Epoch,
    ) -> DbResult<Vec<Row>> {
        let snaps = self.family_snapshot_per_node(family, snapshot)?;
        let mut out = Vec::new();
        for (_, snap) in snaps {
            for sc in &snap.containers {
                let visible = sc.visible(sc.backend.as_ref())?;
                if matches!(visible, vdb_storage::store::VisibleSet::None) {
                    continue;
                }
                let rows = sc.container.read_rows(sc.backend.as_ref())?;
                for (i, mut row) in rows.into_iter().enumerate() {
                    if visible.is_visible(i as u64) {
                        row.pop(); // trailing epoch column
                        out.push(row);
                    }
                }
            }
            out.extend(snap.wos_rows);
            if self.router.is_replicated(&family.def) {
                break;
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // snapshots (buddy-aware reads)
    // ------------------------------------------------------------------

    /// Per-up-node snapshot of one family at `snapshot`, applying buddy
    /// sourcing: node n reads its replica-b data exactly when it is the
    /// designated reader for ring position (n - b) mod N (§5.2).
    fn family_snapshot_per_node(
        &self,
        family: &Family,
        snapshot: Epoch,
    ) -> DbResult<Vec<(usize, SnapshotScan)>> {
        let up = self.up.read().clone();
        let n_nodes = self.nodes.len();
        let mut out = Vec::new();
        if self.router.is_replicated(&family.def) {
            for (n, &isup) in up.iter().enumerate() {
                if !isup {
                    continue;
                }
                let store = self.nodes[n].engine.projection(&family.replicas[0])?;
                let s = store.read();
                s.ensure_usable()?;
                out.push((n, s.scan_snapshot(snapshot)));
            }
            return Ok(out);
        }
        let max_buddy = family.replicas.len() - 1;
        for n in 0..n_nodes {
            if !up[n] {
                continue;
            }
            let mut combined: Option<SnapshotScan> = None;
            for (b, replica) in family.replicas.iter().enumerate() {
                let r = (n + n_nodes - b) % n_nodes;
                if self.router.reader_replica(r, n, &up, max_buddy) != Some(b) {
                    continue;
                }
                let store = self.nodes[n].engine.projection(replica)?;
                let guard = store.read();
                guard.ensure_usable()?;
                let snap = guard.scan_snapshot(snapshot);
                drop(guard);
                combined = Some(match combined {
                    None => snap,
                    Some(mut acc) => {
                        acc.containers.extend(snap.containers);
                        acc.wos_rows.extend(snap.wos_rows);
                        acc
                    }
                });
            }
            out.push((
                n,
                combined.unwrap_or(SnapshotScan {
                    containers: vec![],
                    wos_rows: vec![],
                }),
            ));
        }
        Ok(out)
    }

    /// Union of a family's data across all up nodes (broadcast gather).
    fn family_snapshot_union(&self, family: &Family, snapshot: Epoch) -> DbResult<SnapshotScan> {
        let mut acc = SnapshotScan {
            containers: vec![],
            wos_rows: vec![],
        };
        if self.router.is_replicated(&family.def) {
            let n = *self
                .up_nodes()
                .first()
                .ok_or_else(|| DbError::Unavailable("no up nodes".into()))?;
            let store = self.nodes[n].engine.projection(&family.replicas[0])?;
            let s = store.read();
            s.ensure_usable()?;
            return Ok(s.scan_snapshot(snapshot));
        }
        for (_, snap) in self.family_snapshot_per_node(family, snapshot)? {
            acc.containers.extend(snap.containers);
            acc.wos_rows.extend(snap.wos_rows);
        }
        Ok(acc)
    }

    // ------------------------------------------------------------------
    // query execution
    // ------------------------------------------------------------------

    /// Live projection families (all families remain *logically* live as
    /// long as every ring position is readable; a family is dead when data
    /// became unavailable).
    pub fn live_projections(&self) -> HashSet<String> {
        let up = self.up.read().clone();
        self.families
            .read()
            .iter()
            .filter(|(_, f)| {
                if self.router.is_replicated(&f.def) {
                    up.iter().any(|&u| u)
                } else {
                    self.router
                        .all_positions_readable(&up, f.replicas.len() - 1)
                }
            })
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Execute a planned query at a snapshot, retrying against buddy
    /// replicas when a node dies mid-query: the failed attempt surfaces a
    /// retryable error, the dead node is ejected, and snapshots re-resolve
    /// so the surviving buddies cover its ring positions (§5.2).
    pub fn execute(&self, planned: &PlannedQuery, snapshot: Epoch) -> DbResult<Vec<Row>> {
        let mut attempts = 0usize;
        loop {
            let err = match self.execute_once(planned, snapshot) {
                Ok(rows) => return Ok(rows),
                Err(e) => e,
            };
            attempts += 1;
            if attempts > self.nodes.len() || !err.is_retryable() {
                return Err(err);
            }
            // A worker reported a node death: eject it so the retry
            // re-resolves buddy-aware snapshots without it.
            if let DbError::NodeDown { node, .. } = &err {
                if self.is_up(*node) {
                    self.fail_node(*node);
                }
            }
            if !self.is_available() {
                return Err(DbError::Unavailable(format!(
                    "query cannot be retried after node loss: {err}"
                )));
            }
        }
    }

    /// One distributed execution attempt against the current up-mask.
    fn execute_once(&self, planned: &PlannedQuery, snapshot: Epoch) -> DbResult<Vec<Row>> {
        if !self.has_quorum() {
            return Err(DbError::Unavailable("cluster lost quorum".into()));
        }
        let families = self.families.read().clone();
        // Resolve every scanned family's per-node, broadcast, or
        // resegmented snapshot.
        let mut per_node_snapshots: HashMap<usize, HashMap<String, SnapshotScan>> = HashMap::new();
        let participants: Vec<usize> = if planned.single_node {
            vec![*self
                .up_nodes()
                .first()
                .ok_or_else(|| DbError::Unavailable("no up nodes".into()))?]
        } else {
            self.up_nodes()
        };
        for (fname, access) in &planned.table_access {
            let family = families
                .get(fname)
                .ok_or_else(|| DbError::NotFound(format!("projection {fname}")))?;
            match access {
                TableAccess::Local => {
                    for (n, snap) in self.family_snapshot_per_node(family, snapshot)? {
                        per_node_snapshots
                            .entry(n)
                            .or_default()
                            .insert(fname.clone(), snap);
                    }
                }
                TableAccess::Broadcast => {
                    let union = self.family_snapshot_union(family, snapshot)?;
                    for &n in &participants {
                        per_node_snapshots
                            .entry(n)
                            .or_default()
                            .insert(fname.clone(), union.clone());
                    }
                }
                TableAccess::Resegment { keys } => {
                    for (n, rows) in self.resegment_rows(family, snapshot, keys)? {
                        per_node_snapshots.entry(n).or_default().insert(
                            fname.clone(),
                            SnapshotScan {
                                containers: vec![],
                                wos_rows: rows,
                            },
                        );
                    }
                }
            }
        }
        // Run local plans as jobs on the shared worker pool. The
        // `cluster.exec.node<i>` fault points let tests kill a node at the
        // worst moment: mid-query, after its snapshots resolved.
        let local_plan = Arc::new(planned.local.clone());
        let mut jobs: Vec<vdb_exec::pool::Job<Vec<Row>>> = Vec::with_capacity(participants.len());
        for &n in &participants {
            let snaps = per_node_snapshots.remove(&n).unwrap_or_default();
            let backend = self.nodes[n].engine.backend().clone();
            let plan = local_plan.clone();
            jobs.push(Box::new(move || -> DbResult<Vec<Row>> {
                if vdb_storage::fault::fire(&format!("cluster.exec.node{n}")).is_err() {
                    return Err(DbError::NodeDown {
                        node: n,
                        detail: "node died while executing its local plan".into(),
                    });
                }
                let mut ctx = ExecContext::new(backend);
                ctx.snapshots = snaps;
                execute_collect(&plan, &mut ctx)
            }));
        }
        let node_rows = vdb_exec::pool::shared().run_tasks(jobs, "cluster local plan")?;
        let union_rows: Vec<Row> = node_rows.into_iter().flatten().collect();
        // Merge at the initiator.
        let arity = union_arity(&planned.merge, &union_rows);
        let merge_plan = planned.merge_plan(union_rows, arity);
        let mut ctx = ExecContext::new(self.nodes[participants[0]].engine.backend().clone());
        execute_collect(&merge_plan, &mut ctx)
    }

    /// Ship one family's rows through the exchange, re-segmented on `keys`
    /// (TABLE column indexes): every up node's buddy-aware local scan feeds
    /// a ring-routing Send, and each ring position's lane is delivered to
    /// the node currently designated to read the anchor side's rows for
    /// that position — so the downstream join stays node-local.
    fn resegment_rows(
        &self,
        family: &Family,
        snapshot: Epoch,
        keys: &[usize],
    ) -> DbResult<Vec<(usize, Vec<Row>)>> {
        let n_nodes = self.nodes.len();
        let up = self.up.read().clone();
        // Keys arrive as table columns; route on their projection positions.
        let positions: Vec<usize> = keys
            .iter()
            .map(|k| {
                family
                    .def
                    .columns
                    .iter()
                    .position(|tc| tc == k)
                    .ok_or_else(|| {
                        DbError::Plan(format!(
                            "resegment key column {k} not stored by projection {}",
                            family.def.name
                        ))
                    })
            })
            .collect::<DbResult<_>>()?;
        let hash = Expr::call(
            Func::Hash,
            positions.iter().map(|&p| Expr::col(p, "seg")).collect(),
        );
        // Ring position -> the node reading the anchor's rows for it under
        // the current up-mask (primary holder, else the first live buddy).
        let max_buddy = self.config.k_safety;
        let reading_node: Vec<usize> = (0..n_nodes)
            .map(|r| {
                (0..=max_buddy)
                    .map(|b| (r + b) % n_nodes)
                    .find(|&node| up[node])
                    .ok_or_else(|| {
                        DbError::Unavailable(format!("ring position {r} has no live replica"))
                    })
            })
            .collect::<DbResult<_>>()?;
        // One lane per ring position; every source node's router sends into
        // all of them (the senders are MPSC clones).
        let mut senders = Vec::with_capacity(n_nodes);
        let mut receivers = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let (tx, rx) = crossbeam::channel::bounded::<vdb_exec::Batch>(4);
            senders.push(tx);
            receivers.push(rx);
        }
        let mut routers = Vec::new();
        for (_, snap) in self.family_snapshot_per_node(family, snapshot)? {
            let rows = snapshot_rows(&snap)?;
            if rows.is_empty() {
                continue;
            }
            let send = vdb_exec::exchange::SendOp::new(
                Box::new(vdb_exec::operator::ValuesOp::from_rows(rows)),
                vdb_exec::exchange::Routing::Ring(hash.clone()),
                senders.clone(),
                self.exchange_bytes.clone(),
            )
            .with_shutdown(self.register_exchange());
            routers.push(std::thread::spawn(move || send.run()));
        }
        drop(senders);
        // Multiplexed drain: a blocking per-lane drain could deadlock with
        // a router wedged on a full lane we are not reading yet, so poll
        // every lane until all routers finished and the lanes ran dry.
        let mut per_node: Vec<Vec<Row>> = vec![Vec::new(); n_nodes];
        loop {
            let mut drained = false;
            for (r, rx) in receivers.iter().enumerate() {
                while let Some(batch) = rx.try_recv() {
                    per_node[reading_node[r]].extend(batch.into_rows());
                    drained = true;
                }
            }
            if !drained {
                if routers.iter().all(|h| h.is_finished()) {
                    break; // final sweep saw dry lanes with no router left
                }
                std::thread::yield_now();
            }
        }
        for h in routers {
            h.join()
                .map_err(|_| DbError::Execution("exchange router panicked".into()))??;
        }
        Ok(up
            .iter()
            .enumerate()
            .filter(|&(_, &isup)| isup)
            .map(|(n, _)| (n, std::mem::take(&mut per_node[n])))
            .collect())
    }

    /// Build the optimizer catalog from live storage (sampled stats).
    pub fn catalog(&self) -> DbResult<OptimizerCatalog> {
        let snapshot = self.epochs.read_committed_snapshot();
        let mut catalog = OptimizerCatalog::default();
        for (tname, (schema, partition_by)) in self.tables.read().iter() {
            let mut projections = Vec::new();
            for (fname, family) in self.families.read().iter() {
                if &family.table != tname {
                    continue;
                }
                let mut row_count = 0u64;
                let mut column_bytes = vec![0u64; family.def.arity()];
                let mut column_encodings: Vec<Vec<(String, u64)>> = Vec::new();
                let mut sample: Vec<Row> = Vec::new();
                // Max per-node morsel count: the planner's parallel-scan
                // DoP cap (each node executes its local plan, so the
                // per-node container count is what bounds useful workers).
                let mut scan_morsels = 1usize;
                for n in self.up_nodes() {
                    let store = self.nodes[n].engine.projection(&family.replicas[0])?;
                    let s = store.read();
                    row_count += s.row_count_estimate();
                    scan_morsels = scan_morsels.max(s.morsel_count());
                    for (i, b) in s.column_bytes().into_iter().enumerate() {
                        column_bytes[i] += b;
                    }
                    for (i, encs) in s.column_encodings().into_iter().enumerate() {
                        if column_encodings.len() <= i {
                            column_encodings.resize(i + 1, Vec::new());
                        }
                        for (name, rows) in encs {
                            match column_encodings[i].iter_mut().find(|(n, _)| *n == name) {
                                Some((_, r)) => *r += rows,
                                None => column_encodings[i].push((name, rows)),
                            }
                        }
                    }
                    if sample.len() < 1000 {
                        let rows = s.visible_rows(snapshot)?;
                        sample.extend(rows.into_iter().take(1000 - sample.len()));
                    }
                    if self.router.is_replicated(&family.def) {
                        break;
                    }
                }
                let mut def = family.def.clone();
                def.name = fname.clone();
                projections.push(
                    ProjectionMeta::from_sample(def, row_count, column_bytes, &sample)
                        .with_scan_morsels(scan_morsels)
                        .with_column_encodings(column_encodings),
                );
            }
            catalog.tables.insert(
                tname.clone(),
                TableMeta {
                    schema: schema.clone(),
                    partition_by: partition_by.clone(),
                    projections,
                },
            );
        }
        Ok(catalog)
    }

    // ------------------------------------------------------------------
    // maintenance
    // ------------------------------------------------------------------

    /// Run the tuple mover over every store on every up node (§4).
    pub fn tuple_mover_tick(&self, force_moveout: bool) -> DbResult<()> {
        let epoch = self.epochs.read_committed_snapshot();
        let ahm = self.epochs.ahm();
        for n in self.up_nodes() {
            for pname in self.nodes[n].engine.projection_names() {
                let store = self.nodes[n].engine.projection(&pname)?;
                let mut s = store.write();
                self.mover.run_moveout(&mut s, epoch, force_moveout)?;
                self.mover.run_mergeout(&mut s, ahm)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // durability (§5.1)
    // ------------------------------------------------------------------

    /// Durably record that `epoch` committed: an 8-byte marker file written
    /// to every up node's backend. The marker is THE commit point for
    /// recovery — applied writes whose epoch exceeds the marker are
    /// truncated away on reopen. Fires the `commit.before_marker` fault
    /// point so crash tests can exercise exactly that window.
    fn persist_commit_marker(&self, epoch: Epoch) -> DbResult<()> {
        vdb_storage::fault::fire(vdb_storage::fault::COMMIT_BEFORE_MARKER)?;
        for n in self.up_nodes() {
            self.nodes[n]
                .engine
                .backend()
                .write_file("commit.marker", &epoch.0.to_le_bytes())?;
        }
        Ok(())
    }

    /// Highest durably committed epoch across all nodes (max of the commit
    /// markers; `Epoch::ZERO` on a fresh cluster).
    pub fn last_durable_epoch(&self) -> Epoch {
        let mut max = Epoch::ZERO;
        for n in &self.nodes {
            if let Ok(bytes) = n.engine.backend().read_file("commit.marker") {
                if let Ok(arr) = <[u8; 8]>::try_from(bytes.as_slice()) {
                    max = max.max(Epoch(u64::from_le_bytes(arr)));
                }
            }
        }
        max
    }

    /// Recovery truncation: discard every effect stamped after `epoch` on
    /// every node (a crashed commit applied writes but never reached its
    /// marker). Also re-checkpoints each WOS so the redo log converges.
    pub fn truncate_all_after(&self, epoch: Epoch) -> DbResult<()> {
        for n in &self.nodes {
            for pname in n.engine.projection_names() {
                let store = n.engine.projection(&pname)?;
                store.write().truncate_after(epoch)?;
            }
        }
        Ok(())
    }

    /// Hard-link backup of every projection on every up node (§5.2).
    pub fn backup(&self, tag: &str) -> DbResult<usize> {
        let mut files = 0;
        for n in self.up_nodes() {
            for pname in self.nodes[n].engine.projection_names() {
                let store = self.nodes[n].engine.projection(&pname)?;
                files += store.read().backup(tag)?;
            }
        }
        Ok(files)
    }

    /// Total ROS bytes across the cluster (replica 0 only — the logical
    /// data size; buddies double physical storage exactly as in Vertica).
    pub fn logical_ros_bytes(&self) -> u64 {
        let mut total = 0;
        for family in self.families.read().values() {
            for n in self.up_nodes() {
                if let Ok(store) = self.nodes[n].engine.projection(&family.replicas[0]) {
                    total += store.read().ros_bytes();
                }
                if self.router.is_replicated(&family.def) {
                    break;
                }
            }
        }
        total
    }

    pub(crate) fn family(&self, name: &str) -> Option<Family> {
        self.families.read().get(name).cloned()
    }

    pub(crate) fn router(&self) -> &RingRouter {
        &self.router
    }

    pub(crate) fn node_up_mask(&self) -> Vec<bool> {
        self.up.read().clone()
    }

    fn record_applied(&self, epoch: Epoch) {
        let up = self.up.read().clone();
        let mut applied = self.applied.write();
        for (n, a) in applied.iter_mut().enumerate() {
            if up[n] {
                *a = epoch;
            }
        }
    }

    pub(crate) fn applied_epoch(&self, node: usize) -> Epoch {
        self.applied.read()[node]
    }

    pub(crate) fn set_applied_epoch(&self, node: usize, epoch: Epoch) {
        self.applied.write()[node] = epoch;
    }

    pub(crate) fn mark_up(&self, node: usize) {
        self.up.write()[node] = true;
        if self.up.read().iter().all(|&u| u) {
            self.epochs.freeze_ahm(false);
        }
    }
}

/// Materialize a snapshot (visible container rows + the WOS tail) into
/// projection-shaped rows — the local scan feeding an exchange Send.
fn snapshot_rows(snap: &SnapshotScan) -> DbResult<Vec<Row>> {
    let mut out = snap.wos_rows.clone();
    for sc in &snap.containers {
        let visible = sc.visible(sc.backend.as_ref())?;
        if matches!(visible, vdb_storage::store::VisibleSet::None) {
            continue;
        }
        let rows = sc.container.read_rows(sc.backend.as_ref())?;
        for (i, mut row) in rows.into_iter().enumerate() {
            if visible.is_visible(i as u64) {
                row.pop(); // trailing epoch column
                out.push(row);
            }
        }
    }
    Ok(out)
}

fn union_arity(merge: &MergeSpec, rows: &[Row]) -> usize {
    rows.first().map(Vec::len).unwrap_or(match merge {
        MergeSpec::ReAggregate {
            group_columns,
            merge_aggs,
            ..
        } => group_columns.len() + merge_aggs.len(),
        _ => 1,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_types::{ColumnDef, DataType};

    fn sales_schema() -> TableSchema {
        TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("region", DataType::Integer),
                ColumnDef::new("amt", DataType::Integer),
            ],
        )
    }

    fn make_cluster(n: usize, k: usize) -> Cluster {
        let c = Cluster::new(ClusterConfig {
            n_nodes: n,
            k_safety: k,
            n_local_segments: 2,
            ..Default::default()
        });
        c.create_table(sales_schema(), None).unwrap();
        c.create_projection(ProjectionDef::super_projection(
            &sales_schema(),
            "sales_super",
            &[0],
            &[0],
        ))
        .unwrap();
        c
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Integer(i),
                    Value::Integer(i % 4),
                    Value::Integer(i * 10),
                ]
            })
            .collect()
    }

    #[test]
    fn load_replicates_k_plus_1_buddies() {
        let c = make_cluster(3, 1);
        c.load("sales", &rows(300), true).unwrap();
        // Each replica holds all 300 rows across the cluster.
        let snapshot = c.epochs.read_committed_snapshot();
        for replica in ["sales_super_b0", "sales_super_b1"] {
            let mut total = 0;
            for n in 0..3 {
                let store = c.node_engine(n).projection(replica).unwrap();
                total += store.read().visible_rows(snapshot).unwrap().len();
            }
            assert_eq!(total, 300, "replica {replica}");
        }
        // Buddy shift: per-node counts differ between replicas but each
        // node holds data for both.
        assert_eq!(c.table_rows("sales", snapshot).unwrap().len(), 300);
    }

    #[test]
    fn quorum_and_availability() {
        let c = make_cluster(3, 1);
        assert!(c.is_available());
        c.fail_node(0);
        assert!(c.has_quorum());
        assert!(c.data_available(), "K=1 tolerates one failure");
        assert!(c.is_available());
        c.fail_node(1);
        assert!(!c.has_quorum(), "2 of 3 down: no quorum");
        assert!(!c.is_available());
        // Writes refused without quorum.
        assert!(c.load("sales", &rows(1), true).is_err());
    }

    #[test]
    fn buddy_sourced_reads_after_failure() {
        let c = make_cluster(3, 1);
        c.load("sales", &rows(500), true).unwrap();
        let snapshot = c.epochs.read_committed_snapshot();
        let before = c.table_rows("sales", snapshot).unwrap().len();
        assert_eq!(before, 500);
        c.fail_node(1);
        let after = c.table_rows("sales", snapshot).unwrap().len();
        assert_eq!(after, 500, "buddy projections fill the gap");
    }

    #[test]
    fn delete_and_snapshot_reads() {
        let c = make_cluster(3, 1);
        c.load("sales", &rows(100), true).unwrap();
        let before = c.epochs.read_committed_snapshot();
        let pred = Expr::binary(vdb_types::BinOp::Lt, Expr::col(0, "id"), Expr::int(10));
        let (_, deleted) = c.delete("sales", Some(&pred)).unwrap();
        assert_eq!(deleted, 10);
        let now = c.epochs.read_committed_snapshot();
        assert_eq!(c.table_rows("sales", now).unwrap().len(), 90);
        assert_eq!(
            c.table_rows("sales", before).unwrap().len(),
            100,
            "historical snapshot unaffected"
        );
    }

    #[test]
    fn update_rewrites_rows() {
        let c = make_cluster(3, 1);
        c.load("sales", &rows(20), true).unwrap();
        let pred = Expr::eq(Expr::col(0, "id"), Expr::int(5));
        let sets = vec![(2usize, Expr::int(999))];
        c.update("sales", &sets, Some(&pred)).unwrap();
        let now = c.epochs.read_committed_snapshot();
        let all = c.table_rows("sales", now).unwrap();
        assert_eq!(all.len(), 20);
        let updated = all.iter().find(|r| r[0] == Value::Integer(5)).unwrap();
        assert_eq!(updated[2], Value::Integer(999));
    }

    #[test]
    fn load_rejected_without_super_projection() {
        let c = Cluster::new(ClusterConfig {
            n_nodes: 2,
            k_safety: 0,
            ..Default::default()
        });
        c.create_table(sales_schema(), None).unwrap();
        assert!(c.load("sales", &rows(1), true).is_err());
    }

    #[test]
    fn catalog_reflects_loaded_data() {
        let c = make_cluster(3, 1);
        c.load("sales", &rows(1000), true).unwrap();
        let cat = c.catalog().unwrap();
        let t = cat.table("sales").unwrap();
        assert_eq!(t.row_count(), 1000);
        let p = &t.projections[0];
        assert_eq!(p.def.name, "sales_super");
        assert!(p.column_bytes.iter().sum::<u64>() > 0);
        assert!(p.stats[0].distinct > 100);
        // Observed encodings flow from the position indexes into the
        // catalog: every column reports at least one concrete codec, and
        // the per-column row totals cover every ROS row.
        assert_eq!(p.column_encodings.len(), p.def.arity());
        for col in p.column_encodings.iter() {
            assert!(!col.is_empty());
            assert!(col.iter().map(|(_, r)| r).sum::<u64>() > 0);
        }
        assert!(p.dominant_encoding(0).is_some());
    }

    #[test]
    fn tuple_mover_consolidates_across_cluster() {
        let mut cfg = ClusterConfig {
            n_nodes: 2,
            k_safety: 0,
            n_local_segments: 1,
            ..Default::default()
        };
        cfg.tuple_mover.merge_threshold = 3;
        cfg.tuple_mover.strata_base_bytes = 1 << 20;
        let c = Cluster::new(cfg);
        c.create_table(sales_schema(), None).unwrap();
        c.create_projection(ProjectionDef::super_projection(
            &sales_schema(),
            "sales_super",
            &[0],
            &[0],
        ))
        .unwrap();
        for i in 0..6 {
            c.load("sales", &rows(20 + i), true).unwrap();
        }
        let count_containers = |c: &Cluster| -> usize {
            (0..2)
                .map(|n| {
                    c.node_engine(n)
                        .projection("sales_super")
                        .unwrap()
                        .read()
                        .container_count()
                })
                .sum()
        };
        let before = count_containers(&c);
        c.tuple_mover_tick(true).unwrap();
        let after = count_containers(&c);
        assert!(after < before, "{before} -> {after}");
        let snapshot = c.epochs.read_committed_snapshot();
        let total: usize = c.table_rows("sales", snapshot).unwrap().len();
        assert_eq!(total, (0..6).map(|i| 20 + i as usize).sum::<usize>());
    }

    #[test]
    fn over_budget_wos_triggers_forced_moveout() {
        // §3.7 back-pressure: with a per-node WOS budget configured, a
        // WOS-path load that pushes a node past the budget triggers a
        // forced moveout immediately — the node's WOS drains without
        // waiting for a tuple-mover tick.
        let make = |budget: Option<usize>| -> Cluster {
            let c = Cluster::new(ClusterConfig {
                n_nodes: 2,
                k_safety: 0,
                n_local_segments: 1,
                wos_budget_bytes: budget,
                ..Default::default()
            });
            c.create_table(sales_schema(), None).unwrap();
            c.create_projection(ProjectionDef::super_projection(
                &sales_schema(),
                "sales_super",
                &[0],
                &[0],
            ))
            .unwrap();
            c
        };

        // Unbounded control: repeated WOS loads pile up in memory.
        let free = make(None);
        for _ in 0..4 {
            free.load("sales", &rows(200), false).unwrap();
        }
        let unbounded: usize = (0..2).map(|n| free.node_wos_bytes(n)).sum();
        assert!(unbounded > 0, "WOS loads stay in WOS without a budget");

        // Budgeted: same traffic, WOS snaps back under the cap after
        // every over-budget commit.
        let budget = unbounded / 8;
        let capped = make(Some(budget));
        for _ in 0..4 {
            capped.load("sales", &rows(200), false).unwrap();
            for n in 0..2 {
                assert!(
                    capped.node_wos_bytes(n) <= budget,
                    "node {n} over budget after enforcement"
                );
            }
        }
        // Nothing lost: the moved-out rows are all visible.
        let snapshot = capped.epochs.read_committed_snapshot();
        assert_eq!(capped.table_rows("sales", snapshot).unwrap().len(), 800);
    }

    #[test]
    fn concurrent_loads_commit_at_distinct_epochs() {
        // I-locks are self-compatible, so only the commit mutex keeps two
        // in-flight loads from stamping the same pending epoch — which
        // would let one transaction's marker vouch for the other's
        // partial writes after a crash.
        let c = std::sync::Arc::new(make_cluster(2, 0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                let mut epochs = Vec::new();
                for i in 0..10 {
                    let row = vec![
                        Value::Integer(t * 100 + i),
                        Value::Integer(0),
                        Value::Integer(0),
                    ];
                    epochs.push(c.load("sales", &[row], false).unwrap());
                }
                epochs
            }));
        }
        let mut all: Vec<Epoch> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let total = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), total, "two DML transactions shared an epoch");
        let snapshot = c.epochs.read_committed_snapshot();
        assert_eq!(c.table_rows("sales", snapshot).unwrap().len(), 40);
    }
}
