//! Ring segmentation (§3.6).
//!
//! "Nodes are assigned to store ranges of segmentation expression values":
//! node i of N owns `[i·CMAX/N, (i+1)·CMAX/N)` with CMAX = 2⁶⁴ — "a classic
//! ring style segmentation scheme". Buddy replica b of a projection family
//! shifts ownership b nodes clockwise, so the rows node d owns in replica 0
//! are exactly the rows node (d+b) mod N holds in replica b.

use vdb_storage::projection::{ProjectionDef, Segmentation};
use vdb_types::{DbResult, Row};

/// Ring position → owning node index (replica 0).
pub fn ring_node(seg_value: u64, n_nodes: usize) -> usize {
    ((seg_value as u128 * n_nodes as u128) >> 64) as usize
}

/// Routes rows of one projection family across the cluster.
#[derive(Debug, Clone)]
pub struct RingRouter {
    pub n_nodes: usize,
}

impl RingRouter {
    pub fn new(n_nodes: usize) -> RingRouter {
        assert!(n_nodes >= 1);
        RingRouter { n_nodes }
    }

    /// The node storing a projection-shaped row for replica `buddy`.
    /// `None` means replicated: every node stores it.
    pub fn node_for(
        &self,
        def: &ProjectionDef,
        row: &Row,
        buddy: usize,
    ) -> DbResult<Option<usize>> {
        match def.segment_value(row)? {
            None => Ok(None),
            Some(v) => Ok(Some((ring_node(v, self.n_nodes) + buddy) % self.n_nodes)),
        }
    }

    /// Which buddy replica node `n` should read for ring position `r`,
    /// given node liveness: the smallest `b` such that `(r + b) % N` is up.
    /// Returns Some(b) if that reader is node `n`.
    pub fn reader_replica(
        &self,
        r: usize,
        n: usize,
        up: &[bool],
        max_buddy: usize,
    ) -> Option<usize> {
        for b in 0..=max_buddy {
            let holder = (r + b) % self.n_nodes;
            if up[holder] {
                return (holder == n).then_some(b);
            }
        }
        None
    }

    /// Is every ring position readable with the given liveness and K+1
    /// replicas? (The data-availability half of K-safety, §5.3.)
    pub fn all_positions_readable(&self, up: &[bool], max_buddy: usize) -> bool {
        (0..self.n_nodes).all(|r| (0..=max_buddy).any(|b| up[(r + b) % self.n_nodes]))
    }

    pub fn is_replicated(&self, def: &ProjectionDef) -> bool {
        matches!(def.segmentation, Segmentation::Replicated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_contiguous_equal_slices() {
        let n = 4;
        assert_eq!(ring_node(0, n), 0);
        assert_eq!(ring_node(u64::MAX / 4 - 1, n), 0);
        assert_eq!(ring_node(u64::MAX / 4 + 2, n), 1);
        assert_eq!(ring_node(u64::MAX / 2 + 2, n), 2);
        assert_eq!(ring_node(u64::MAX, n), 3);
    }

    #[test]
    fn reader_replica_prefers_primary() {
        let r = RingRouter::new(3);
        let up = vec![true, true, true];
        // Ring position 1: primary holder node 1 reads replica 0.
        assert_eq!(r.reader_replica(1, 1, &up, 1), Some(0));
        assert_eq!(r.reader_replica(1, 2, &up, 1), None);
    }

    #[test]
    fn reader_replica_falls_to_buddy_on_failure() {
        let r = RingRouter::new(3);
        let up = vec![true, false, true];
        // Node 1 down: ring position 1 is read from node 2's replica 1.
        assert_eq!(r.reader_replica(1, 2, &up, 1), Some(1));
        assert_eq!(r.reader_replica(1, 0, &up, 1), None);
        // Ring position 0's primary (node 0) is up: unchanged.
        assert_eq!(r.reader_replica(0, 0, &up, 1), Some(0));
    }

    #[test]
    fn availability_check() {
        let r = RingRouter::new(4);
        // K=1 (2 replicas): one failure fine, two adjacent failures lose a
        // ring position.
        assert!(r.all_positions_readable(&[true, false, true, true], 1));
        assert!(!r.all_positions_readable(&[true, false, false, true], 1));
        // Non-adjacent double failure with K=1: position of the first down
        // node is covered by its successor... node1 down → buddy node2 down
        // too? [t,f,t,f]: position 1 read by node 2 (up) — ok; position 3
        // read by node 0 (up) — ok.
        assert!(r.all_positions_readable(&[true, false, true, false], 1));
        // K=2 (3 replicas) survives two adjacent failures.
        assert!(r.all_positions_readable(&[true, false, false, true], 2));
    }
}
