//! `vdb-cluster` — the shared-nothing cluster simulation (§3.6, §5.2–5.3).
//!
//! A [`cluster::Cluster`] holds N simulated nodes, each with its own
//! [`vdb_storage::StorageEngine`] and data directory. It implements:
//!
//! * **segmentation** ([`segmentation`]) — the ring mapping of §3.6:
//!   node *i* owns the *i*-th equal slice of the unsigned 64-bit
//!   segmentation-expression range;
//! * **buddy projections & K-safety** — each segmented projection family
//!   keeps K+1 replicas, replica *i* shifted *i* nodes around the ring, so
//!   any K node failures leave every row readable (§5.2);
//! * **quorum commit without 2PC** (§5) — commits broadcast to all up
//!   nodes; a node that fails to apply is ejected and later recovers;
//!   the cluster shuts down if more than ⌊N/2⌋ nodes are lost (§5.3);
//! * **distributed query execution** — each up node runs the planner's
//!   local plan against its storage (buddy-sourced when a neighbour is
//!   down, broadcast-gathered for non-co-located tables); the initiator
//!   merges per the plan's [`vdb_optimizer::MergeSpec`];
//! * **recovery** ([`recovery`]) — truncate to the Last Good Epoch, then
//!   historical + current phase copy from a buddy (§5.2); **refresh**
//!   populates projections created after load.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod recovery;
pub mod segmentation;

pub use cluster::{Cluster, ClusterConfig};
pub use segmentation::{ring_node, RingRouter};
