//! Recovery, refresh (§5.2).
//!
//! "When a node rejoins the cluster after a failure, it recovers each
//! projection segment from a corresponding buddy projection segment.
//! First, the node truncates all tuples that were inserted after its LGE
//! ... Then recovery proceeds in two phases": a lock-free **historical
//! phase** up to an intermediate epoch, then a **current phase** under a
//! Shared lock for the remainder. Because "the data+epoch itself serves as
//! a log of past system activity", recovery is incremental DML replay, not
//! log shipping.

use crate::cluster::{Cluster, Family};
use vdb_txn::txn::Isolation;
use vdb_txn::LockMode;
use vdb_types::{DbError, DbResult, Epoch, Row};

/// Statistics from one node recovery.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    pub projections_recovered: usize,
    pub historical_rows: u64,
    pub current_rows: u64,
}

/// Replay payload gathered from a buddy.
#[derive(Debug, Default)]
struct ReplaySet {
    rows: Vec<(Row, Epoch, Option<Epoch>)>,
    late_deletes: Vec<(Row, Epoch, Epoch)>,
}

impl Cluster {
    /// Recover a failed node and rejoin it to the cluster.
    pub fn recover_node(&self, node: usize) -> DbResult<RecoveryStats> {
        if self.is_up(node) {
            return Err(DbError::Cluster(format!("node {node} is not down")));
        }
        if !self.has_quorum() {
            return Err(DbError::Cluster(
                "cannot recover without a quorum of live nodes".into(),
            ));
        }
        let mut stats = RecoveryStats::default();
        let families: Vec<String> = {
            let mut v: Vec<String> = self
                .table_names()
                .iter()
                .flat_map(|t| self.projection_families_of(t))
                .collect();
            v.sort();
            v.dedup();
            v
        };
        for fname in families {
            let family = self
                .family(&fname)
                .ok_or_else(|| DbError::NotFound(format!("projection {fname}")))?;
            for (b, replica) in family.replicas.iter().enumerate() {
                let store = self.node_engine(node).projection(replica)?;
                // 1. Truncate to the node's Last Good Epoch: the highest
                // epoch it had fully applied before failing (WOS data past
                // it was lost with the crash).
                let lge = self.applied_epoch(node);
                store.write().truncate_after(lge)?;
                // 2. Historical phase (no locks): replay (LGE, Eh].
                let eh = self.epochs.read_committed_snapshot();
                let hist = self.gather_replay_rows(&family.def, replica, b, node, lge, eh)?;
                stats.historical_rows += hist.rows.len() as u64;
                store.write().apply_history(hist.rows)?;
                store.write().apply_late_deletes(&hist.late_deletes)?;
                // 3. Current phase: Shared lock on the table, replay the
                // remainder so the projection is exactly current.
                let txn = self.txns.begin(Isolation::ReadCommitted);
                self.txns.lock(&txn, &family.table, LockMode::S)?;
                let current = self.epochs.current();
                let cur = self.gather_replay_rows(&family.def, replica, b, node, eh, current)?;
                stats.current_rows += cur.rows.len() as u64;
                store.write().apply_history(cur.rows)?;
                store.write().apply_late_deletes(&cur.late_deletes)?;
                self.txns.commit(&txn, false)?;
                stats.projections_recovered += 1;
            }
        }
        self.set_applied_epoch(node, self.epochs.read_committed_snapshot());
        self.mark_up(node);
        Ok(stats)
    }

    /// Rows (with epochs and delete marks) plus late deletes that replica
    /// `b` on `node` should hold with commit epoch in `(from, to]`,
    /// gathered from buddy replicas on live nodes.
    fn gather_replay_rows(
        &self,
        def: &vdb_storage::projection::ProjectionDef,
        _replica: &str,
        b: usize,
        node: usize,
        from: Epoch,
        to: Epoch,
    ) -> DbResult<ReplaySet> {
        let family = self
            .family(&family_name_of(def))
            .ok_or_else(|| DbError::NotFound("family".into()))?;
        let n_nodes = self.n_nodes();
        let up = self.node_up_mask();
        if self.router().is_replicated(&family.def) {
            // Copy from any live node's replica.
            let src = (0..n_nodes)
                .find(|&m| up[m] && m != node)
                .ok_or_else(|| DbError::RecoveryFailed("no live source replica".into()))?;
            let store = self.node_engine(src).projection(&family.replicas[0])?;
            let s = store.read();
            return Ok(ReplaySet {
                rows: s.history_between(from, to)?,
                late_deletes: s.late_deletes_between(from, to)?,
            });
        }
        // Segmented: this replica on this node owns ring position
        // r = (node - b) mod N. Source from any other replica j whose
        // holder node (r + j) mod N is up.
        let r = (node + n_nodes - b) % n_nodes;
        let mut source = None;
        for (j, other) in family.replicas.iter().enumerate() {
            let holder = (r + j) % n_nodes;
            if holder != node && up[holder] {
                source = Some((holder, other.clone()));
                break;
            }
        }
        let (src_node, src_replica) = source.ok_or_else(|| {
            DbError::Cluster(format!(
                "no live buddy holds ring position {r} for {}",
                family.def.name
            ))
        })?;
        let store = self.node_engine(src_node).projection(&src_replica)?;
        let s = store.read();
        let hist = s.history_between(from, to)?;
        let late = s.late_deletes_between(from, to)?;
        // The source store may hold several ring positions; keep only
        // rows whose ring position is r.
        let mut out = ReplaySet::default();
        for (row, e, d) in hist {
            if let Some(v) = family.def.segment_value(&row)? {
                if crate::segmentation::ring_node(v, n_nodes) == r {
                    out.rows.push((row, e, d));
                }
            }
        }
        for (row, e, d) in late {
            if let Some(v) = family.def.segment_value(&row)? {
                if crate::segmentation::ring_node(v, n_nodes) == r {
                    out.late_deletes.push((row, e, d));
                }
            }
        }
        Ok(out)
    }

    /// Refresh (§5.2): populate a projection family created after its
    /// table was loaded, from a super projection of the same table.
    pub fn refresh_projection(&self, family_name: &str) -> DbResult<u64> {
        let family = self
            .family(family_name)
            .ok_or_else(|| DbError::NotFound(format!("projection {family_name}")))?;
        // Current phase under a Shared lock (simplified single-phase
        // refresh; the table is small enough to copy in one step here).
        // The lock comes FIRST: the snapshot and both row sets below must
        // be stable against concurrent commits.
        let txn = self.txns.begin(Isolation::ReadCommitted);
        if let Err(e) = self.txns.lock(&txn, &family.table, LockMode::S) {
            self.txns.rollback(&txn);
            return Err(e);
        }
        // Locks release only at commit/rollback, so a mid-refresh error
        // must roll back or the S lock would block ingest forever.
        let copied = self.refresh_locked(&family, family_name, &txn);
        if copied.is_err() {
            self.txns.rollback(&txn);
        }
        copied
    }

    fn refresh_locked(
        &self,
        family: &Family,
        family_name: &str,
        txn: &vdb_txn::Transaction,
    ) -> DbResult<u64> {
        // Refresh stamps and commits a DML epoch like any writer, so it
        // serializes with them (see `Cluster::commit_serial`).
        let _commit = self.commit_serial.lock();
        let snapshot = self.epochs.read_committed_snapshot();
        // Never read the refresh target as its own source (it is empty).
        let all_rows = self.table_rows_excluding(&family.table, snapshot, Some(family_name))?;
        // Loads committed between the family's registration and this
        // refresh already fanned out into it; copying them again would
        // duplicate rows. Subtract the target's current visible multiset
        // (compared in the projected shape).
        let mut have: std::collections::BTreeMap<Row, u64> = std::collections::BTreeMap::new();
        for prow in self.family_projected_rows(family, snapshot)? {
            *have.entry(prow).or_insert(0) += 1;
        }
        let mut table_rows = Vec::with_capacity(all_rows.len());
        for row in all_rows {
            if let Some(n) = have.get_mut(&family.def.project_row(&row)?) {
                if *n > 0 {
                    *n -= 1;
                    continue;
                }
            }
            table_rows.push(row);
        }
        let epoch = self.txns.pending_commit_epoch();
        let up = self.node_up_mask();
        for (b, replica) in family.replicas.iter().enumerate() {
            if self.router().is_replicated(&family.def) {
                for (n, &node_up) in up.iter().enumerate().take(self.n_nodes()) {
                    if node_up {
                        self.node_engine(n).insert_projection_rows(
                            replica,
                            &table_rows,
                            epoch,
                            true,
                        )?;
                    }
                }
                continue;
            }
            let mut per_node: std::collections::HashMap<usize, Vec<Row>> =
                std::collections::HashMap::new();
            for row in &table_rows {
                let prow = family.def.project_row(row)?;
                if let Some(n) = self.router().node_for(&family.def, &prow, b)? {
                    per_node.entry(n).or_default().push(row.clone());
                }
            }
            for (n, rows) in per_node {
                if up[n] {
                    self.node_engine(n)
                        .insert_projection_rows(replica, &rows, epoch, true)?;
                }
            }
        }
        self.txns.commit(txn, true)?;
        Ok(table_rows.len() as u64)
    }
}

fn family_name_of(def: &vdb_storage::projection::ProjectionDef) -> String {
    def.name.clone()
}

#[cfg(test)]
mod tests {
    use crate::cluster::{Cluster, ClusterConfig};
    use vdb_storage::projection::ProjectionDef;
    use vdb_types::{ColumnDef, DataType, Row, TableSchema, Value};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("v", DataType::Integer),
            ],
        )
    }

    fn cluster() -> Cluster {
        let c = Cluster::new(ClusterConfig {
            n_nodes: 3,
            k_safety: 1,
            n_local_segments: 1,
            ..Default::default()
        });
        c.create_table(schema(), None).unwrap();
        c.create_projection(ProjectionDef::super_projection(
            &schema(),
            "t_super",
            &[0],
            &[0],
        ))
        .unwrap();
        c
    }

    fn rows(lo: i64, hi: i64) -> Vec<Row> {
        (lo..hi)
            .map(|i| vec![Value::Integer(i), Value::Integer(i * 2)])
            .collect()
    }

    #[test]
    fn node_recovers_missed_loads() {
        let c = cluster();
        c.load("t", &rows(0, 100), true).unwrap();
        c.fail_node(1);
        // Loads continue while node 1 is down.
        c.load("t", &rows(100, 250), true).unwrap();
        let snapshot = c.epochs.read_committed_snapshot();
        assert_eq!(c.table_rows("t", snapshot).unwrap().len(), 250);
        // Recover and verify node 1 holds its share again.
        let stats = c.recover_node(1).unwrap();
        assert!(stats.historical_rows + stats.current_rows > 0);
        assert!(c.is_up(1));
        // All data present reading only primaries.
        let snapshot = c.epochs.read_committed_snapshot();
        assert_eq!(c.table_rows("t", snapshot).unwrap().len(), 250);
        // Node 1's replica-0 store holds exactly its ring share of all 250
        // rows; compare against node totals.
        let mut total = 0;
        for n in 0..3 {
            let store = c.node_engine(n).projection("t_super_b1").unwrap();
            total += store.read().visible_rows(snapshot).unwrap().len();
        }
        assert_eq!(total, 250);
    }

    #[test]
    fn recovery_replays_deletes() {
        let c = cluster();
        c.load("t", &rows(0, 50), true).unwrap();
        c.fail_node(2);
        let pred = vdb_types::Expr::binary(
            vdb_types::BinOp::Lt,
            vdb_types::Expr::col(0, "id"),
            vdb_types::Expr::int(10),
        );
        c.delete("t", Some(&pred)).unwrap();
        c.recover_node(2).unwrap();
        let snapshot = c.epochs.read_committed_snapshot();
        assert_eq!(c.table_rows("t", snapshot).unwrap().len(), 40);
    }

    #[test]
    fn cannot_recover_up_node_or_without_quorum() {
        let c = cluster();
        assert!(c.recover_node(0).is_err(), "node 0 is up");
        c.fail_node(0);
        c.fail_node(1);
        assert!(c.recover_node(0).is_err(), "no quorum");
    }

    #[test]
    fn refresh_populates_new_projection() {
        let c = cluster();
        c.load("t", &rows(0, 120), true).unwrap();
        // New narrow projection created after load.
        let def = ProjectionDef {
            name: "t_by_v".into(),
            anchor_table: "t".into(),
            columns: vec![1, 0],
            column_names: vec!["v".into(), "id".into()],
            column_types: vec![DataType::Integer, DataType::Integer],
            sort_keys: vec![vdb_types::SortKey::asc(0)],
            encodings: vec![vdb_encoding::EncodingType::Auto; 2],
            segmentation: vdb_storage::projection::Segmentation::hash_of(&[(1, "id")]),
            prejoin: vec![],
        };
        c.create_projection(def).unwrap();
        let copied = c.refresh_projection("t_by_v").unwrap();
        assert_eq!(copied, 120);
        let snapshot = c.epochs.read_committed_snapshot();
        let mut total = 0;
        for n in 0..3 {
            let store = c.node_engine(n).projection("t_by_v_b1").unwrap();
            total += store.read().visible_rows(snapshot).unwrap().len();
        }
        assert_eq!(total, 120);
    }

    #[test]
    fn ahm_freezes_while_node_down() {
        let c = Cluster::new(ClusterConfig {
            n_nodes: 3,
            k_safety: 1,
            history_retention: 1,
            ..Default::default()
        });
        c.create_table(schema(), None).unwrap();
        c.create_projection(ProjectionDef::super_projection(
            &schema(),
            "t_super",
            &[0],
            &[0],
        ))
        .unwrap();
        c.load("t", &rows(0, 10), true).unwrap();
        let ahm_before = c.epochs.ahm();
        c.fail_node(1);
        c.load("t", &rows(10, 20), true).unwrap();
        c.load("t", &rows(20, 30), true).unwrap();
        assert_eq!(c.epochs.ahm(), ahm_before, "AHM frozen while node down");
        c.recover_node(1).unwrap();
        c.load("t", &rows(30, 40), true).unwrap();
        assert!(c.epochs.ahm() > ahm_before, "AHM resumes after recovery");
    }
}
