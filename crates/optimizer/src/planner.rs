//! The V2Opt-style planner (§6.2).
//!
//! Planning walks the paper's physical-property checklist: which
//! projections cover the query (including prejoin availability, §3.3),
//! which sort orders enable pipelined aggregation and partition/block
//! pruning, which segmentations allow fully local joins, and where SIP
//! filters can be pushed. Join ordering is StarOpt: the fact table (the
//! largest input) joins its most selective dimensions first.
//!
//! Node failures replan by passing the live projection set: the planner
//! simply re-costs against whatever projections remain (buddies included).

use crate::catalog::{OptimizerCatalog, ProjectionMeta, TableMeta};
use crate::plan_out::{MergeSpec, PlannedQuery, TableAccess};
use crate::query::BoundQuery;
use crate::stats::predicate_selectivity;
use std::collections::{BTreeSet, HashMap, HashSet};
use vdb_exec::aggregate::AggCall;
use vdb_exec::groupby::two_phase_aggs;
use vdb_exec::parallel::{ExecOptions, ParallelStage};
use vdb_exec::plan::{JoinType, PhysicalPlan};
use vdb_storage::projection::Segmentation;
use vdb_types::schema::SortKey;
use vdb_types::{DbError, DbResult, Expr, Func, Value};

/// Plan a bound query. `live_projections`: projections currently available
/// (None = all); node-down replans pass the surviving set (§6.2). `exec`
/// bounds the degree of parallelism the plan may use per scan — the
/// planner picks the actual DoP per projection from its container-level
/// morsel count ([`ProjectionMeta::scan_morsels`]), and
/// [`ExecOptions::serial`] keeps every plan single-threaded.
pub fn plan(
    catalog: &OptimizerCatalog,
    query: &BoundQuery,
    live_projections: Option<&HashSet<String>>,
    exec: &ExecOptions,
) -> DbResult<PlannedQuery> {
    let mut query = query.clone();
    crate::rewrite::rewrite(&mut query);
    Planner {
        catalog,
        query,
        live: live_projections,
        exec: *exec,
    }
    .run()
}

/// Compression-aware scan cost of answering a table access with `p`, or
/// `None` if `p` does not cover the `needed` table columns. This is the
/// exact metric [`plan`] minimizes when it chooses a projection per table
/// (selectivity from column stats, sort-prefix prune credit, per-column
/// encoded byte counts), exposed so the Database Designer can score
/// hypothetical projections with the model the planner will actually
/// apply once they exist — there is no separate designer cost model to
/// drift out of sync.
pub fn projection_scan_cost(
    p: &ProjectionMeta,
    needed: &BTreeSet<usize>,
    filter: Option<&Expr>,
) -> Option<f64> {
    let covers = needed
        .iter()
        .all(|&c| p.def.projection_column_of(c).is_some());
    if !covers {
        return None;
    }
    let proj_cols: Vec<usize> = needed
        .iter()
        .map(|&c| p.def.projection_column_of(c).unwrap())
        .collect();
    // Compression-aware scan cost with sort-prefix prune credit.
    let (selectivity, prunable) = match filter {
        None => (1.0, false),
        Some(f) => {
            let remapped = f.remap_columns(&|c| p.def.projection_column_of(c));
            match remapped {
                None => (1.0, false),
                Some(rf) => {
                    let sel = predicate_selectivity(&rf, &p.stats);
                    let bounded: Vec<usize> = vdb_exec::scan::extract_bounds(&rf)
                        .iter()
                        .map(|b| b.column)
                        .collect();
                    let prefix = p.def.sort_prefix();
                    let prunable =
                        !bounded.is_empty() && bounded.iter().all(|c| prefix.first() == Some(c));
                    (sel, prunable)
                }
            }
        }
    };
    let prune_fraction = if prunable { selectivity.max(0.01) } else { 1.0 };
    Some(crate::cost::scan_cost(p, &proj_cols, prune_fraction, selectivity).total())
}

/// Estimated scan cost of `query` under `catalog`: for each FROM table,
/// the cheapest covering projection's [`projection_scan_cost`]. Join and
/// merge costs are deliberately excluded — projection choice only changes
/// the scans, so comparing this figure before and after adding a
/// candidate projection measures exactly the benefit the planner would
/// realize. Returns an error if some table has no covering projection.
pub fn query_scan_cost(catalog: &OptimizerCatalog, query: &BoundQuery) -> DbResult<f64> {
    let mut query = query.clone();
    crate::rewrite::rewrite(&mut query);
    let planner = Planner {
        catalog,
        query,
        live: None,
        exec: ExecOptions::serial(),
    };
    let metas: Vec<&TableMeta> = planner
        .query
        .tables
        .iter()
        .map(|t| {
            planner
                .catalog
                .table(&t.table)
                .ok_or_else(|| DbError::NotFound(format!("table {}", t.table)))
        })
        .collect::<DbResult<_>>()?;
    let offsets = planner.offsets(&metas);
    let needed = planner.needed_columns(&metas, &offsets)?;
    let mut total = 0.0;
    for (t, meta) in metas.iter().enumerate() {
        let filter = planner.query.table_filters[t].clone();
        let p = planner.choose_projection(meta, &needed[t], filter.as_ref())?;
        total += projection_scan_cost(p, &needed[t], filter.as_ref())
            .expect("chosen projection covers the query");
    }
    Ok(total)
}

struct Planner<'a> {
    catalog: &'a OptimizerCatalog,
    query: BoundQuery,
    live: Option<&'a HashSet<String>>,
    exec: ExecOptions,
}

/// Per-table scan decision.
struct TableScan {
    projection: String,
    plan: PhysicalPlan,
    /// table column → scan output position.
    map: HashMap<usize, usize>,
    est_rows: f64,
    /// Sort-prefix columns as table columns present in the output.
    sorted_prefix: Vec<usize>,
    replicated: bool,
    /// Table columns the segmentation hashes over (None = not hash-style).
    seg_columns: Option<Vec<usize>>,
    arity: usize,
}

impl<'a> Planner<'a> {
    fn run(mut self) -> DbResult<PlannedQuery> {
        if self.query.tables.is_empty() {
            return Err(DbError::Plan("query has no tables".into()));
        }
        let metas: Vec<&TableMeta> = self
            .query
            .tables
            .iter()
            .map(|t| {
                self.catalog
                    .table(&t.table)
                    .ok_or_else(|| DbError::NotFound(format!("table {}", t.table)))
            })
            .collect::<DbResult<_>>()?;
        let offsets = self.offsets(&metas);
        let needed = self.needed_columns(&metas, &offsets)?;

        // Prejoin projection special case (§3.3): one inner join fully
        // covered by a prejoin projection of the fact.
        if let Some(planned) = self.try_prejoin(&metas, &offsets, &needed)? {
            return Ok(planned);
        }

        // Choose a projection + build a scan per table.
        let mut scans = Vec::with_capacity(metas.len());
        for (t, meta) in metas.iter().enumerate() {
            scans.push(self.build_scan(t, meta, &needed[t])?);
        }

        // Join order + tree.
        let (plan, layout, table_order) = self.join_tree(&scans)?;
        let global_pos = |g: usize| -> Option<usize> {
            let (t, c) = locate(g, &offsets);
            layout.iter().position(|&(lt, lc)| lt == t && lc == c)
        };

        // Residual cross-table filters.
        let mut plan = plan;
        for f in &self.query.residual_filters {
            let remapped = f
                .remap_columns(&|g| global_pos(g))
                .ok_or_else(|| DbError::Plan("residual filter references pruned column".into()))?;
            plan = PhysicalPlan::Filter {
                input: Box::new(plan),
                predicate: remapped,
            };
        }

        // Access modes for the cluster layer.
        let table_access = self.access_modes(&scans, &table_order);
        let single_node = scans.iter().all(|s| s.replicated);
        let output_names = self.query.output_names();

        // Aggregation / windows / plain select.
        let (local, merge) = if self.query.is_aggregate() || self.query.distinct {
            self.plan_aggregate(plan, &scans, &layout, &offsets, &global_pos)?
        } else if !self.query.windows.is_empty() {
            self.plan_windows(plan, &global_pos)?
        } else {
            self.plan_plain(plan, &global_pos)?
        };
        let local = self.parallelize(local);

        Ok(PlannedQuery {
            local,
            merge,
            output_names,
            table_access,
            single_node,
        })
    }

    /// Degree of parallelism for one projection's scan: bounded by
    /// [`ExecOptions::threads`] and by the projection's container-level
    /// morsel count — workers beyond the number of independently stored
    /// containers would idle.
    fn scan_dop(&self, projection: &str) -> usize {
        self.exec
            .threads
            .min(self.catalog.scan_morsels(projection))
            .max(1)
    }

    /// Rewrite serial scan shapes into morsel-parallel ones where the DoP
    /// is > 1. Conservative by design: only single-table shapes whose
    /// barrier semantics exactly reproduce the serial result are touched —
    /// a hash GroupBy directly over a scan becomes per-worker partial
    /// aggregation + merge barrier, and a bare scan (under
    /// Project/Filter) becomes a parallel collect whose morsel-ordered
    /// concat equals the serial scan row for row. Sort barriers (and the
    /// top-k `Limit{Sort{..}}` shape) recurse — they re-order their whole
    /// input, so morsel order underneath is invisible. Pipelined
    /// (sort-order) aggregation, joins and bare LIMIT-bounded scans stay
    /// serial; `threads=1` leaves every plan untouched.
    fn parallelize(&self, plan: PhysicalPlan) -> PhysicalPlan {
        if self.exec.threads <= 1 {
            return plan;
        }
        match plan {
            PhysicalPlan::HashGroupBy {
                input,
                group_columns,
                aggs,
            } => match *input {
                // Decomposable aggregates only: non-decomposable ones
                // (COUNT DISTINCT) would fall back to buffering the whole
                // filtered scan at the runtime barrier, so they keep the
                // serial streaming group-by.
                PhysicalPlan::Scan {
                    projection,
                    output_columns,
                    predicate,
                    partition_predicate,
                    sip,
                } if self.scan_dop(&projection) > 1
                    && two_phase_aggs(group_columns.len(), &aggs).is_some() =>
                {
                    let threads = self.scan_dop(&projection);
                    PhysicalPlan::ParallelScan {
                        projection,
                        output_columns,
                        predicate,
                        partition_predicate,
                        sip,
                        stage: ParallelStage::GroupBy {
                            group_columns,
                            aggs,
                        },
                        threads,
                    }
                }
                other => PhysicalPlan::HashGroupBy {
                    input: Box::new(self.parallelize(other)),
                    group_columns,
                    aggs,
                },
            },
            PhysicalPlan::Scan {
                projection,
                output_columns,
                predicate,
                partition_predicate,
                sip,
            } if self.scan_dop(&projection) > 1 => {
                let threads = self.scan_dop(&projection);
                PhysicalPlan::ParallelScan {
                    projection,
                    output_columns,
                    predicate,
                    partition_predicate,
                    sip,
                    stage: ParallelStage::Collect,
                    threads,
                }
            }
            PhysicalPlan::Project { input, exprs } => PhysicalPlan::Project {
                input: Box::new(self.parallelize(*input)),
                exprs,
            },
            PhysicalPlan::Filter { input, predicate } => PhysicalPlan::Filter {
                input: Box::new(self.parallelize(*input)),
                predicate,
            },
            plan @ PhysicalPlan::HashJoin { .. } => self.parallelize_join(plan),
            // A Sort is a full barrier that reorders its entire input, so
            // the morsel-concat order of a parallel collect underneath
            // cannot leak into the result; recursing keeps ORDER BY
            // queries (including the pushed-down per-node top-k) on
            // parallel scans.
            PhysicalPlan::Sort { input, keys } => PhysicalPlan::Sort {
                input: Box::new(self.parallelize(*input)),
                keys,
            },
            // A LIMIT bounds how much of its input is *consumed*; over a
            // Sort barrier the input is fully materialized anyway, so the
            // top-k shape Limit{Sort{..}} may parallelize underneath. Any
            // other LIMIT stays serial — a parallel scan under it would
            // over-scan.
            PhysicalPlan::Limit {
                input,
                limit,
                offset,
            } if matches!(*input, PhysicalPlan::Sort { .. }) => PhysicalPlan::Limit {
                input: Box::new(self.parallelize(*input)),
                limit,
                offset,
            },
            // Everything else (pipelined group-by, bare limits) stays
            // serial.
            other => other,
        }
    }

    /// Rewrite `HashJoin{Scan, Scan}` shapes into morsel-parallel
    /// partitioned hash joins. The probe-side DoP comes from the probe
    /// projection's container morsel count (like `ParallelScan`), the
    /// build-side DoP from the build projection's; a probe DoP of 1 keeps
    /// the serial operator. Left-deep join trees recurse down the probe
    /// spine, so the innermost (fact ⋈ first dimension) join — the hot
    /// one — parallelizes while outer joins keep the serial pull pipeline.
    /// RIGHT/FULL OUTER need build-side matched flags and stay serial.
    fn parallelize_join(&self, plan: PhysicalPlan) -> PhysicalPlan {
        match plan {
            PhysicalPlan::HashJoin {
                left,
                right,
                left_keys,
                right_keys,
                join_type,
                sip,
            } => {
                let left = Box::new(self.parallelize_join(*left));
                self.try_parallel_join(left, right, left_keys, right_keys, join_type, sip)
            }
            other => other,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_parallel_join(
        &self,
        left: Box<PhysicalPlan>,
        right: Box<PhysicalPlan>,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
        sip: Option<usize>,
    ) -> PhysicalPlan {
        let probe_dop = match left.as_ref() {
            PhysicalPlan::Scan { projection, .. } => self.scan_dop(projection),
            _ => 1,
        };
        let flavor_ok = matches!(
            join_type,
            JoinType::Inner | JoinType::LeftOuter | JoinType::Semi | JoinType::Anti
        );
        if flavor_ok && probe_dop > 1 {
            if let PhysicalPlan::Scan {
                projection: build_projection,
                ..
            } = right.as_ref()
            {
                return PhysicalPlan::ParallelHashJoin {
                    build_threads: self.scan_dop(build_projection),
                    probe_threads: probe_dop,
                    left,
                    right,
                    left_keys,
                    right_keys,
                    join_type,
                    sip,
                };
            }
        }
        PhysicalPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            sip,
        }
    }

    fn offsets(&self, metas: &[&TableMeta]) -> Vec<usize> {
        let mut offsets = Vec::with_capacity(metas.len());
        let mut acc = 0;
        for m in metas {
            offsets.push(acc);
            acc += m.schema.arity();
        }
        offsets
    }

    /// Columns each table must produce.
    fn needed_columns(
        &self,
        metas: &[&TableMeta],
        offsets: &[usize],
    ) -> DbResult<Vec<BTreeSet<usize>>> {
        let mut needed: Vec<BTreeSet<usize>> = metas.iter().map(|_| BTreeSet::new()).collect();
        for (t, f) in self.query.table_filters.iter().enumerate() {
            if let Some(f) = f {
                needed[t].extend(f.referenced_columns());
            }
        }
        for e in &self.query.joins {
            needed[e.left_table].extend(e.left_columns.iter().copied());
            needed[e.right_table].extend(e.right_columns.iter().copied());
        }
        let mut globals: Vec<usize> = Vec::new();
        for (e, _) in &self.query.select {
            globals.extend(e.referenced_columns());
        }
        for e in &self.query.group_by {
            globals.extend(e.referenced_columns());
        }
        for a in &self.query.aggregates {
            if let Some(e) = &a.input {
                globals.extend(e.referenced_columns());
            }
        }
        for w in &self.query.windows {
            globals.extend(w.partition_by.iter().copied());
            globals.extend(w.order_by.iter().map(|(c, _)| *c));
            match &w.func {
                vdb_exec::analytic::WindowFunc::Lag(c)
                | vdb_exec::analytic::WindowFunc::Lead(c)
                | vdb_exec::analytic::WindowFunc::Agg(_, c) => globals.push(*c),
                _ => {}
            }
        }
        for f in &self.query.residual_filters {
            globals.extend(f.referenced_columns());
        }
        for g in globals {
            let (t, c) = locate(g, offsets);
            if t >= needed.len() || c >= metas[t].schema.arity() {
                return Err(DbError::Plan(format!("column reference {g} out of range")));
            }
            needed[t].insert(c);
        }
        // A scan must output at least one column.
        for n in needed.iter_mut() {
            if n.is_empty() {
                n.insert(0);
            }
        }
        Ok(needed)
    }

    fn is_live(&self, name: &str) -> bool {
        self.live.is_none_or(|set| set.contains(name))
    }

    /// Choose the cheapest live projection covering `needed`.
    fn choose_projection<'m>(
        &self,
        meta: &'m TableMeta,
        needed: &BTreeSet<usize>,
        filter: Option<&Expr>,
    ) -> DbResult<&'m ProjectionMeta> {
        let mut best: Option<(&ProjectionMeta, f64)> = None;
        for p in &meta.projections {
            if !self.is_live(&p.def.name) || !p.def.prejoin.is_empty() {
                continue;
            }
            let Some(cost) = projection_scan_cost(p, needed, filter) else {
                continue;
            };
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((p, cost));
            }
        }
        best.map(|(p, _)| p).ok_or_else(|| {
            DbError::Plan(format!(
                "no live projection of {} covers the query (node down without buddy?)",
                meta.schema.name
            ))
        })
    }

    fn build_scan(
        &self,
        t: usize,
        meta: &TableMeta,
        needed: &BTreeSet<usize>,
    ) -> DbResult<TableScan> {
        let filter = self.query.table_filters[t].clone();
        let pmeta = self.choose_projection(meta, needed, filter.as_ref())?;
        let def = &pmeta.def;
        // Output the needed columns in ascending projection-column order.
        let mut proj_cols: Vec<(usize, usize)> = needed
            .iter()
            .map(|&c| (def.projection_column_of(c).unwrap(), c))
            .collect();
        proj_cols.sort_unstable();
        let output_columns: Vec<usize> = proj_cols.iter().map(|&(p, _)| p).collect();
        let map: HashMap<usize, usize> = proj_cols
            .iter()
            .enumerate()
            .map(|(pos, &(_, c))| (c, pos))
            .collect();
        // Predicate over scan output positions.
        let predicate = match &filter {
            None => None,
            Some(f) => Some(f.remap_columns(&|c| map.get(&c).copied()).ok_or_else(|| {
                DbError::Plan("filter references column missing from scan".into())
            })?),
        };
        let partition_predicate =
            derive_partition_predicate(meta.partition_by.as_ref(), filter.as_ref());
        let est_rows = {
            let sel = match &filter {
                None => 1.0,
                Some(f) => f
                    .remap_columns(&|c| def.projection_column_of(c))
                    .map(|rf| predicate_selectivity(&rf, &pmeta.stats))
                    .unwrap_or(0.5),
            };
            pmeta.row_count as f64 * sel
        };
        // Sort prefix as table columns, but only those present in the
        // output (useful for pipelined group-by detection).
        let mut sorted_prefix = Vec::new();
        for k in &def.sort_keys {
            let table_col = def.columns.get(k.column).copied();
            match table_col {
                Some(c) if map.contains_key(&c) => sorted_prefix.push(c),
                _ => break,
            }
        }
        let (replicated, seg_columns) = match &def.segmentation {
            Segmentation::Replicated => (true, None),
            Segmentation::ByExpr(e) => (false, hash_columns_of(e, def)),
        };
        Ok(TableScan {
            projection: def.name.clone(),
            plan: PhysicalPlan::Scan {
                projection: def.name.clone(),
                output_columns,
                predicate,
                partition_predicate,
                sip: vec![],
            },
            map,
            est_rows,
            sorted_prefix,
            replicated,
            seg_columns,
            arity: proj_cols.len(),
        })
    }

    /// StarOpt join ordering + left-deep tree with SIP pushed to the fact
    /// scan. Returns (plan, layout, table order).
    #[allow(clippy::type_complexity)]
    fn join_tree(
        &mut self,
        scans: &[TableScan],
    ) -> DbResult<(PhysicalPlan, Vec<(usize, usize)>, Vec<usize>)> {
        let n = scans.len();
        if n == 1 {
            let layout: Vec<(usize, usize)> = ordered_layout(0, &scans[0]);
            return Ok((scans[0].plan.clone(), layout, vec![0]));
        }
        let all_inner = self
            .query
            .joins
            .iter()
            .all(|e| e.join_type == JoinType::Inner);
        // Order: fact (largest estimate) first, then ascending estimates
        // (most selective dimension first). Non-inner queries keep FROM
        // order for orientation safety.
        let order: Vec<usize> = if all_inner {
            let fact = (0..n)
                .max_by(|&a, &b| scans[a].est_rows.total_cmp(&scans[b].est_rows))
                .unwrap();
            let mut dims: Vec<usize> = (0..n).filter(|&t| t != fact).collect();
            dims.sort_by(|&a, &b| scans[a].est_rows.total_cmp(&scans[b].est_rows));
            std::iter::once(fact).chain(dims).collect()
        } else {
            (0..n).collect()
        };
        let fact = order[0];
        let mut joined: HashSet<usize> = HashSet::from([fact]);
        let mut layout = ordered_layout(fact, &scans[fact]);
        let fact_arity = scans[fact].arity;
        let mut plan = scans[fact].plan.clone();
        let mut edges: Vec<crate::query::JoinEdge> = self.query.joins.clone();
        let mut next_sip: usize = 0;
        let mut fact_sips: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut remaining: Vec<usize> = order[1..].to_vec();
        while !remaining.is_empty() {
            // Pick the first remaining table connected to the joined set.
            let pick = remaining
                .iter()
                .position(|&t| {
                    edges.iter().any(|e| {
                        (e.left_table == t && joined.contains(&e.right_table))
                            || (e.right_table == t && joined.contains(&e.left_table))
                    })
                })
                .ok_or_else(|| {
                    DbError::Plan("cross joins without join predicates are not supported".into())
                })?;
            let t = remaining.remove(pick);
            let eidx = edges
                .iter()
                .position(|e| {
                    (e.left_table == t && joined.contains(&e.right_table))
                        || (e.right_table == t && joined.contains(&e.left_table))
                })
                .unwrap();
            let edge = edges.remove(eidx);
            // Orient: probe = joined side, build = t.
            let (probe_cols, build_cols, join_type) = if joined.contains(&edge.left_table) {
                (
                    edge.left_columns.clone(),
                    edge.right_columns.clone(),
                    edge.join_type,
                )
            } else {
                let flipped = match edge.join_type {
                    JoinType::LeftOuter => JoinType::RightOuter,
                    JoinType::RightOuter => JoinType::LeftOuter,
                    JoinType::Semi | JoinType::Anti => {
                        return Err(DbError::Plan(
                            "SEMI/ANTI join must have its outer side first".into(),
                        ))
                    }
                    other => other,
                };
                (
                    edge.right_columns.clone(),
                    edge.left_columns.clone(),
                    flipped,
                )
            };
            let probe_table = if joined.contains(&edge.left_table) {
                edge.left_table
            } else {
                edge.right_table
            };
            let left_keys: Vec<usize> = probe_cols
                .iter()
                .map(|&c| {
                    layout
                        .iter()
                        .position(|&(lt, lc)| lt == probe_table && lc == c)
                        .ok_or_else(|| DbError::Plan("join key missing from layout".into()))
                })
                .collect::<DbResult<_>>()?;
            let right_keys: Vec<usize> = build_cols.iter().map(|&c| scans[t].map[&c]).collect();
            // SIP: push to the fact scan when the probe keys live in the
            // fact prefix of the layout and the join type allows it.
            let sip_id = if matches!(join_type, JoinType::Inner | JoinType::Semi)
                && left_keys.iter().all(|&k| k < fact_arity)
            {
                let id = next_sip;
                next_sip += 1;
                fact_sips.push((id, left_keys.clone()));
                Some(id)
            } else {
                None
            };
            plan = PhysicalPlan::HashJoin {
                left: Box::new(plan),
                right: Box::new(scans[t].plan.clone()),
                left_keys,
                right_keys,
                join_type,
                sip: sip_id,
            };
            if join_type.emits_right_columns() {
                layout.extend(ordered_layout(t, &scans[t]));
            }
            joined.insert(t);
        }
        if !edges.is_empty() {
            // Extra edges between already-joined tables become filters.
            for e in edges {
                let l: Vec<usize> = e
                    .left_columns
                    .iter()
                    .map(|&c| {
                        layout
                            .iter()
                            .position(|&(lt, lc)| lt == e.left_table && lc == c)
                            .ok_or_else(|| DbError::Plan("edge column pruned".into()))
                    })
                    .collect::<DbResult<_>>()?;
                let r: Vec<usize> = e
                    .right_columns
                    .iter()
                    .map(|&c| {
                        layout
                            .iter()
                            .position(|&(lt, lc)| lt == e.right_table && lc == c)
                            .ok_or_else(|| DbError::Plan("edge column pruned".into()))
                    })
                    .collect::<DbResult<_>>()?;
                let preds: Vec<Expr> = l
                    .iter()
                    .zip(&r)
                    .map(|(&a, &b)| Expr::eq(Expr::col(a, "l"), Expr::col(b, "r")))
                    .collect();
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: Expr::conjunction(preds).unwrap(),
                };
            }
        }
        // Install accumulated SIP bindings on the fact scan.
        if !fact_sips.is_empty() {
            install_sips(&mut plan, &scans[fact].projection, &fact_sips);
        }
        let mut order_out = vec![fact];
        order_out.extend(order[1..].iter().copied());
        Ok((plan, layout, order_out))
    }

    fn access_modes(&self, scans: &[TableScan], order: &[usize]) -> Vec<(String, TableAccess)> {
        let fact = order[0];
        (0..scans.len())
            .map(|t| {
                let access = if t == fact || scans[t].replicated {
                    TableAccess::Local
                } else {
                    // Co-located if both ends of the edge hash-segment on
                    // exactly the join key columns. Failing that, an inner
                    // edge whose other side IS segmented on its join keys
                    // can re-segment this table through the exchange
                    // instead of broadcasting it everywhere.
                    let mut co_located = false;
                    let mut resegment: Option<Vec<usize>> = None;
                    for e in &self.query.joins {
                        let (dim, dim_cols, other, other_cols) = if e.left_table == t {
                            (t, &e.left_columns, e.right_table, &e.right_columns)
                        } else if e.right_table == t {
                            (t, &e.right_columns, e.left_table, &e.left_columns)
                        } else {
                            continue;
                        };
                        let dim_seg = scans[dim].seg_columns.as_deref();
                        let other_seg = scans[other].seg_columns.as_deref();
                        if matches_cols(dim_seg, dim_cols)
                            && (scans[other].replicated || matches_cols(other_seg, other_cols))
                        {
                            co_located = true;
                            break;
                        }
                        if e.join_type == JoinType::Inner
                            && !scans[other].replicated
                            && matches_cols(other_seg, other_cols)
                            && resegment.is_none()
                        {
                            resegment = Some(dim_cols.clone());
                        }
                    }
                    if co_located {
                        TableAccess::Local
                    } else if let Some(keys) = resegment {
                        TableAccess::Resegment { keys }
                    } else {
                        TableAccess::Broadcast
                    }
                };
                (scans[t].projection.clone(), access)
            })
            .collect()
    }

    /// Aggregate (or DISTINCT) query: local partial aggregation + merge
    /// re-aggregation.
    fn plan_aggregate(
        &self,
        input: PhysicalPlan,
        scans: &[TableScan],
        layout: &[(usize, usize)],
        offsets: &[usize],
        global_pos: &dyn Fn(usize) -> Option<usize>,
    ) -> DbResult<(PhysicalPlan, MergeSpec)> {
        let remap = |e: &Expr| -> DbResult<Expr> {
            e.remap_columns(&|g| global_pos(g))
                .ok_or_else(|| DbError::Plan("expression references pruned column".into()))
        };
        // DISTINCT without GROUP BY: group by the select list.
        let (group_exprs, aggs): (Vec<Expr>, Vec<crate::query::AggItem>) =
            if self.query.is_aggregate() {
                (self.query.group_by.clone(), self.query.aggregates.clone())
            } else {
                (
                    self.query.select.iter().map(|(e, _)| e.clone()).collect(),
                    vec![],
                )
            };
        let g = group_exprs.len();
        // Simple-column groups over a single sorted table use the
        // pipelined, encoded-aware one-pass aggregate.
        let simple_group_cols: Option<Vec<usize>> = group_exprs
            .iter()
            .map(|e| match e {
                Expr::Column { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        let simple_agg_inputs: Option<Vec<Option<usize>>> = aggs
            .iter()
            .map(|a| match &a.input {
                None => Some(None),
                Some(Expr::Column { index, .. }) => Some(Some(*index)),
                _ => None,
            })
            .collect();
        let use_pipelined = match (&simple_group_cols, &simple_agg_inputs) {
            (Some(gcols), Some(_)) if self.query.tables.len() == 1 && !gcols.is_empty() => {
                let table_cols: Vec<usize> =
                    gcols.iter().map(|&gc| locate(gc, offsets).1).collect();
                let prefix = &scans[0].sorted_prefix;
                table_cols.len() <= prefix.len() && {
                    let mut a = table_cols.clone();
                    let mut b = prefix[..table_cols.len()].to_vec();
                    a.sort_unstable();
                    b.sort_unstable();
                    a == b
                }
            }
            _ => false,
        };

        // Build the groupby input: either the raw join output (simple
        // columns, remapped) or an ExprEval projecting group + agg inputs.
        let (gb_input, group_columns, agg_calls): (PhysicalPlan, Vec<usize>, Vec<AggCall>) =
            if let (Some(gcols), Some(ainputs)) = (&simple_group_cols, &simple_agg_inputs) {
                let group_columns: Vec<usize> = gcols
                    .iter()
                    .map(|&gc| {
                        global_pos(gc).ok_or_else(|| DbError::Plan("group column pruned".into()))
                    })
                    .collect::<DbResult<_>>()?;
                let agg_calls: Vec<AggCall> = aggs
                    .iter()
                    .zip(ainputs)
                    .map(|(a, input)| {
                        let col = match input {
                            None => 0,
                            Some(gc) => global_pos(*gc)
                                .ok_or_else(|| DbError::Plan("agg column pruned".into()))?,
                        };
                        Ok(AggCall::new(a.func, col, a.output_name.clone()))
                    })
                    .collect::<DbResult<_>>()?;
                (input, group_columns, agg_calls)
            } else {
                // Project: group exprs then agg input exprs.
                let mut exprs: Vec<Expr> =
                    group_exprs.iter().map(&remap).collect::<DbResult<_>>()?;
                for a in &aggs {
                    exprs.push(match &a.input {
                        None => Expr::lit(Value::Integer(1)),
                        Some(e) => remap(e)?,
                    });
                }
                let agg_calls: Vec<AggCall> = aggs
                    .iter()
                    .enumerate()
                    .map(|(i, a)| AggCall::new(a.func, g + i, a.output_name.clone()))
                    .collect();
                (
                    PhysicalPlan::Project {
                        input: Box::new(input),
                        exprs,
                    },
                    (0..g).collect(),
                    agg_calls,
                )
            };

        let order_by = self.order_keys();
        let limit = self.limit();
        match two_phase_aggs(g, &agg_calls) {
            Some((partial, final_aggs, project)) => {
                let local = if use_pipelined {
                    PhysicalPlan::PipelinedGroupBy {
                        input: Box::new(gb_input),
                        group_columns,
                        aggs: partial,
                    }
                } else {
                    PhysicalPlan::HashGroupBy {
                        input: Box::new(gb_input),
                        group_columns,
                        aggs: partial,
                    }
                };
                Ok((
                    local,
                    MergeSpec::ReAggregate {
                        group_columns: (0..g).collect(),
                        merge_aggs: final_aggs,
                        project,
                        having: self.query.having.clone(),
                        order_by,
                        limit,
                    },
                ))
            }
            None => {
                // Non-decomposable (COUNT DISTINCT): ship raw grouped rows
                // and aggregate once at the initiator. The local side still
                // projects down to group + agg input columns.
                let local = match &gb_input {
                    p @ PhysicalPlan::Project { .. } => p.clone(),
                    other => PhysicalPlan::Project {
                        input: Box::new(other.clone()),
                        exprs: group_columns
                            .iter()
                            .map(|&c| Expr::col(c, format!("g{c}")))
                            .chain(
                                agg_calls
                                    .iter()
                                    .map(|a| Expr::col(a.input, a.output_name.clone())),
                            )
                            .collect(),
                    },
                };
                let merge_aggs: Vec<AggCall> = agg_calls
                    .iter()
                    .enumerate()
                    .map(|(i, a)| AggCall::new(a.func, g + i, a.output_name.clone()))
                    .collect();
                let project: Vec<Expr> = (0..g + merge_aggs.len())
                    .map(|i| Expr::col(i, format!("c{i}")))
                    .collect();
                let _ = layout;
                Ok((
                    local,
                    MergeSpec::ReAggregate {
                        group_columns: (0..g).collect(),
                        merge_aggs,
                        project,
                        having: self.query.having.clone(),
                        order_by,
                        limit,
                    },
                ))
            }
        }
    }

    /// Window query: local plan ships base columns; windows run globally.
    fn plan_windows(
        &self,
        input: PhysicalPlan,
        global_pos: &dyn Fn(usize) -> Option<usize>,
    ) -> DbResult<(PhysicalPlan, MergeSpec)> {
        // Compact needed globals: every global column used by select or
        // window specs, in ascending order.
        let mut needed: BTreeSet<usize> = BTreeSet::new();
        for (e, _) in &self.query.select {
            needed.extend(e.referenced_columns());
        }
        for w in &self.query.windows {
            needed.extend(w.partition_by.iter().copied());
            needed.extend(w.order_by.iter().map(|(c, _)| *c));
            match &w.func {
                vdb_exec::analytic::WindowFunc::Lag(c)
                | vdb_exec::analytic::WindowFunc::Lead(c)
                | vdb_exec::analytic::WindowFunc::Agg(_, c) => {
                    needed.insert(*c);
                }
                _ => {}
            }
        }
        let needed: Vec<usize> = needed.into_iter().collect();
        let compact: HashMap<usize, usize> =
            needed.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        let exprs: Vec<Expr> = needed
            .iter()
            .map(|&gc| {
                global_pos(gc)
                    .map(|p| Expr::col(p, format!("c{gc}")))
                    .ok_or_else(|| DbError::Plan("window column pruned".into()))
            })
            .collect::<DbResult<_>>()?;
        let local = PhysicalPlan::Project {
            input: Box::new(input),
            exprs,
        };
        // All window calls must share one spec in this implementation.
        let first = &self.query.windows[0];
        for w in &self.query.windows[1..] {
            if w.partition_by != first.partition_by || w.order_by != first.order_by {
                return Err(DbError::Plan(
                    "multiple distinct window specifications are not supported".into(),
                ));
            }
        }
        let partition_by: Vec<usize> = first.partition_by.iter().map(|c| compact[c]).collect();
        let order_by_window: Vec<SortKey> = first
            .order_by
            .iter()
            .map(|&(c, asc)| {
                if asc {
                    SortKey::asc(compact[&c])
                } else {
                    SortKey::desc(compact[&c])
                }
            })
            .collect();
        let funcs: Vec<vdb_exec::analytic::WindowFunc> = self
            .query
            .windows
            .iter()
            .map(|w| match &w.func {
                vdb_exec::analytic::WindowFunc::Lag(c) => {
                    vdb_exec::analytic::WindowFunc::Lag(compact[c])
                }
                vdb_exec::analytic::WindowFunc::Lead(c) => {
                    vdb_exec::analytic::WindowFunc::Lead(compact[c])
                }
                vdb_exec::analytic::WindowFunc::Agg(f, c) => {
                    vdb_exec::analytic::WindowFunc::Agg(*f, compact[c])
                }
                other => other.clone(),
            })
            .collect();
        // Final projection: select exprs (over compact layout) then window
        // outputs (appended after the compact columns).
        let base = needed.len();
        let mut project: Vec<Expr> = self
            .query
            .select
            .iter()
            .map(|(e, _)| {
                e.remap_columns(&|g| compact.get(&g).copied())
                    .ok_or_else(|| DbError::Plan("select column pruned".into()))
            })
            .collect::<DbResult<_>>()?;
        for (i, w) in self.query.windows.iter().enumerate() {
            project.push(Expr::col(base + i, w.output_name.clone()));
        }
        Ok((
            local,
            MergeSpec::WindowThenProject {
                partition_by,
                order_by_window,
                funcs,
                project,
                order_by: self.order_keys(),
                limit: self.limit(),
            },
        ))
    }

    /// Plain select: project locally, concat at the initiator.
    fn plan_plain(
        &self,
        input: PhysicalPlan,
        global_pos: &dyn Fn(usize) -> Option<usize>,
    ) -> DbResult<(PhysicalPlan, MergeSpec)> {
        let exprs: Vec<Expr> = self
            .query
            .select
            .iter()
            .map(|(e, _)| {
                e.remap_columns(&|g| global_pos(g))
                    .ok_or_else(|| DbError::Plan("select column pruned".into()))
            })
            .collect::<DbResult<_>>()?;
        let mut local = PhysicalPlan::Project {
            input: Box::new(input),
            exprs,
        };
        // Limit without order can be applied per node too.
        if self.query.order_by.is_empty() {
            if let Some(n) = self.query.limit {
                local = PhysicalPlan::Limit {
                    input: Box::new(local),
                    limit: n + self.query.offset,
                    offset: 0,
                };
            }
        } else if let Some(n) = self.query.limit {
            // ORDER BY + LIMIT: push a partial top-k to each node. Every
            // node sorts its own rows and ships only the first
            // limit+offset — rows past that bound can never appear in the
            // global answer, since the initiator re-sorts the union and
            // applies the real limit/offset itself (MergeSpec below).
            local = PhysicalPlan::Limit {
                input: Box::new(PhysicalPlan::Sort {
                    input: Box::new(local),
                    keys: self.order_keys(),
                }),
                limit: n + self.query.offset,
                offset: 0,
            };
        }
        Ok((
            local,
            MergeSpec::Concat {
                order_by: self.order_keys(),
                limit: self.limit(),
            },
        ))
    }

    fn order_keys(&self) -> Vec<SortKey> {
        self.query
            .order_by
            .iter()
            .map(|o| {
                if o.ascending {
                    SortKey::asc(o.output_column)
                } else {
                    SortKey::desc(o.output_column)
                }
            })
            .collect()
    }

    fn limit(&self) -> Option<(usize, usize)> {
        self.query.limit.map(|n| (n, self.query.offset))
    }

    /// §3.3 prejoin projection: single inner join fully covered.
    fn try_prejoin(
        &self,
        metas: &[&TableMeta],
        offsets: &[usize],
        needed: &[BTreeSet<usize>],
    ) -> DbResult<Option<PlannedQuery>> {
        if self.query.tables.len() != 2 || self.query.joins.len() != 1 {
            return Ok(None);
        }
        let edge = &self.query.joins[0];
        if edge.join_type != JoinType::Inner || edge.left_columns.len() != 1 {
            return Ok(None);
        }
        // Identify fact (anchor) and dim sides against each candidate.
        for (fact_t, dim_t) in [
            (edge.left_table, edge.right_table),
            (edge.right_table, edge.left_table),
        ] {
            let (fact_key, dim_key) = if fact_t == edge.left_table {
                (edge.left_columns[0], edge.right_columns[0])
            } else {
                (edge.right_columns[0], edge.left_columns[0])
            };
            let fact_meta = metas[fact_t];
            for p in &fact_meta.projections {
                if !self.is_live(&p.def.name) || p.def.prejoin.len() != 1 {
                    continue;
                }
                let pj = &p.def.prejoin[0];
                if pj.dim_table != self.query.tables[dim_t].table
                    || pj.fact_key != fact_key
                    || pj.dim_key != dim_key
                {
                    continue;
                }
                // Coverage: fact needed in anchor columns; dim needed in
                // pj.dim_columns.
                let fact_ok = needed[fact_t]
                    .iter()
                    .all(|&c| p.def.projection_column_of(c).is_some());
                let dim_ok = needed[dim_t].iter().all(|&c| pj.dim_columns.contains(&c));
                if !fact_ok || !dim_ok {
                    continue;
                }
                return Ok(Some(
                    self.plan_over_prejoin(p, fact_t, dim_t, offsets, needed)?,
                ));
            }
        }
        Ok(None)
    }

    fn plan_over_prejoin(
        &self,
        pmeta: &ProjectionMeta,
        fact_t: usize,
        dim_t: usize,
        offsets: &[usize],
        needed: &[BTreeSet<usize>],
    ) -> DbResult<PlannedQuery> {
        let def = &pmeta.def;
        let pj = &def.prejoin[0];
        // Map (table, col) → projection column.
        let to_proj = |t: usize, c: usize| -> Option<usize> {
            if t == fact_t {
                def.projection_column_of(c)
            } else {
                pj.dim_columns
                    .iter()
                    .position(|&dc| dc == c)
                    .map(|i| def.num_anchor_columns() + i)
            }
        };
        // Scan outputs: all needed columns in projection order.
        let mut proj_cols: Vec<(usize, usize, usize)> = Vec::new(); // (proj col, t, c)
        for (t, set) in [(fact_t, &needed[fact_t]), (dim_t, &needed[dim_t])] {
            for &c in set {
                let p = to_proj(t, c)
                    .ok_or_else(|| DbError::Plan("prejoin coverage check failed".into()))?;
                proj_cols.push((p, t, c));
            }
        }
        proj_cols.sort_unstable();
        proj_cols.dedup();
        let output_columns: Vec<usize> = proj_cols.iter().map(|&(p, _, _)| p).collect();
        let pos_of = |t: usize, c: usize| -> Option<usize> {
            proj_cols.iter().position(|&(_, pt, pc)| pt == t && pc == c)
        };
        // Combined predicate: both tables' filters.
        let mut preds = Vec::new();
        for (t, f) in self.query.table_filters.iter().enumerate() {
            if let Some(f) = f {
                preds.push(
                    f.remap_columns(&|c| pos_of(t, c))
                        .ok_or_else(|| DbError::Plan("prejoin filter remap failed".into()))?,
                );
            }
        }
        let scan = PhysicalPlan::Scan {
            projection: def.name.clone(),
            output_columns,
            predicate: Expr::conjunction(preds),
            partition_predicate: None,
            sip: vec![],
        };
        let global_pos = |g: usize| -> Option<usize> {
            let (t, c) = locate(g, offsets);
            pos_of(t, c)
        };
        let replicated = matches!(def.segmentation, Segmentation::Replicated);
        let (local, merge) = if self.query.is_aggregate() || self.query.distinct {
            // Reuse the aggregate path with a fake single-scan context.
            let scans = vec![TableScan {
                projection: def.name.clone(),
                plan: scan.clone(),
                map: HashMap::new(),
                est_rows: pmeta.row_count as f64,
                sorted_prefix: vec![],
                replicated,
                seg_columns: None,
                arity: proj_cols.len(),
            }];
            let layout: Vec<(usize, usize)> = proj_cols.iter().map(|&(_, t, c)| (t, c)).collect();
            self.plan_aggregate(scan, &scans, &layout, offsets, &global_pos)?
        } else if !self.query.windows.is_empty() {
            self.plan_windows(scan, &global_pos)?
        } else {
            self.plan_plain(scan, &global_pos)?
        };
        Ok(PlannedQuery {
            local: self.parallelize(local),
            merge,
            output_names: self.query.output_names(),
            table_access: vec![(def.name.clone(), TableAccess::Local)],
            single_node: replicated,
        })
    }
}

/// Attach SIP bindings to the Scan of `projection` in the left spine of
/// the plan (the fact scan of a left-deep join tree).
fn install_sips(plan: &mut PhysicalPlan, projection: &str, bindings: &[(usize, Vec<usize>)]) {
    match plan {
        PhysicalPlan::Scan {
            projection: p, sip, ..
        } if p == projection => {
            sip.extend(bindings.iter().cloned());
        }
        PhysicalPlan::HashJoin { left, .. } | PhysicalPlan::MergeJoin { left, .. } => {
            install_sips(left, projection, bindings)
        }
        PhysicalPlan::Filter { input, .. } | PhysicalPlan::Project { input, .. } => {
            install_sips(input, projection, bindings)
        }
        _ => {}
    }
}

/// Scan output layout of one table as (table, table_col) pairs, in scan
/// output order.
fn ordered_layout(t: usize, scan: &TableScan) -> Vec<(usize, usize)> {
    let mut pairs: Vec<(usize, usize)> = scan.map.iter().map(|(&c, &pos)| (pos, c)).collect();
    pairs.sort_unstable();
    pairs.into_iter().map(|(_, c)| (t, c)).collect()
}

/// (table index, local column) of a global column.
fn locate(g: usize, offsets: &[usize]) -> (usize, usize) {
    let t = offsets.partition_point(|&o| o <= g) - 1;
    (t, g - offsets[t])
}

/// If `e` is `HASH(col, col, ...)`, the table columns hashed (projection
/// columns mapped through the def).
fn hash_columns_of(e: &Expr, def: &vdb_storage::projection::ProjectionDef) -> Option<Vec<usize>> {
    match e {
        Expr::Call {
            func: Func::Hash,
            args,
        } => args
            .iter()
            .map(|a| match a {
                Expr::Column { index, .. } => def.columns.get(*index).copied(),
                _ => None,
            })
            .collect(),
        _ => None,
    }
}

fn matches_cols(seg: Option<&[usize]>, cols: &[usize]) -> bool {
    match seg {
        None => false,
        Some(seg) => {
            let mut a = seg.to_vec();
            let mut b = cols.to_vec();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        }
    }
}

/// Derive a partition-key predicate from a table filter when the partition
/// expression is a monotone date extraction (§3.5's month/year pattern).
/// The returned predicate is over the single-column row `[partition_key]`.
pub fn derive_partition_predicate(
    partition_by: Option<&Expr>,
    filter: Option<&Expr>,
) -> Option<Expr> {
    let partition_by = partition_by?;
    let filter = filter?;
    let (mono_fn, col): (fn(i64) -> i64, usize) = match partition_by {
        Expr::Call {
            func: Func::YearMonth,
            args,
        } => match args.as_slice() {
            [Expr::Column { index, .. }] => (vdb_types::date::year_month, *index),
            _ => return None,
        },
        Expr::Call {
            func: Func::ExtractYear,
            args,
        } => match args.as_slice() {
            [Expr::Column { index, .. }] => (vdb_types::date::year, *index),
            _ => return None,
        },
        Expr::Column { index, .. } => (|v| v, *index),
        _ => return None,
    };
    let bounds = vdb_exec::scan::extract_bounds(filter);
    let b = bounds.iter().find(|b| b.column == col)?;
    let mut preds = Vec::new();
    if let Some(lo) = &b.low {
        let v = lo.as_i64()?;
        preds.push(Expr::binary(
            vdb_types::BinOp::Ge,
            Expr::col(0, "pk"),
            Expr::int(mono_fn(v)),
        ));
    }
    if let Some(hi) = &b.high {
        let v = hi.as_i64()?;
        preds.push(Expr::binary(
            vdb_types::BinOp::Le,
            Expr::col(0, "pk"),
            Expr::int(mono_fn(v)),
        ));
    }
    Expr::conjunction(preds)
}

/// Re-export for external callers (Database Designer scores candidate
/// projections with the same function the planner uses).
pub use crate::cost::scan_cost;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ProjectionMeta, TableMeta};
    use crate::query::{AggItem, JoinEdge, OrderItem, QueryTable};
    use vdb_exec::aggregate::AggFunc;
    use vdb_storage::projection::ProjectionDef;
    use vdb_types::{BinOp, ColumnDef, DataType, Row, TableSchema};

    fn sample_rows(n: i64, arity: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                (0..arity)
                    .map(|c| Value::Integer(i * (c as i64 + 1)))
                    .collect()
            })
            .collect()
    }

    /// fact(id, dim_id, amount, ts) segmented by HASH(id);
    /// dim(id, name_code) replicated.
    fn catalog() -> OptimizerCatalog {
        let fact_schema = TableSchema::new(
            "fact",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("dim_id", DataType::Integer),
                ColumnDef::new("amount", DataType::Integer),
                ColumnDef::new("ts", DataType::Timestamp),
            ],
        );
        let dim_schema = TableSchema::new(
            "dim",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("name_code", DataType::Integer),
            ],
        );
        let fact_proj = ProjectionDef::super_projection(&fact_schema, "fact_super", &[3, 0], &[0]);
        let fact_meta = ProjectionMeta::from_sample(
            fact_proj,
            100_000,
            vec![80_000, 40_000, 120_000, 20_000, 10_000],
            &sample_rows(1000, 4),
        );
        let dim_proj = ProjectionDef::super_projection(&dim_schema, "dim_super", &[0], &[]);
        let dim_meta =
            ProjectionMeta::from_sample(dim_proj, 100, vec![500, 700], &sample_rows(100, 2));
        let mut cat = OptimizerCatalog::default();
        cat.tables.insert(
            "fact".into(),
            TableMeta {
                schema: fact_schema,
                partition_by: None,
                projections: vec![fact_meta],
            },
        );
        cat.tables.insert(
            "dim".into(),
            TableMeta {
                schema: dim_schema,
                partition_by: None,
                projections: vec![dim_meta],
            },
        );
        cat
    }

    fn join_query() -> BoundQuery {
        // SELECT dim.name_code, COUNT(*) FROM fact JOIN dim ON
        // fact.dim_id = dim.id WHERE fact.amount > 50 GROUP BY name_code
        BoundQuery {
            tables: vec![
                QueryTable {
                    table: "fact".into(),
                    alias: "f".into(),
                },
                QueryTable {
                    table: "dim".into(),
                    alias: "d".into(),
                },
            ],
            table_filters: vec![
                Some(Expr::binary(
                    BinOp::Gt,
                    Expr::col(2, "amount"),
                    Expr::int(50),
                )),
                None,
            ],
            joins: vec![JoinEdge {
                left_table: 0,
                left_columns: vec![1],
                right_table: 1,
                right_columns: vec![0],
                join_type: JoinType::Inner,
            }],
            select: vec![(Expr::col(5, "name_code"), "name_code".into())],
            group_by: vec![Expr::col(5, "name_code")],
            aggregates: vec![AggItem {
                func: AggFunc::CountStar,
                input: None,
                output_name: "cnt".into(),
            }],
            order_by: vec![OrderItem {
                output_column: 0,
                ascending: true,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn plans_star_join_with_sip_on_fact_scan() {
        let planned = plan(&catalog(), &join_query(), None, &ExecOptions::serial()).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("HashJoin INNER"), "{text}");
        assert!(text.contains("[builds SIP]"), "{text}");
        assert!(text.contains("Scan fact_super"), "{text}");
        assert!(text.contains("[SIP x1]"), "{text}");
        // Replicated dim: local join, no broadcast.
        assert!(planned
            .table_access
            .iter()
            .all(|(_, a)| *a == TableAccess::Local));
        assert!(!planned.single_node, "fact is segmented");
        assert!(matches!(planned.merge, MergeSpec::ReAggregate { .. }));
        assert_eq!(planned.output_names, vec!["name_code", "cnt"]);
    }

    #[test]
    fn single_table_sorted_groupby_uses_pipelined() {
        // GROUP BY ts on fact (sorted by ts first).
        let q = BoundQuery {
            tables: vec![QueryTable {
                table: "fact".into(),
                alias: "f".into(),
            }],
            table_filters: vec![None],
            select: vec![(Expr::col(3, "ts"), "ts".into())],
            group_by: vec![Expr::col(3, "ts")],
            aggregates: vec![AggItem {
                func: AggFunc::CountStar,
                input: None,
                output_name: "cnt".into(),
            }],
            ..Default::default()
        };
        let planned = plan(&catalog(), &q, None, &ExecOptions::serial()).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("GroupByPipelined"), "{text}");
    }

    #[test]
    fn unsorted_groupby_uses_hash() {
        let q = BoundQuery {
            tables: vec![QueryTable {
                table: "fact".into(),
                alias: "f".into(),
            }],
            table_filters: vec![None],
            select: vec![(Expr::col(2, "amount"), "amount".into())],
            group_by: vec![Expr::col(2, "amount")],
            aggregates: vec![AggItem {
                func: AggFunc::CountStar,
                input: None,
                output_name: "cnt".into(),
            }],
            ..Default::default()
        };
        let planned = plan(&catalog(), &q, None, &ExecOptions::serial()).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("GroupByHash"), "{text}");
    }

    #[test]
    fn node_down_replan_fails_without_live_projection() {
        let live: HashSet<String> = HashSet::from(["dim_super".to_string()]);
        let err = plan(
            &catalog(),
            &join_query(),
            Some(&live),
            &ExecOptions::serial(),
        );
        assert!(matches!(err, Err(DbError::Plan(_))));
    }

    #[test]
    fn buddy_projection_used_when_primary_down() {
        let mut cat = catalog();
        // Add a buddy projection of fact with a different sort order.
        let fact = cat.tables.get_mut("fact").unwrap();
        let buddy_def = ProjectionDef::super_projection(&fact.schema, "fact_b1", &[0], &[0]);
        fact.projections.push(ProjectionMeta::from_sample(
            buddy_def,
            100_000,
            vec![80_000, 40_000, 120_000, 20_000, 10_000],
            &sample_rows(1000, 4),
        ));
        let live: HashSet<String> = HashSet::from(["dim_super".to_string(), "fact_b1".to_string()]);
        let planned = plan(&cat, &join_query(), Some(&live), &ExecOptions::serial()).unwrap();
        assert!(planned.table_access.iter().any(|(p, _)| p == "fact_b1"));
    }

    #[test]
    fn segmented_dim_without_colocation_is_broadcast() {
        let mut cat = catalog();
        // Make dim segmented on name_code (not the join key).
        let dim = cat.tables.get_mut("dim").unwrap();
        dim.projections[0].def.segmentation = Segmentation::hash_of(&[(1, "name_code")]);
        let planned = plan(&cat, &join_query(), None, &ExecOptions::serial()).unwrap();
        let dim_access = planned
            .table_access
            .iter()
            .find(|(p, _)| p == "dim_super")
            .unwrap();
        assert_eq!(dim_access.1, TableAccess::Broadcast);
    }

    #[test]
    fn dim_resegments_when_fact_is_segmented_on_join_keys() {
        let mut cat = catalog();
        // dim segmented on name_code (not the join key) but fact segmented
        // on dim_id (exactly its join key): dim rows can be re-routed by
        // hash(dim.id) to land next to their matching fact rows.
        let dim = cat.tables.get_mut("dim").unwrap();
        dim.projections[0].def.segmentation = Segmentation::hash_of(&[(1, "name_code")]);
        let fact = cat.tables.get_mut("fact").unwrap();
        fact.projections[0].def.segmentation = Segmentation::hash_of(&[(1, "dim_id")]);
        let planned = plan(&cat, &join_query(), None, &ExecOptions::serial()).unwrap();
        let dim_access = planned
            .table_access
            .iter()
            .find(|(p, _)| p == "dim_super")
            .unwrap();
        assert_eq!(
            dim_access.1,
            TableAccess::Resegment { keys: vec![0] },
            "dim join key is table column 0 (id)"
        );
        // Outer joins must not resegment: unmatched dim rows would emit on
        // one node only by luck of routing — keep the conservative broadcast.
        let mut q = join_query();
        q.joins[0].join_type = JoinType::LeftOuter;
        let planned = plan(&cat, &q, None, &ExecOptions::serial()).unwrap();
        let dim_access = planned
            .table_access
            .iter()
            .find(|(p, _)| p == "dim_super")
            .unwrap();
        assert_eq!(dim_access.1, TableAccess::Broadcast);
    }

    #[test]
    fn colocated_dim_stays_local() {
        let mut cat = catalog();
        // dim segmented on its join key AND fact segmented on its join key.
        let dim = cat.tables.get_mut("dim").unwrap();
        dim.projections[0].def.segmentation = Segmentation::hash_of(&[(0, "id")]);
        let fact = cat.tables.get_mut("fact").unwrap();
        fact.projections[0].def.segmentation = Segmentation::hash_of(&[(1, "dim_id")]);
        let planned = plan(&cat, &join_query(), None, &ExecOptions::serial()).unwrap();
        assert!(planned
            .table_access
            .iter()
            .all(|(_, a)| *a == TableAccess::Local));
    }

    #[test]
    fn partition_predicate_derived_from_monotone_filter() {
        let part = Expr::call(Func::YearMonth, vec![Expr::col(3, "ts")]);
        let mar1 = vdb_types::date::timestamp_from_civil(2012, 3, 1, 0, 0, 0);
        let may31 = vdb_types::date::timestamp_from_civil(2012, 5, 31, 0, 0, 0);
        let filter = Expr::and(
            Expr::binary(
                BinOp::Ge,
                Expr::col(3, "ts"),
                Expr::lit(Value::Timestamp(mar1)),
            ),
            Expr::binary(
                BinOp::Le,
                Expr::col(3, "ts"),
                Expr::lit(Value::Timestamp(may31)),
            ),
        );
        let pred = derive_partition_predicate(Some(&part), Some(&filter)).unwrap();
        // Key 201202 excluded, 201204 included, 201206 excluded.
        assert!(!pred.matches(&[Value::Integer(201_202)]).unwrap());
        assert!(pred.matches(&[Value::Integer(201_204)]).unwrap());
        assert!(!pred.matches(&[Value::Integer(201_206)]).unwrap());
    }

    /// The unsorted single-table GROUP BY from `unsorted_groupby_uses_hash`.
    fn hash_groupby_query() -> BoundQuery {
        BoundQuery {
            tables: vec![QueryTable {
                table: "fact".into(),
                alias: "f".into(),
            }],
            table_filters: vec![None],
            select: vec![(Expr::col(2, "amount"), "amount".into())],
            group_by: vec![Expr::col(2, "amount")],
            aggregates: vec![AggItem {
                func: AggFunc::CountStar,
                input: None,
                output_name: "cnt".into(),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn multi_container_groupby_parallelizes() {
        let mut cat = catalog();
        cat.tables.get_mut("fact").unwrap().projections[0].scan_morsels = 8;
        let planned = plan(
            &cat,
            &hash_groupby_query(),
            None,
            &ExecOptions::with_threads(4),
        )
        .unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("ParallelScan fact_super"), "{text}");
        assert!(text.contains("4 threads, partial GroupBy"), "{text}");
        assert!(text.contains("merge barrier"), "{text}");
    }

    #[test]
    fn dop_clamps_to_container_morsel_count() {
        let mut cat = catalog();
        cat.tables.get_mut("fact").unwrap().projections[0].scan_morsels = 2;
        let planned = plan(
            &cat,
            &hash_groupby_query(),
            None,
            &ExecOptions::with_threads(16),
        )
        .unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("2 threads"), "{text}");
    }

    #[test]
    fn single_container_projection_stays_serial() {
        // from_sample defaults to one morsel: nothing to parallelize over.
        let planned = plan(
            &catalog(),
            &hash_groupby_query(),
            None,
            &ExecOptions::with_threads(8),
        )
        .unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(!text.contains("ParallelScan"), "{text}");
        assert!(text.contains("GroupByHash"), "{text}");
    }

    #[test]
    fn sorted_groupby_keeps_pipelined_even_with_threads() {
        // GROUP BY ts rides the projection sort order; morsel parallelism
        // would break the one-pass aggregation, so it stays serial.
        let mut cat = catalog();
        cat.tables.get_mut("fact").unwrap().projections[0].scan_morsels = 8;
        let q = BoundQuery {
            tables: vec![QueryTable {
                table: "fact".into(),
                alias: "f".into(),
            }],
            table_filters: vec![None],
            select: vec![(Expr::col(3, "ts"), "ts".into())],
            group_by: vec![Expr::col(3, "ts")],
            aggregates: vec![AggItem {
                func: AggFunc::CountStar,
                input: None,
                output_name: "cnt".into(),
            }],
            ..Default::default()
        };
        let planned = plan(&cat, &q, None, &ExecOptions::with_threads(4)).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("GroupByPipelined"), "{text}");
        assert!(!text.contains("ParallelScan"), "{text}");
    }

    #[test]
    fn plain_select_parallelizes_the_scan_collect() {
        let mut cat = catalog();
        cat.tables.get_mut("fact").unwrap().projections[0].scan_morsels = 8;
        let q = BoundQuery {
            tables: vec![QueryTable {
                table: "fact".into(),
                alias: "f".into(),
            }],
            table_filters: vec![Some(Expr::binary(
                BinOp::Gt,
                Expr::col(2, "amount"),
                Expr::int(50),
            ))],
            select: vec![(Expr::col(0, "id"), "id".into())],
            ..Default::default()
        };
        let planned = plan(&cat, &q, None, &ExecOptions::with_threads(4)).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("ParallelScan fact_super"), "{text}");
        assert!(text.contains("[morsels -> 4 threads]"), "{text}");
        assert!(text.contains("filter=((amount > 50))"), "{text}");
    }

    #[test]
    fn limit_bounded_scan_stays_serial() {
        // LIMIT without ORDER BY applies locally; a parallel collect would
        // scan everything before limiting, so the planner keeps it serial.
        let mut cat = catalog();
        cat.tables.get_mut("fact").unwrap().projections[0].scan_morsels = 8;
        let q = BoundQuery {
            tables: vec![QueryTable {
                table: "fact".into(),
                alias: "f".into(),
            }],
            table_filters: vec![None],
            select: vec![(Expr::col(0, "id"), "id".into())],
            limit: Some(5),
            ..Default::default()
        };
        let planned = plan(&cat, &q, None, &ExecOptions::with_threads(4)).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(!text.contains("ParallelScan"), "{text}");
        assert!(text.contains("Limit 5"), "{text}");
    }

    #[test]
    fn multi_morsel_star_join_parallelizes_with_sip() {
        let mut cat = catalog();
        cat.tables.get_mut("fact").unwrap().projections[0].scan_morsels = 8;
        cat.tables.get_mut("dim").unwrap().projections[0].scan_morsels = 3;
        let planned = plan(&cat, &join_query(), None, &ExecOptions::with_threads(4)).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(text.contains("ParallelHashJoin INNER"), "{text}");
        assert!(text.contains("probe: 4 workers"), "{text}");
        assert!(text.contains("build: 3 workers"), "{text}");
        assert!(text.contains("[builds SIP]"), "{text}");
        // The probe-side fact scan still consumes the SIP filter.
        assert!(text.contains("Scan fact_super"), "{text}");
        assert!(text.contains("[SIP x1]"), "{text}");
    }

    #[test]
    fn single_morsel_fact_join_stays_serial() {
        // Default catalog: one morsel per projection → nothing to pull in
        // parallel, the serial hash join remains.
        let planned = plan(
            &catalog(),
            &join_query(),
            None,
            &ExecOptions::with_threads(8),
        )
        .unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(!text.contains("ParallelHashJoin"), "{text}");
        assert!(text.contains("HashJoin INNER"), "{text}");
    }

    #[test]
    fn right_outer_join_stays_serial() {
        let mut cat = catalog();
        cat.tables.get_mut("fact").unwrap().projections[0].scan_morsels = 8;
        let mut q = join_query();
        // fact RIGHT OUTER JOIN dim: needs build-side matched flags. Drop
        // the fact filter so the outer→inner rewrite cannot simplify it.
        q.joins[0].join_type = JoinType::RightOuter;
        q.table_filters[0] = None;
        let planned = plan(&cat, &q, None, &ExecOptions::with_threads(4)).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(!text.contains("ParallelHashJoin"), "{text}");
        assert!(text.contains("HashJoin RIGHT OUTER"), "{text}");
    }

    #[test]
    fn count_distinct_ships_raw_rows() {
        let q = BoundQuery {
            tables: vec![QueryTable {
                table: "fact".into(),
                alias: "f".into(),
            }],
            table_filters: vec![None],
            select: vec![(Expr::col(3, "ts"), "ts".into())],
            group_by: vec![Expr::col(3, "ts")],
            aggregates: vec![AggItem {
                func: AggFunc::CountDistinct,
                input: Some(Expr::col(1, "dim_id")),
                output_name: "d".into(),
            }],
            ..Default::default()
        };
        let planned = plan(&catalog(), &q, None, &ExecOptions::serial()).unwrap();
        let text = vdb_exec::plan::explain(&planned.local);
        assert!(
            !text.contains("GroupBy"),
            "local side must not pre-aggregate COUNT DISTINCT: {text}"
        );
        match planned.merge {
            MergeSpec::ReAggregate { merge_aggs, .. } => {
                assert_eq!(merge_aggs[0].func, AggFunc::CountDistinct);
            }
            _ => panic!("expected re-aggregation"),
        }
    }
}
