//! Statistics: sample-based distinct estimation and equi-height
//! histograms (§6.2: "equi-height histograms to calculate selectivity,
//! applying sample-based estimates of the number of distinct values").

use vdb_types::{BinOp, Expr, Value};

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Per-column statistics gathered from a sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStatsData {
    pub rows: u64,
    pub nulls: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub distinct: u64,
    pub avg_bytes: f64,
    /// Equi-height bucket upper bounds (sorted). `rows/buckets` rows fall
    /// at or below each bound.
    pub histogram: Vec<Value>,
}

/// Build stats from a sample of `sample` values drawn from a column with
/// `total_rows` rows.
pub fn build_column_stats(sample: &[Value], total_rows: u64) -> ColumnStatsData {
    let mut non_null: Vec<&Value> = sample.iter().filter(|v| !v.is_null()).collect();
    let nulls_in_sample = sample.len() - non_null.len();
    non_null.sort();
    let d_sample = {
        let mut d = 0u64;
        let mut prev: Option<&&Value> = None;
        for v in &non_null {
            if prev != Some(v) {
                d += 1;
            }
            prev = Some(v);
        }
        d
    };
    // First-order jackknife / GEE-flavored scale-up (Haas et al. [16]):
    // d̂ = d * sqrt(N / n), capped at N.
    let n = sample.len().max(1) as f64;
    let scale = (total_rows as f64 / n).max(1.0).sqrt();
    let distinct = ((d_sample as f64) * scale).round().min(total_rows as f64) as u64;
    let mut histogram = Vec::new();
    if !non_null.is_empty() {
        for b in 1..=HISTOGRAM_BUCKETS {
            let idx = (b * non_null.len() / HISTOGRAM_BUCKETS).saturating_sub(1);
            histogram.push(non_null[idx].clone());
        }
        histogram.dedup();
    }
    let avg_bytes = if sample.is_empty() {
        8.0
    } else {
        sample
            .iter()
            .map(|v| match v {
                Value::Null | Value::Boolean(_) => 1usize,
                Value::Integer(_) | Value::Float(_) | Value::Timestamp(_) => 8,
                Value::Varchar(s) => s.len() + 4,
            })
            .sum::<usize>() as f64
            / sample.len() as f64
    };
    let null_fraction = nulls_in_sample as f64 / n;
    ColumnStatsData {
        rows: total_rows,
        nulls: (null_fraction * total_rows as f64) as u64,
        min: non_null.first().map(|v| (*v).clone()),
        max: non_null.last().map(|v| (*v).clone()),
        distinct: distinct.max(u64::from(d_sample > 0)),
        avg_bytes,
        histogram,
    }
}

impl ColumnStatsData {
    /// Fraction of rows at or below `v`, from the histogram (falling back
    /// to linear interpolation on min/max for numerics).
    pub fn fraction_le(&self, v: &Value) -> f64 {
        if !self.histogram.is_empty() {
            let below = self.histogram.partition_point(|b| b < v);
            return (below as f64 / self.histogram.len() as f64).clamp(0.0, 1.0);
        }
        match (&self.min, &self.max, v.as_f64()) {
            (Some(min), Some(max), Some(x)) => {
                let (lo, hi) = (min.as_f64().unwrap_or(0.0), max.as_f64().unwrap_or(0.0));
                if hi <= lo {
                    return 0.5;
                }
                ((x - lo) / (hi - lo)).clamp(0.0, 1.0)
            }
            _ => 0.5,
        }
    }

    /// Estimated selectivity of `column op literal`.
    pub fn selectivity(&self, op: BinOp, v: &Value) -> f64 {
        match op {
            BinOp::Eq => 1.0 / self.distinct.max(1) as f64,
            BinOp::Ne => 1.0 - 1.0 / self.distinct.max(1) as f64,
            BinOp::Lt | BinOp::Le => self.fraction_le(v),
            BinOp::Gt | BinOp::Ge => 1.0 - self.fraction_le(v),
            _ => 1.0,
        }
    }
}

/// Estimated selectivity of a predicate over one table's columns.
/// Conjuncts multiply (independence assumption); unknown shapes cost 0.5.
pub fn predicate_selectivity(pred: &Expr, stats: &[ColumnStatsData]) -> f64 {
    pred.clone()
        .split_conjuncts()
        .iter()
        .map(|c| conjunct_selectivity(c, stats))
        .product::<f64>()
        .clamp(0.0, 1.0)
}

fn conjunct_selectivity(conj: &Expr, stats: &[ColumnStatsData]) -> f64 {
    match conj {
        Expr::Binary { op, left, right } if op.is_comparison() => {
            match (left.as_ref(), right.as_ref()) {
                (Expr::Column { index, .. }, Expr::Literal(v))
                | (Expr::Literal(v), Expr::Column { index, .. }) => {
                    stats.get(*index).map_or(0.3, |s| s.selectivity(*op, v))
                }
                _ => 0.5,
            }
        }
        Expr::Between { input, low, high } => {
            if let (Expr::Column { index, .. }, Expr::Literal(lo), Expr::Literal(hi)) =
                (input.as_ref(), low.as_ref(), high.as_ref())
            {
                if let Some(s) = stats.get(*index) {
                    return (s.fraction_le(hi) - s.fraction_le(lo)).clamp(0.001, 1.0);
                }
            }
            0.25
        }
        Expr::InList { input, list, .. } => {
            if let Expr::Column { index, .. } = input.as_ref() {
                if let Some(s) = stats.get(*index) {
                    return (list.len() as f64 / s.distinct.max(1) as f64).min(1.0);
                }
            }
            0.2
        }
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            let a = conjunct_selectivity(left, stats);
            let b = conjunct_selectivity(right, stats);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        Expr::IsNull { .. } => 0.05,
        _ => 0.5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_sample(n: i64) -> Vec<Value> {
        (0..n).map(Value::Integer).collect()
    }

    #[test]
    fn distinct_estimation_scales_up() {
        // Sample of 1000 distinct values from 100k rows: estimate should be
        // well above the sample count but at most the row count.
        let s = build_column_stats(&int_sample(1000), 100_000);
        assert!(s.distinct > 1000, "distinct = {}", s.distinct);
        assert!(s.distinct <= 100_000);
        assert_eq!(s.min, Some(Value::Integer(0)));
        assert_eq!(s.max, Some(Value::Integer(999)));
    }

    #[test]
    fn low_cardinality_detected() {
        let sample: Vec<Value> = (0..1000).map(|i| Value::Integer(i % 5)).collect();
        let s = build_column_stats(&sample, 1_000_000);
        // 5 distinct in a big sample: the estimate must stay small-ish.
        assert!(s.distinct < 200, "distinct = {}", s.distinct);
    }

    #[test]
    fn histogram_fractions() {
        let s = build_column_stats(&int_sample(1000), 1000);
        let f = s.fraction_le(&Value::Integer(500));
        assert!((f - 0.5).abs() < 0.1, "fraction = {f}");
        assert!(s.fraction_le(&Value::Integer(-10)) < 0.05);
        assert!(s.fraction_le(&Value::Integer(2000)) > 0.95);
    }

    #[test]
    fn selectivity_of_operators() {
        let s = build_column_stats(&int_sample(1000), 1000);
        assert!(s.selectivity(BinOp::Eq, &Value::Integer(5)) < 0.01);
        let lt = s.selectivity(BinOp::Lt, &Value::Integer(100));
        assert!(lt > 0.02 && lt < 0.2, "lt = {lt}");
    }

    #[test]
    fn predicate_selectivity_multiplies_conjuncts() {
        let stats = vec![
            build_column_stats(&int_sample(1000), 1000),
            build_column_stats(&int_sample(10), 1000),
        ];
        let pred = Expr::and(
            Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(500)),
            Expr::eq(Expr::col(1, "b"), Expr::int(3)),
        );
        let sel = predicate_selectivity(&pred, &stats);
        let a = conjunct_selectivity(
            &Expr::binary(BinOp::Lt, Expr::col(0, "a"), Expr::int(500)),
            &stats,
        );
        let b = conjunct_selectivity(&Expr::eq(Expr::col(1, "b"), Expr::int(3)), &stats);
        assert!((sel - a * b).abs() < 1e-9);
    }

    #[test]
    fn nulls_counted() {
        let mut sample = int_sample(100);
        sample.extend(std::iter::repeat_n(Value::Null, 100));
        let s = build_column_stats(&sample, 2000);
        assert!(s.nulls > 800 && s.nulls < 1200, "nulls = {}", s.nulls);
    }
}
