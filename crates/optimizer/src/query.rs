//! The bound query representation the SQL binder hands to the planner.
//!
//! Column references inside expressions use the **global column space**:
//! the columns of all FROM tables concatenated in FROM order. The planner
//! remaps them as it chooses projections and join orders.

use vdb_exec::aggregate::AggFunc;
use vdb_exec::analytic::WindowFunc;
use vdb_exec::plan::JoinType;
use vdb_types::Expr;

/// One FROM-clause table.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTable {
    pub table: String,
    pub alias: String,
}

/// An equi-join edge between two FROM tables (multi-column capable).
/// Columns are *local* to each table.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEdge {
    pub left_table: usize,
    pub left_columns: Vec<usize>,
    pub right_table: usize,
    pub right_columns: Vec<usize>,
    pub join_type: JoinType,
}

/// ORDER BY item over the query's *output* columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderItem {
    pub output_column: usize,
    pub ascending: bool,
}

/// A window-function call (only valid for non-aggregating queries).
/// Columns are in the global column space.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCall {
    pub func: WindowFunc,
    pub partition_by: Vec<usize>,
    pub order_by: Vec<(usize, bool)>,
    pub output_name: String,
}

/// One aggregate in the SELECT list: function + argument expression over
/// global columns (`None` = COUNT(*)).
#[derive(Debug, Clone, PartialEq)]
pub struct AggItem {
    pub func: AggFunc,
    pub input: Option<Expr>,
    pub output_name: String,
}

/// A fully bound SELECT query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BoundQuery {
    pub tables: Vec<QueryTable>,
    /// Per-table filter (column indexes local to that table).
    pub table_filters: Vec<Option<Expr>>,
    pub joins: Vec<JoinEdge>,
    /// Residual predicates over the global column space that could not be
    /// attributed to a single table (cross-table non-equi conditions).
    pub residual_filters: Vec<Expr>,
    /// Plain select list (global column space). For aggregate queries this
    /// holds the group-by output expressions instead; see `aggregates`.
    pub select: Vec<(Expr, String)>,
    pub distinct: bool,
    /// GROUP BY expressions (global column space).
    pub group_by: Vec<Expr>,
    pub aggregates: Vec<AggItem>,
    /// HAVING over the aggregate output layout: group columns first, then
    /// aggregates, in order.
    pub having: Option<Expr>,
    /// Window calls (non-aggregate queries only).
    pub windows: Vec<WindowCall>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<usize>,
    pub offset: usize,
}

impl BoundQuery {
    pub fn is_aggregate(&self) -> bool {
        !self.aggregates.is_empty() || !self.group_by.is_empty()
    }

    /// Output column names in order.
    pub fn output_names(&self) -> Vec<String> {
        if self.is_aggregate() {
            let mut names: Vec<String> = self.select.iter().map(|(_, n)| n.clone()).collect();
            names.extend(self.aggregates.iter().map(|a| a.output_name.clone()));
            names
        } else {
            let mut names: Vec<String> = self.select.iter().map(|(_, n)| n.clone()).collect();
            names.extend(self.windows.iter().map(|w| w.output_name.clone()));
            names
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_names_order() {
        let q = BoundQuery {
            tables: vec![QueryTable {
                table: "t".into(),
                alias: "t".into(),
            }],
            table_filters: vec![None],
            select: vec![(Expr::col(0, "a"), "a".into())],
            group_by: vec![Expr::col(0, "a")],
            aggregates: vec![AggItem {
                func: AggFunc::CountStar,
                input: None,
                output_name: "cnt".into(),
            }],
            ..Default::default()
        };
        assert!(q.is_aggregate());
        assert_eq!(q.output_names(), vec!["a".to_string(), "cnt".to_string()]);
    }
}
