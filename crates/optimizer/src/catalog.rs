//! The optimizer's view of the catalog: schemas, projections and their
//! statistics. Built by `vdb-core` from live storage; kept as plain data so
//! the planner is a pure function (easy to test, easy to re-run for
//! node-down replans).

use crate::stats::{build_column_stats, ColumnStatsData};
use std::collections::BTreeMap;
use vdb_storage::projection::ProjectionDef;
use vdb_types::{Row, TableSchema};

pub type ColumnStats = ColumnStatsData;

/// Statistics + definition of one projection.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionMeta {
    pub def: ProjectionDef,
    pub row_count: u64,
    /// Encoded bytes on disk per projection column (compression-aware I/O
    /// costing, §6.2).
    pub column_bytes: Vec<u64>,
    /// Per projection column.
    pub stats: Vec<ColumnStats>,
    /// Observed concrete encodings per projection column: `(encoding name,
    /// rows)` as reported by storage's position indexes. Empty when the
    /// projection has no ROS data (or the catalog was built from a sample
    /// only). The Database Designer reads this to compare what `Auto`
    /// actually chose against its trial-encoding pick (§6.3).
    pub column_encodings: Vec<Vec<(String, u64)>>,
    /// Scan morsels a single node's snapshot of this projection yields
    /// (max across nodes): ROS containers plus the WOS tail. The planner
    /// caps a parallel scan's degree of parallelism at this — more workers
    /// than independently stored containers cannot help.
    pub scan_morsels: usize,
}

impl ProjectionMeta {
    /// Build from a sample of projection-shaped rows.
    pub fn from_sample(
        def: ProjectionDef,
        row_count: u64,
        column_bytes: Vec<u64>,
        sample: &[Row],
    ) -> ProjectionMeta {
        let arity = def.arity();
        let stats = (0..arity)
            .map(|c| {
                let col: Vec<vdb_types::Value> = sample.iter().map(|r| r[c].clone()).collect();
                build_column_stats(&col, row_count)
            })
            .collect();
        ProjectionMeta {
            def,
            row_count,
            column_bytes,
            stats,
            column_encodings: Vec::new(),
            scan_morsels: 1,
        }
    }

    /// Record the container-level morsel count storage reported.
    pub fn with_scan_morsels(mut self, morsels: usize) -> ProjectionMeta {
        self.scan_morsels = morsels.max(1);
        self
    }

    /// Record the observed per-column encodings storage reported.
    pub fn with_column_encodings(mut self, encodings: Vec<Vec<(String, u64)>>) -> ProjectionMeta {
        self.column_encodings = encodings;
        self
    }

    /// The encoding covering the most rows of column `col`, if known.
    pub fn dominant_encoding(&self, col: usize) -> Option<&str> {
        self.column_encodings
            .get(col)?
            .iter()
            .max_by_key(|(_, rows)| *rows)
            .map(|(name, _)| name.as_str())
    }
}

/// One logical table with its projections.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMeta {
    pub schema: TableSchema,
    pub partition_by: Option<vdb_types::Expr>,
    pub projections: Vec<ProjectionMeta>,
}

impl TableMeta {
    pub fn row_count(&self) -> u64 {
        self.projections
            .iter()
            .map(|p| p.row_count)
            .max()
            .unwrap_or(0)
    }
}

/// The catalog snapshot the planner works against.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptimizerCatalog {
    pub tables: BTreeMap<String, TableMeta>,
}

impl OptimizerCatalog {
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(name)
    }

    /// Container-level morsel count recorded for a projection (1 when the
    /// projection is unknown). The planner caps every parallel scan's —
    /// and parallel join side's — degree of parallelism at this.
    pub fn scan_morsels(&self, projection: &str) -> usize {
        self.tables
            .values()
            .flat_map(|t| &t.projections)
            .find(|p| p.def.name == projection)
            .map_or(1, |p| p.scan_morsels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_types::{ColumnDef, DataType, Value};

    #[test]
    fn projection_meta_builds_per_column_stats() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Varchar),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[0]);
        let sample: Vec<Row> = (0..100)
            .map(|i| vec![Value::Integer(i), Value::Varchar(format!("v{}", i % 3))])
            .collect();
        let meta = ProjectionMeta::from_sample(def, 10_000, vec![800, 120], &sample);
        assert_eq!(meta.stats.len(), 2);
        assert_eq!(meta.stats[0].rows, 10_000);
        assert!(meta.stats[1].distinct < meta.stats[0].distinct);
    }

    #[test]
    fn observed_encodings_expose_dominant_codec() {
        let schema = TableSchema::new("t", vec![ColumnDef::new("a", DataType::Integer)]);
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[0]);
        let meta = ProjectionMeta::from_sample(def, 100, vec![80], &[]);
        assert_eq!(meta.dominant_encoding(0), None);
        let meta = meta.with_column_encodings(vec![vec![
            ("PLAIN".into(), 100),
            ("DELTADELTA".into(), 3000),
            ("RLE".into(), 40),
        ]]);
        assert_eq!(meta.dominant_encoding(0), Some("DELTADELTA"));
        assert_eq!(meta.dominant_encoding(1), None);
    }
}
