//! `vdb-optimizer` — the query optimizer (§6.2 of the paper).
//!
//! The paper traces three generations: StarOpt (star-schema join ordering),
//! StarifiedOpt (force non-star queries into star shape) and the
//! distribution-aware, physical-property-driven V2Opt. This crate
//! implements the V2Opt recipe scaled to this engine:
//!
//! * **physical properties** — projection sort order, segmentation and
//!   compression-aware scan cost drive projection choice
//!   (`planner`'s projection choice);
//! * **StarOpt join order** — "join a fact table with its most highly
//!   selective dimensions first" ([`planner`]);
//! * **statistics** — sample-based distinct estimation (the paper cites
//!   Haas et al. \[16\]) and equi-height histograms ([`stats`]);
//! * **cost model** — compression-aware I/O + CPU + network ([`cost`]);
//! * **rewrites** — transitive predicates from join keys, outer→inner
//!   conversion, predicate pushdown ([`rewrite`]);
//! * **SIP placement** — hash-join filters pushed into probe-side scans;
//! * **distribution awareness** — every plan carries a [`plan_out::MergeSpec`]
//!   telling the cluster layer how to combine per-node results, plus the
//!   set of tables whose scans must be broadcast because their
//!   segmentation does not co-locate with the join
//!   ([`plan_out::TableAccess`]);
//! * **node-down replanning** — [`planner::plan`] takes the set of *live*
//!   projections and re-costs with buddies when the preferred projection
//!   is unavailable (§6.2 last paragraph).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod catalog;
pub mod cost;
pub mod plan_out;
pub mod planner;
pub mod query;
pub mod rewrite;
pub mod stats;

pub use catalog::{ColumnStats, OptimizerCatalog, ProjectionMeta, TableMeta};
pub use plan_out::{MergeSpec, PlannedQuery, TableAccess};
pub use planner::{plan, projection_scan_cost, query_scan_cost};
pub use query::{BoundQuery, JoinEdge, OrderItem, QueryTable, WindowCall};
pub use vdb_exec::parallel::ExecOptions;
