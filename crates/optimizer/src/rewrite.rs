//! Query rewrites (§6.2): transitive predicates from join keys and
//! outer→inner join conversion — two of the "best practices developed over
//! the past 30 years of optimizer research" V2Opt incorporates.

use crate::query::BoundQuery;
use vdb_exec::plan::JoinType;
use vdb_types::{BinOp, Expr, Value};

/// Apply all rewrites in place.
pub fn rewrite(q: &mut BoundQuery) {
    outer_to_inner(q);
    transitive_predicates(q);
    or_chains_to_in_lists(q);
}

/// Rewrite `c = v1 OR c = v2 OR ...` chains (same column, all
/// equality-vs-literal, `IN` disjuncts included) into `c IN (v1, v2, ...)`
/// across every predicate slot the planner emits. The executor's
/// vectorizer then sees a single IN conjunct — one hash-set membership
/// test per row (or one per distinct dictionary code) instead of an
/// OR-combined selection per disjunct — keeping planner-produced
/// predicates in vectorizable form.
pub fn or_chains_to_in_lists(q: &mut BoundQuery) {
    for slot in q.table_filters.iter_mut().flatten() {
        *slot = fold_or_to_in(slot.clone());
    }
    for pred in &mut q.residual_filters {
        *pred = fold_or_to_in(pred.clone());
    }
    if let Some(h) = &mut q.having {
        *h = fold_or_to_in(h.clone());
    }
}

/// One disjunct's `(column index, display name, values)` when it is an
/// equality or IN against literals.
fn eq_disjunct(e: &Expr) -> Option<(usize, String, Vec<Value>)> {
    match e {
        Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column { index, name }, Expr::Literal(v))
            | (Expr::Literal(v), Expr::Column { index, name }) => {
                Some((*index, name.clone(), vec![v.clone()]))
            }
            _ => None,
        },
        Expr::InList {
            input,
            list,
            negated: false,
        } => match input.as_ref() {
            Expr::Column { index, name } => Some((*index, name.clone(), list.clone())),
            _ => None,
        },
        _ => None,
    }
}

/// Bottom-up fold of OR chains into IN lists wherever every disjunct is an
/// equality (or IN) on the same column.
fn fold_or_to_in(e: Expr) -> Expr {
    match e {
        Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } => {
            let left = fold_or_to_in(*left);
            let right = fold_or_to_in(*right);
            if let (Some((lc, name, mut lv)), Some((rc, _, rv))) =
                (eq_disjunct(&left), eq_disjunct(&right))
            {
                if lc == rc {
                    for v in rv {
                        if !lv.contains(&v) {
                            lv.push(v);
                        }
                    }
                    return Expr::in_list(Expr::col(lc, name), lv, false);
                }
            }
            Expr::or(left, right)
        }
        Expr::Binary { op, left, right } => {
            Expr::binary(op, fold_or_to_in(*left), fold_or_to_in(*right))
        }
        other => other,
    }
}

/// A LEFT (RIGHT) outer join whose nullable side carries a null-rejecting
/// WHERE filter is equivalent to an inner join: NULL-extended rows can
/// never pass the filter.
pub fn outer_to_inner(q: &mut BoundQuery) {
    for edge in &mut q.joins {
        let nullable_side = match edge.join_type {
            JoinType::LeftOuter => edge.right_table,
            JoinType::RightOuter => edge.left_table,
            _ => continue,
        };
        if q.table_filters
            .get(nullable_side)
            .and_then(|f| f.as_ref())
            .is_some_and(null_rejecting)
        {
            edge.join_type = JoinType::Inner;
        }
    }
}

/// Does the predicate reject NULL inputs? Comparisons and BETWEEN do (NULL
/// compares to NULL, which is not true); `IS NULL` does not.
fn null_rejecting(pred: &Expr) -> bool {
    pred.clone().split_conjuncts().iter().any(|c| match c {
        Expr::Binary { op, .. } => op.is_comparison(),
        Expr::Between { .. } => true,
        Expr::InList { negated, .. } => !negated,
        Expr::IsNull { negated, .. } => *negated,
        _ => false,
    })
}

/// For every single-column inner-join edge, copy `col op literal`
/// conjuncts across the equality: `fact.k = dim.k AND dim.k > 5` implies
/// `fact.k > 5`, which can prune fact containers.
pub fn transitive_predicates(q: &mut BoundQuery) {
    for edge in &q.joins {
        if edge.join_type != JoinType::Inner || edge.left_columns.len() != 1 {
            continue;
        }
        let (lt, lc) = (edge.left_table, edge.left_columns[0]);
        let (rt, rc) = (edge.right_table, edge.right_columns[0]);
        let from_left = extract_literal_conjuncts(q.table_filters[lt].as_ref(), lc);
        let from_right = extract_literal_conjuncts(q.table_filters[rt].as_ref(), rc);
        for (op, lit) in from_left {
            add_conjunct(
                &mut q.table_filters[rt],
                Expr::binary(op, Expr::col(rc, "tp"), Expr::Literal(lit)),
            );
        }
        for (op, lit) in from_right {
            add_conjunct(
                &mut q.table_filters[lt],
                Expr::binary(op, Expr::col(lc, "tp"), Expr::Literal(lit)),
            );
        }
    }
}

fn extract_literal_conjuncts(pred: Option<&Expr>, col: usize) -> Vec<(BinOp, vdb_types::Value)> {
    let Some(pred) = pred else {
        return Vec::new();
    };
    pred.clone()
        .split_conjuncts()
        .into_iter()
        .filter_map(|c| match c {
            Expr::Binary { op, left, right } if op.is_comparison() => match (*left, *right) {
                (Expr::Column { index, .. }, Expr::Literal(v)) if index == col => Some((op, v)),
                _ => None,
            },
            _ => None,
        })
        .collect()
}

fn add_conjunct(slot: &mut Option<Expr>, conjunct: Expr) {
    // Skip if an identical conjunct is already present.
    if let Some(existing) = slot {
        if existing
            .clone()
            .split_conjuncts()
            .iter()
            .any(|c| c == &conjunct)
        {
            return;
        }
        *slot = Some(Expr::and(existing.clone(), conjunct));
    } else {
        *slot = Some(conjunct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{JoinEdge, QueryTable};

    fn two_table_query(join_type: JoinType) -> BoundQuery {
        BoundQuery {
            tables: vec![
                QueryTable {
                    table: "fact".into(),
                    alias: "f".into(),
                },
                QueryTable {
                    table: "dim".into(),
                    alias: "d".into(),
                },
            ],
            table_filters: vec![None, None],
            joins: vec![JoinEdge {
                left_table: 0,
                left_columns: vec![1],
                right_table: 1,
                right_columns: vec![0],
                join_type,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn left_outer_with_null_rejecting_filter_becomes_inner() {
        let mut q = two_table_query(JoinType::LeftOuter);
        q.table_filters[1] = Some(Expr::binary(BinOp::Gt, Expr::col(2, "x"), Expr::int(5)));
        rewrite(&mut q);
        assert_eq!(q.joins[0].join_type, JoinType::Inner);
    }

    #[test]
    fn left_outer_with_is_null_filter_stays_outer() {
        let mut q = two_table_query(JoinType::LeftOuter);
        q.table_filters[1] = Some(Expr::IsNull {
            input: Box::new(Expr::col(2, "x")),
            negated: false,
        });
        rewrite(&mut q);
        assert_eq!(q.joins[0].join_type, JoinType::LeftOuter);
    }

    #[test]
    fn transitive_predicate_copies_across_join_key() {
        let mut q = two_table_query(JoinType::Inner);
        // dim.key > 100 — the fact side should inherit fact.fk > 100.
        q.table_filters[1] = Some(Expr::binary(BinOp::Gt, Expr::col(0, "key"), Expr::int(100)));
        rewrite(&mut q);
        let fact_filter = q.table_filters[0].as_ref().unwrap();
        let conjuncts = fact_filter.clone().split_conjuncts();
        assert!(conjuncts.iter().any(|c| matches!(
            c,
            Expr::Binary { op: BinOp::Gt, left, .. }
            if matches!(left.as_ref(), Expr::Column { index: 1, .. })
        )));
    }

    #[test]
    fn transitive_predicates_do_not_duplicate() {
        let mut q = two_table_query(JoinType::Inner);
        q.table_filters[1] = Some(Expr::binary(BinOp::Gt, Expr::col(0, "key"), Expr::int(100)));
        rewrite(&mut q);
        let before = q.table_filters[0].clone().unwrap().split_conjuncts().len();
        rewrite(&mut q);
        let after = q.table_filters[0].clone().unwrap().split_conjuncts().len();
        assert_eq!(before, after, "second pass adds nothing");
    }

    #[test]
    fn or_chain_folds_to_in_list() {
        use vdb_types::Value;
        let mut q = two_table_query(JoinType::Inner);
        // (k = 1 OR k = 2) OR k IN (2, 3) → k IN (1, 2, 3).
        q.table_filters[0] = Some(Expr::or(
            Expr::or(
                Expr::eq(Expr::col(2, "k"), Expr::int(1)),
                Expr::eq(Expr::int(2), Expr::col(2, "k")),
            ),
            Expr::in_list(
                Expr::col(2, "k"),
                vec![Value::Integer(2), Value::Integer(3)],
                false,
            ),
        ));
        rewrite(&mut q);
        let Some(Expr::InList {
            input,
            list,
            negated: false,
        }) = &q.table_filters[0]
        else {
            panic!("expected IN list, got {:?}", q.table_filters[0]);
        };
        assert!(matches!(input.as_ref(), Expr::Column { index: 2, .. }));
        assert_eq!(
            list,
            &vec![Value::Integer(1), Value::Integer(2), Value::Integer(3)]
        );
    }

    #[test]
    fn mixed_column_or_stays_or() {
        let mut q = two_table_query(JoinType::Inner);
        let pred = Expr::or(
            Expr::eq(Expr::col(2, "a"), Expr::int(1)),
            Expr::eq(Expr::col(3, "b"), Expr::int(2)),
        );
        q.table_filters[0] = Some(pred.clone());
        rewrite(&mut q);
        assert_eq!(q.table_filters[0], Some(pred));
    }

    #[test]
    fn filters_on_non_key_columns_do_not_transfer() {
        let mut q = two_table_query(JoinType::Inner);
        q.table_filters[1] = Some(Expr::binary(BinOp::Gt, Expr::col(3, "other"), Expr::int(1)));
        rewrite(&mut q);
        assert!(q.table_filters[0].is_none());
    }
}
