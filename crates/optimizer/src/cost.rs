//! The cost model (§6.2): "a pruning strategy using a cost-model, based on
//! compression aware I/O, CPU and Network transfer costs".
//!
//! Costs are abstract units; only relative comparisons matter. I/O is
//! charged on *encoded* bytes (a projection whose needed columns are RLE'd
//! to nothing scans almost for free — the compression-aware part), CPU on
//! rows touched, network on bytes shipped between nodes.

use crate::catalog::ProjectionMeta;

/// Relative weights.
pub const IO_WEIGHT: f64 = 1.0;
pub const CPU_WEIGHT: f64 = 0.01;
pub const NETWORK_WEIGHT: f64 = 2.0;

/// Total cost of one plan alternative.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    pub io_bytes: f64,
    pub cpu_rows: f64,
    pub network_bytes: f64,
}

impl Cost {
    pub fn total(&self) -> f64 {
        self.io_bytes * IO_WEIGHT + self.cpu_rows * CPU_WEIGHT + self.network_bytes * NETWORK_WEIGHT
    }

    pub fn add(&mut self, other: Cost) {
        self.io_bytes += other.io_bytes;
        self.cpu_rows += other.cpu_rows;
        self.network_bytes += other.network_bytes;
    }
}

/// Cost of scanning `columns` of a projection, with an estimated fraction
/// of containers/blocks surviving pruning and a predicate selectivity.
pub fn scan_cost(
    meta: &ProjectionMeta,
    columns: &[usize],
    prune_fraction: f64,
    selectivity: f64,
) -> Cost {
    let io: u64 = columns
        .iter()
        .map(|&c| meta.column_bytes.get(c).copied().unwrap_or(0))
        .sum();
    Cost {
        io_bytes: io as f64 * prune_fraction.clamp(0.0, 1.0),
        cpu_rows: meta.row_count as f64 * prune_fraction * selectivity,
        network_bytes: 0.0,
    }
}

/// Cost of a hash join: build the smaller side, probe with the larger.
pub fn hash_join_cost(probe_rows: f64, build_rows: f64, build_row_bytes: f64) -> Cost {
    Cost {
        io_bytes: 0.0,
        cpu_rows: probe_rows + build_rows * 1.5,
        network_bytes: 0.0,
    }
    .plus_build_memory_pressure(build_rows * build_row_bytes)
}

impl Cost {
    fn plus_build_memory_pressure(mut self, build_bytes: f64) -> Cost {
        // Externalization risk is charged as extra I/O.
        const BUDGET: f64 = 64.0 * 1024.0 * 1024.0;
        if build_bytes > BUDGET {
            self.io_bytes += build_bytes * 2.0;
        }
        self
    }
}

/// Cost of a merge join over pre-sorted inputs: linear, no build.
pub fn merge_join_cost(left_rows: f64, right_rows: f64) -> Cost {
    Cost {
        io_bytes: 0.0,
        cpu_rows: left_rows + right_rows,
        network_bytes: 0.0,
    }
}

/// Cost of broadcasting `rows` of `row_bytes` to `nodes` nodes.
pub fn broadcast_cost(rows: f64, row_bytes: f64, nodes: usize) -> Cost {
    Cost {
        io_bytes: 0.0,
        cpu_rows: rows,
        network_bytes: rows * row_bytes * nodes.saturating_sub(1) as f64,
    }
}

/// Cost of a hash aggregation.
pub fn group_by_cost(input_rows: f64, groups: f64) -> Cost {
    Cost {
        io_bytes: 0.0,
        cpu_rows: input_rows + groups,
        network_bytes: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_storage::projection::ProjectionDef;
    use vdb_types::{ColumnDef, DataType, TableSchema};

    fn meta(bytes: Vec<u64>, rows: u64) -> ProjectionMeta {
        let schema = TableSchema::new(
            "t",
            (0..bytes.len())
                .map(|i| ColumnDef::new(format!("c{i}"), DataType::Integer))
                .collect(),
        );
        let def = ProjectionDef::super_projection(&schema, "p", &[0], &[0]);
        ProjectionMeta::from_sample(def, rows, bytes, &[])
    }

    #[test]
    fn compression_aware_scan_prefers_smaller_encoding() {
        // Same logical data: projection A stores column 0 in 1MB, B in 10KB
        // (better encoding). B must cost less.
        let a = scan_cost(&meta(vec![1 << 20, 500], 100_000), &[0], 1.0, 1.0);
        let b = scan_cost(&meta(vec![10 << 10, 500], 100_000), &[0], 1.0, 1.0);
        assert!(b.total() < a.total());
    }

    #[test]
    fn pruning_reduces_cost() {
        let m = meta(vec![1 << 20], 100_000);
        let full = scan_cost(&m, &[0], 1.0, 1.0);
        let pruned = scan_cost(&m, &[0], 0.1, 1.0);
        assert!(pruned.total() < full.total() / 5.0);
    }

    #[test]
    fn narrow_scan_cheaper_than_wide() {
        let m = meta(vec![1 << 20, 1 << 20, 1 << 20], 100_000);
        let narrow = scan_cost(&m, &[0], 1.0, 1.0);
        let wide = scan_cost(&m, &[0, 1, 2], 1.0, 1.0);
        assert!(narrow.total() < wide.total());
    }

    #[test]
    fn oversized_build_side_penalized() {
        let small = hash_join_cost(1e6, 1e3, 100.0);
        let huge = hash_join_cost(1e6, 1e7, 100.0);
        assert!(huge.total() > small.total() * 10.0);
    }

    #[test]
    fn broadcast_charges_network() {
        let c = broadcast_cost(1000.0, 50.0, 4);
        assert_eq!(c.network_bytes, 1000.0 * 50.0 * 3.0);
        assert!(c.total() > merge_join_cost(1000.0, 1000.0).total());
    }
}
