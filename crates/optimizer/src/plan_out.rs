//! Planner output: a per-node local plan plus instructions for combining
//! node results — the distribution-aware half of V2Opt (§6.2).

use vdb_exec::aggregate::AggCall;
use vdb_exec::analytic::WindowFunc;
use vdb_exec::plan::PhysicalPlan;
use vdb_types::schema::SortKey;
use vdb_types::Expr;

/// How the cluster must source one FROM table for this plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableAccess {
    /// Scan local segments only (segmented & co-located, or the fact).
    Local,
    /// Gather the table's rows from every node and broadcast to all nodes
    /// before running the local plan (non-co-located build side).
    Broadcast,
    /// Re-segment the table's rows through the exchange on the given TABLE
    /// column indexes (the dim side's join keys). Legal when the other side
    /// of an inner-join edge is hash-segmented on exactly its join columns:
    /// routing dim rows by `hash(keys)` over the same ring lands each row on
    /// the node that stores its matching anchor rows, so the join stays
    /// node-local without shipping the whole table everywhere.
    Resegment { keys: Vec<usize> },
}

/// How per-node result streams combine into the final answer.
#[derive(Debug, Clone)]
pub enum MergeSpec {
    /// Concatenate node outputs, then apply final ORDER BY / LIMIT.
    Concat {
        order_by: Vec<SortKey>,
        limit: Option<(usize, usize)>,
    },
    /// Node outputs are partial-aggregate rows (group cols first): merge
    /// with the given aggregates, project, filter (HAVING), sort, limit.
    ReAggregate {
        group_columns: Vec<usize>,
        merge_aggs: Vec<AggCall>,
        project: Vec<Expr>,
        having: Option<Expr>,
        order_by: Vec<SortKey>,
        limit: Option<(usize, usize)>,
    },
    /// Node outputs are base rows; apply window functions globally, then
    /// project / sort / limit (window queries run their Analytic at the
    /// initiator for global frame correctness).
    WindowThenProject {
        partition_by: Vec<usize>,
        order_by_window: Vec<SortKey>,
        funcs: Vec<WindowFunc>,
        project: Vec<Expr>,
        order_by: Vec<SortKey>,
        limit: Option<(usize, usize)>,
    },
}

/// The planner's result.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// Plan each participating node runs against its local storage.
    pub local: PhysicalPlan,
    /// How node outputs merge at the initiator.
    pub merge: MergeSpec,
    /// Output column names.
    pub output_names: Vec<String>,
    /// Per FROM table: (chosen projection, access mode).
    pub table_access: Vec<(String, TableAccess)>,
    /// True when every scanned projection is replicated: the plan must run
    /// on exactly one node or rows would double-count.
    pub single_node: bool,
}

impl PlannedQuery {
    /// Projections the local plan scans.
    pub fn scanned_projections(&self) -> Vec<String> {
        self.table_access.iter().map(|(p, _)| p.clone()).collect()
    }

    /// Build the merge plan over a materialized union of node outputs.
    pub fn merge_plan(&self, union_rows: Vec<vdb_types::Row>, arity: usize) -> PhysicalPlan {
        let values = PhysicalPlan::Values {
            rows: union_rows,
            arity,
        };
        match &self.merge {
            MergeSpec::Concat { order_by, limit } => finish(values, &[], order_by, *limit),
            MergeSpec::ReAggregate {
                group_columns,
                merge_aggs,
                project,
                having,
                order_by,
                limit,
            } => {
                let mut plan = PhysicalPlan::HashGroupBy {
                    input: Box::new(values),
                    group_columns: group_columns.clone(),
                    aggs: merge_aggs.clone(),
                };
                plan = PhysicalPlan::Project {
                    input: Box::new(plan),
                    exprs: project.clone(),
                };
                if let Some(h) = having {
                    plan = PhysicalPlan::Filter {
                        input: Box::new(plan),
                        predicate: h.clone(),
                    };
                }
                finish(plan, &[], order_by, *limit)
            }
            MergeSpec::WindowThenProject {
                partition_by,
                order_by_window,
                funcs,
                project,
                order_by,
                limit,
            } => {
                let plan = PhysicalPlan::Analytic {
                    input: Box::new(values),
                    partition_by: partition_by.clone(),
                    order_by: order_by_window.clone(),
                    funcs: funcs.clone(),
                    pre_sorted: false,
                };
                let plan = PhysicalPlan::Project {
                    input: Box::new(plan),
                    exprs: project.clone(),
                };
                finish(plan, &[], order_by, *limit)
            }
        }
    }
}

fn finish(
    mut plan: PhysicalPlan,
    _unused: &[()],
    order_by: &[SortKey],
    limit: Option<(usize, usize)>,
) -> PhysicalPlan {
    if !order_by.is_empty() {
        plan = PhysicalPlan::Sort {
            input: Box::new(plan),
            keys: order_by.to_vec(),
        };
    }
    if let Some((n, offset)) = limit {
        plan = PhysicalPlan::Limit {
            input: Box::new(plan),
            limit: n,
            offset,
        };
    }
    plan
}
