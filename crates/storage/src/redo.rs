//! Per-projection WOS redo log (§5.1 durability).
//!
//! The WOS lives in memory, so every WOS mutation is also appended here as
//! one record per file under `{projection}/redo/{seq}.rec`. Writing a whole
//! file per record leans on the simulated-crash model: backends write files
//! atomically, so a crash leaves either a complete record or no record,
//! never a torn one.
//!
//! Records:
//! - `Insert`: a batch of projection-shaped rows committed at one epoch.
//! - `DeleteWos`: a delete mark against a WOS position.
//! - `Checkpoint`: a full image of the WOS (rows, commit epochs, delete
//!   marks). Moveout writes one after draining, then commits it by storing
//!   its sequence number as `wos_start_seq` in the projection manifest.
//!
//! Replay starts at the manifest's `wos_start_seq`. The record *at* that
//! sequence, if a checkpoint, seeds the WOS; any *other* checkpoint found
//! while replaying is debris from a moveout that crashed before its
//! manifest write — its containers never became visible, so applying it
//! would silently drop the moved rows. Those are skipped and the preceding
//! inserts/deletes replay instead, reconstructing the pre-moveout WOS.

use crate::backend::StorageBackend;
use crate::wos::Wos;
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Epoch, Row};

/// One durable WOS mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum RedoRecord {
    Insert {
        epoch: Epoch,
        rows: Vec<Row>,
    },
    DeleteWos {
        position: u64,
        epoch: Epoch,
    },
    /// Full WOS image: `(row, commit_epoch, delete_epoch)` in position
    /// order.
    Checkpoint {
        rows: Vec<(Row, Epoch, Option<Epoch>)>,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE_WOS: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;

fn put_row(w: &mut Writer, row: &Row) {
    w.put_uvarint(row.len() as u64);
    for v in row {
        w.put_value(v);
    }
}

fn get_row(r: &mut Reader) -> DbResult<Row> {
    let n = r.get_uvarint()?;
    (0..n).map(|_| r.get_value()).collect()
}

impl RedoRecord {
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            RedoRecord::Insert { epoch, rows } => {
                w.put_u8(TAG_INSERT);
                w.put_uvarint(epoch.0);
                w.put_uvarint(rows.len() as u64);
                for row in rows {
                    put_row(&mut w, row);
                }
            }
            RedoRecord::DeleteWos { position, epoch } => {
                w.put_u8(TAG_DELETE_WOS);
                w.put_uvarint(*position);
                w.put_uvarint(epoch.0);
            }
            RedoRecord::Checkpoint { rows } => {
                w.put_u8(TAG_CHECKPOINT);
                w.put_uvarint(rows.len() as u64);
                for (row, commit, delete) in rows {
                    w.put_uvarint(commit.0);
                    match delete {
                        Some(d) => {
                            w.put_u8(1);
                            w.put_uvarint(d.0);
                        }
                        None => w.put_u8(0),
                    }
                    put_row(&mut w, row);
                }
            }
        }
        w.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> DbResult<RedoRecord> {
        let mut r = Reader::new(bytes);
        match r.get_u8()? {
            TAG_INSERT => {
                let epoch = Epoch(r.get_uvarint()?);
                let n = r.get_uvarint()?;
                let rows = (0..n).map(|_| get_row(&mut r)).collect::<DbResult<_>>()?;
                Ok(RedoRecord::Insert { epoch, rows })
            }
            TAG_DELETE_WOS => Ok(RedoRecord::DeleteWos {
                position: r.get_uvarint()?,
                epoch: Epoch(r.get_uvarint()?),
            }),
            TAG_CHECKPOINT => {
                let n = r.get_uvarint()?;
                let mut rows = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let commit = Epoch(r.get_uvarint()?);
                    let delete = match r.get_u8()? {
                        0 => None,
                        _ => Some(Epoch(r.get_uvarint()?)),
                    };
                    rows.push((get_row(&mut r)?, commit, delete));
                }
                Ok(RedoRecord::Checkpoint { rows })
            }
            t => Err(DbError::Corrupt(format!("unknown redo record tag {t}"))),
        }
    }
}

/// Append cursor over one projection's redo directory.
#[derive(Debug, Clone)]
pub struct RedoLog {
    projection: String,
    next_seq: u64,
}

impl RedoLog {
    pub fn new(projection: &str) -> RedoLog {
        RedoLog {
            projection: projection.to_string(),
            next_seq: 0,
        }
    }

    fn prefix(projection: &str) -> String {
        format!("{projection}/redo/")
    }

    /// Zero-padded so the backend's sorted file listing is replay order.
    fn path(projection: &str, seq: u64) -> String {
        format!("{projection}/redo/{seq:020}.rec")
    }

    fn seq_of(projection: &str, file: &str) -> Option<u64> {
        file.strip_prefix(&Self::prefix(projection))?
            .strip_suffix(".rec")?
            .parse()
            .ok()
    }

    /// Durably append one record; returns its sequence number.
    pub fn append(&mut self, backend: &dyn StorageBackend, record: &RedoRecord) -> DbResult<u64> {
        let seq = self.next_seq;
        backend.write_file(&Self::path(&self.projection, seq), &record.encode())?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Rebuild the WOS from the log, starting at the manifest's
    /// `wos_start_seq` (see module docs for the stale-checkpoint rule).
    /// Returns the WOS and a cursor positioned past every record on disk.
    pub fn replay(
        backend: &dyn StorageBackend,
        projection: &str,
        start_seq: u64,
    ) -> DbResult<(Wos, RedoLog)> {
        let mut wos = Wos::new();
        let mut next_seq = start_seq;
        for file in backend.list_files(&Self::prefix(projection)) {
            let Some(seq) = Self::seq_of(projection, &file) else {
                continue;
            };
            next_seq = next_seq.max(seq + 1);
            if seq < start_seq {
                continue;
            }
            match RedoRecord::decode(&backend.read_file(&file)?)? {
                RedoRecord::Checkpoint { rows } if seq == start_seq => {
                    for (row, commit, delete) in rows {
                        let pos = wos.insert(row, commit);
                        if let Some(d) = delete {
                            wos.mark_deleted(pos, d);
                        }
                    }
                }
                // Stale checkpoint from a crashed moveout: skip (module
                // docs).
                RedoRecord::Checkpoint { .. } => {}
                RedoRecord::Insert { epoch, rows } => {
                    for row in rows {
                        wos.insert(row, epoch);
                    }
                }
                RedoRecord::DeleteWos { position, epoch } => {
                    if position >= wos.len() as u64 {
                        return Err(DbError::Corrupt(format!(
                            "redo record {seq}: delete targets WOS position {position} \
                             but only {} rows were replayed",
                            wos.len()
                        )));
                    }
                    wos.mark_deleted(position, epoch);
                }
            }
        }
        let log = RedoLog {
            projection: projection.to_string(),
            next_seq,
        };
        Ok((wos, log))
    }

    /// Best-effort removal of records before `start_seq` (they are covered
    /// by the checkpoint at `start_seq`).
    pub fn gc_before(&self, backend: &dyn StorageBackend, start_seq: u64) {
        for file in backend.list_files(&Self::prefix(&self.projection)) {
            if Self::seq_of(&self.projection, &file).is_some_and(|seq| seq < start_seq) {
                let _ = backend.delete_file(&file);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use vdb_types::Value;

    fn row(i: i64) -> Row {
        vec![Value::Integer(i), Value::Varchar(format!("r{i}"))]
    }

    #[test]
    fn records_round_trip() {
        for rec in [
            RedoRecord::Insert {
                epoch: Epoch(7),
                rows: vec![row(1), row(2)],
            },
            RedoRecord::DeleteWos {
                position: 3,
                epoch: Epoch(9),
            },
            RedoRecord::Checkpoint {
                rows: vec![(row(1), Epoch(2), None), (row(5), Epoch(3), Some(Epoch(4)))],
            },
        ] {
            assert_eq!(RedoRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn replay_reconstructs_wos() {
        let backend = MemBackend::new();
        let mut log = RedoLog::new("p");
        log.append(
            &backend,
            &RedoRecord::Insert {
                epoch: Epoch(1),
                rows: vec![row(1), row(2)],
            },
        )
        .unwrap();
        log.append(
            &backend,
            &RedoRecord::DeleteWos {
                position: 0,
                epoch: Epoch(2),
            },
        )
        .unwrap();
        let (wos, log2) = RedoLog::replay(&backend, "p", 0).unwrap();
        assert_eq!(wos.visible_rows(Epoch(1)), vec![row(1), row(2)]);
        assert_eq!(wos.visible_rows(Epoch(2)), vec![row(2)]);
        assert_eq!(log2.next_seq, 2);
    }

    #[test]
    fn stale_checkpoint_is_skipped() {
        // Inserts at seq 0-1, then a checkpoint at seq 2 whose moveout
        // never committed (start_seq still 0): replay must ignore it.
        let backend = MemBackend::new();
        let mut log = RedoLog::new("p");
        log.append(
            &backend,
            &RedoRecord::Insert {
                epoch: Epoch(1),
                rows: vec![row(1)],
            },
        )
        .unwrap();
        log.append(
            &backend,
            &RedoRecord::Insert {
                epoch: Epoch(2),
                rows: vec![row(2)],
            },
        )
        .unwrap();
        log.append(&backend, &RedoRecord::Checkpoint { rows: vec![] })
            .unwrap();
        let (wos, _) = RedoLog::replay(&backend, "p", 0).unwrap();
        assert_eq!(wos.len(), 2, "stale checkpoint must not empty the WOS");
    }

    #[test]
    fn committed_checkpoint_seeds_replay() {
        let backend = MemBackend::new();
        let mut log = RedoLog::new("p");
        log.append(
            &backend,
            &RedoRecord::Insert {
                epoch: Epoch(1),
                rows: vec![row(1)],
            },
        )
        .unwrap();
        let ckpt = log
            .append(
                &backend,
                &RedoRecord::Checkpoint {
                    rows: vec![(row(9), Epoch(3), None)],
                },
            )
            .unwrap();
        log.append(
            &backend,
            &RedoRecord::Insert {
                epoch: Epoch(4),
                rows: vec![row(4)],
            },
        )
        .unwrap();
        let (wos, _) = RedoLog::replay(&backend, "p", ckpt).unwrap();
        assert_eq!(wos.visible_rows(Epoch(10)), vec![row(9), row(4)]);
        log.gc_before(&backend, ckpt);
        let files = backend.list_files("p/redo/");
        assert_eq!(files.len(), 2, "pre-checkpoint record reclaimed");
    }
}
