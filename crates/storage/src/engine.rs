//! Node-level storage engine: the catalog of tables and projection stores
//! on one node of the cluster.
//!
//! Loads fan table rows out to every projection of the table (projecting,
//! prejoining against dimension tables, and segment-filtering happens at
//! the cluster layer; this engine stores whatever rows it is handed).

use crate::backend::StorageBackend;
use crate::partition::PartitionSpec;
use crate::projection::ProjectionDef;
use crate::store::ProjectionStore;
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use vdb_types::{DbError, DbResult, Epoch, Expr, Row, TableSchema, Value};

/// Catalog entry for one logical table.
#[derive(Debug, Clone)]
pub struct TableEntry {
    pub schema: TableSchema,
    /// Table-level `PARTITION BY` expression over table columns (§3.5).
    pub partition_by: Option<Expr>,
}

/// The storage engine of one node.
pub struct StorageEngine {
    backend: Arc<dyn StorageBackend>,
    tables: RwLock<BTreeMap<String, TableEntry>>,
    projections: RwLock<HashMap<String, Arc<RwLock<ProjectionStore>>>>,
    /// table name → projection names anchored on it.
    by_table: RwLock<BTreeMap<String, Vec<String>>>,
    n_local_segments: u32,
}

impl StorageEngine {
    pub fn new(backend: Arc<dyn StorageBackend>, n_local_segments: u32) -> StorageEngine {
        StorageEngine {
            backend,
            tables: RwLock::new(BTreeMap::new()),
            projections: RwLock::new(HashMap::new()),
            by_table: RwLock::new(BTreeMap::new()),
            n_local_segments,
        }
    }

    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    pub fn n_local_segments(&self) -> u32 {
        self.n_local_segments
    }

    // ----- tables ---------------------------------------------------------

    pub fn create_table(&self, schema: TableSchema, partition_by: Option<Expr>) -> DbResult<()> {
        let mut tables = self.tables.write();
        if tables.contains_key(&schema.name) {
            return Err(DbError::AlreadyExists(format!("table {}", schema.name)));
        }
        self.by_table
            .write()
            .insert(schema.name.clone(), Vec::new());
        tables.insert(
            schema.name.clone(),
            TableEntry {
                schema,
                partition_by,
            },
        );
        Ok(())
    }

    pub fn drop_table(&self, name: &str) -> DbResult<()> {
        let entry = self
            .tables
            .write()
            .remove(name)
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))?;
        let _ = entry;
        let projs = self.by_table.write().remove(name).unwrap_or_default();
        let mut map = self.projections.write();
        for p in projs {
            if let Some(store) = map.remove(&p) {
                // Best-effort file cleanup.
                let store = store.read();
                let prefix = format!("{}/", store.def().name);
                for f in self.backend.list_files(&prefix) {
                    let _ = self.backend.delete_file(&f);
                }
            }
        }
        Ok(())
    }

    pub fn table(&self, name: &str) -> DbResult<TableEntry> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))
    }

    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    // ----- projections ----------------------------------------------------

    /// Register a projection. The table's `PARTITION BY` expression is
    /// remapped onto the projection's columns; since partitioning must be
    /// identical across projections for fast bulk delete (§3.5), a
    /// projection that omits a partition column is rejected.
    pub fn create_projection(&self, def: ProjectionDef) -> DbResult<()> {
        let entry = self.table(&def.anchor_table)?;
        for &c in &def.columns[..def.num_anchor_columns()] {
            if c >= entry.schema.arity() {
                return Err(DbError::Binder(format!(
                    "projection {} references column {c} not in table {}",
                    def.name, def.anchor_table
                )));
            }
        }
        if self.projections.read().contains_key(&def.name) {
            return Err(DbError::AlreadyExists(format!("projection {}", def.name)));
        }
        let partition = match &entry.partition_by {
            None => None,
            Some(expr) => {
                let remapped = expr
                    .remap_columns(&|table_col| def.projection_column_of(table_col))
                    .ok_or_else(|| {
                        DbError::Binder(format!(
                            "projection {} must contain the PARTITION BY columns of {}",
                            def.name, def.anchor_table
                        ))
                    })?;
                Some(PartitionSpec::new(remapped))
            }
        };
        // `open` attaches to durable state when the backend already holds
        // this projection's manifest (database reopen replaying the DDL
        // log); on a fresh backend it is identical to `new`.
        let store = ProjectionStore::open(
            def.clone(),
            partition,
            self.n_local_segments,
            self.backend.clone(),
        )?;
        self.by_table
            .write()
            .entry(def.anchor_table.clone())
            .or_default()
            .push(def.name.clone());
        self.projections
            .write()
            .insert(def.name.clone(), Arc::new(RwLock::new(store)));
        Ok(())
    }

    pub fn drop_projection(&self, name: &str) -> DbResult<()> {
        let store = self
            .projections
            .write()
            .remove(name)
            .ok_or_else(|| DbError::NotFound(format!("projection {name}")))?;
        {
            let store = store.read();
            let mut by_table = self.by_table.write();
            if let Some(list) = by_table.get_mut(&store.def().anchor_table) {
                list.retain(|p| p != name);
            }
            let prefix = format!("{name}/");
            for f in self.backend.list_files(&prefix) {
                let _ = self.backend.delete_file(&f);
            }
        }
        Ok(())
    }

    pub fn projection(&self, name: &str) -> DbResult<Arc<RwLock<ProjectionStore>>> {
        self.projections
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("projection {name}")))
    }

    pub fn projection_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.projections.read().keys().cloned().collect();
        v.sort();
        v
    }

    pub fn projections_of(&self, table: &str) -> Vec<String> {
        self.by_table.read().get(table).cloned().unwrap_or_default()
    }

    /// Definitions of all projections anchored on `table`.
    pub fn projection_defs_of(&self, table: &str) -> Vec<ProjectionDef> {
        self.projections_of(table)
            .iter()
            .filter_map(|p| self.projection(p).ok())
            .map(|s| s.read().def().clone())
            .collect()
    }

    /// Does the table have a super projection (required before loading)?
    pub fn has_super_projection(&self, table: &str) -> bool {
        let Ok(entry) = self.table(table) else {
            return false;
        };
        self.projection_defs_of(table)
            .iter()
            .any(|d| d.is_super(entry.schema.arity()))
    }

    // ----- loading --------------------------------------------------------

    /// Store table rows into every projection of the table on this node.
    /// Rows are assumed to already be segment-filtered for this node by the
    /// cluster layer. Prejoin projections look up dimension rows from the
    /// dimension table's projections *on this node* (prejoins require
    /// replicated dimensions, which the designer enforces).
    pub fn insert_table_rows(
        &self,
        table: &str,
        rows: &[Row],
        epoch: Epoch,
        direct_ros: bool,
    ) -> DbResult<()> {
        let entry = self.table(table)?;
        let mut validated: Vec<Row> = Vec::with_capacity(rows.len());
        for row in rows {
            let mut r = row.clone();
            entry.schema.validate_row(&mut r)?;
            validated.push(r);
        }
        for pname in self.projections_of(table) {
            let store = self.projection(&pname)?;
            let def = store.read().def().clone();
            let projected: Vec<Row> = if def.prejoin.is_empty() {
                validated
                    .iter()
                    .map(|r| def.project_row(r))
                    .collect::<DbResult<_>>()?
            } else {
                self.prejoin_rows(&def, &validated, epoch)?
            };
            let mut store = store.write();
            if direct_ros {
                store.insert_direct_ros(projected, epoch)?;
            } else {
                store.insert_wos(projected, epoch)?;
            }
        }
        Ok(())
    }

    /// Store table rows into *one* projection on this node (the cluster
    /// layer routes per-projection row subsets by segmentation + buddy
    /// offset, so it bypasses the all-projections fanout above).
    pub fn insert_projection_rows(
        &self,
        projection: &str,
        table_rows: &[Row],
        epoch: Epoch,
        direct_ros: bool,
    ) -> DbResult<()> {
        let store = self.projection(projection)?;
        let def = store.read().def().clone();
        let entry = self.table(&def.anchor_table)?;
        let mut validated: Vec<Row> = Vec::with_capacity(table_rows.len());
        for row in table_rows {
            let mut r = row.clone();
            entry.schema.validate_row(&mut r)?;
            validated.push(r);
        }
        let projected: Vec<Row> = if def.prejoin.is_empty() {
            validated
                .iter()
                .map(|r| def.project_row(r))
                .collect::<DbResult<_>>()?
        } else {
            self.prejoin_rows(&def, &validated, epoch)?
        };
        let mut store = store.write();
        if direct_ros {
            store.insert_direct_ros(projected, epoch)?;
        } else {
            store.insert_wos(projected, epoch)?;
        }
        Ok(())
    }

    fn prejoin_rows(
        &self,
        def: &ProjectionDef,
        fact_rows: &[Row],
        epoch: Epoch,
    ) -> DbResult<Vec<Row>> {
        // Build a key → row map per dimension from its super projection.
        let mut dim_maps: Vec<HashMap<Value, Row>> = Vec::with_capacity(def.prejoin.len());
        for dim in &def.prejoin {
            let entry = self.table(&dim.dim_table)?;
            let super_def = self
                .projection_defs_of(&dim.dim_table)
                .into_iter()
                .find(|d| d.is_super(entry.schema.arity()) && d.prejoin.is_empty())
                .ok_or_else(|| {
                    DbError::Plan(format!(
                        "prejoin {} needs a super projection on {}",
                        def.name, dim.dim_table
                    ))
                })?;
            let store = self.projection(&super_def.name)?;
            let rows = store.read().visible_rows(epoch)?;
            let mut map = HashMap::with_capacity(rows.len());
            for prow in rows {
                // Reorder the projection row back to table column order.
                let mut table_row = vec![Value::Null; entry.schema.arity()];
                for (pi, &tc) in super_def.columns.iter().enumerate() {
                    table_row[tc] = prow[pi].clone();
                }
                map.insert(table_row[dim.dim_key].clone(), table_row);
            }
            dim_maps.push(map);
        }
        let mut out = Vec::with_capacity(fact_rows.len());
        for fact in fact_rows {
            let mut dims: Vec<&[Value]> = Vec::with_capacity(def.prejoin.len());
            for (dim, map) in def.prejoin.iter().zip(&dim_maps) {
                let key = &fact[dim.fact_key];
                let dim_row = map.get(key).ok_or_else(|| {
                    DbError::Constraint(format!(
                        "prejoin {}: no {} row with key {key}",
                        def.name, dim.dim_table
                    ))
                })?;
                dims.push(dim_row);
            }
            out.push(def.project_row_prejoin(fact, &dims)?);
        }
        Ok(out)
    }

    /// Fast bulk delete of a partition across every projection (§3.5).
    pub fn drop_partition(&self, table: &str, key: &Value, epoch: Epoch) -> DbResult<usize> {
        let mut dropped = 0;
        for pname in self.projections_of(table) {
            let store = self.projection(&pname)?;
            dropped += store.write().drop_partition(key, epoch)?;
        }
        Ok(dropped)
    }

    /// Total ROS bytes across all projections (disk-usage reporting).
    pub fn total_ros_bytes(&self) -> u64 {
        self.projection_names()
            .iter()
            .filter_map(|p| self.projection(p).ok())
            .map(|s| s.read().ros_bytes())
            .sum()
    }

    /// Minimum Last Good Epoch across projections (§5.1: LGE is tracked per
    /// projection; the node's LGE is the minimum).
    pub fn last_good_epoch(&self, current: Epoch) -> Epoch {
        self.projection_names()
            .iter()
            .filter_map(|p| self.projection(p).ok())
            .map(|s| s.read().last_good_epoch(current))
            .min()
            .unwrap_or(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::projection::{PrejoinDim, ProjectionDef, Segmentation};
    use vdb_types::{ColumnDef, DataType, Func, SortKey};

    fn engine() -> StorageEngine {
        StorageEngine::new(Arc::new(MemBackend::new()), 1)
    }

    fn sales_schema() -> TableSchema {
        TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("cust_id", DataType::Integer),
                ColumnDef::new("amt", DataType::Float),
                ColumnDef::new("ts", DataType::Timestamp),
            ],
        )
    }

    #[test]
    fn table_and_projection_lifecycle() {
        let e = engine();
        e.create_table(sales_schema(), None).unwrap();
        assert!(e.create_table(sales_schema(), None).is_err());
        let def = ProjectionDef::super_projection(&sales_schema(), "sales_super", &[3], &[0]);
        e.create_projection(def.clone()).unwrap();
        assert!(e.create_projection(def).is_err());
        assert!(e.has_super_projection("sales"));
        assert_eq!(e.projections_of("sales"), vec!["sales_super".to_string()]);
        e.drop_projection("sales_super").unwrap();
        assert!(!e.has_super_projection("sales"));
        e.drop_table("sales").unwrap();
        assert!(e.table("sales").is_err());
    }

    #[test]
    fn load_fans_out_to_all_projections() {
        let e = engine();
        e.create_table(sales_schema(), None).unwrap();
        e.create_projection(ProjectionDef::super_projection(
            &sales_schema(),
            "sales_super",
            &[3],
            &[0],
        ))
        .unwrap();
        // Narrow projection (cust_id, amt) sorted by cust_id.
        e.create_projection(ProjectionDef {
            name: "sales_cust".into(),
            anchor_table: "sales".into(),
            columns: vec![1, 2],
            column_names: vec!["cust_id".into(), "amt".into()],
            column_types: vec![DataType::Integer, DataType::Float],
            sort_keys: vec![SortKey::asc(0)],
            encodings: vec![vdb_encoding::EncodingType::Auto; 2],
            segmentation: Segmentation::ByExpr(Expr::call(
                Func::Hash,
                vec![Expr::col(0, "cust_id")],
            )),
            prejoin: vec![],
        })
        .unwrap();
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                vec![
                    Value::Integer(i),
                    Value::Integer(i % 3),
                    Value::Float(i as f64),
                    Value::Timestamp(i * 1000),
                ]
            })
            .collect();
        e.insert_table_rows("sales", &rows, Epoch(1), true).unwrap();
        let sup = e.projection("sales_super").unwrap();
        assert_eq!(sup.read().visible_rows(Epoch(1)).unwrap().len(), 10);
        let narrow = e.projection("sales_cust").unwrap();
        let nrows = narrow.read().visible_rows(Epoch(1)).unwrap();
        assert_eq!(nrows.len(), 10);
        assert_eq!(nrows[0].len(), 2, "narrow projection has 2 columns");
    }

    #[test]
    fn partition_by_remaps_and_enforces_coverage() {
        let e = engine();
        let schema = sales_schema();
        let part = Expr::call(Func::YearMonth, vec![Expr::col(3, "ts")]);
        e.create_table(schema.clone(), Some(part)).unwrap();
        e.create_projection(ProjectionDef::super_projection(
            &schema,
            "sales_super",
            &[3],
            &[0],
        ))
        .unwrap();
        // A projection without the ts column must be rejected.
        let bad = ProjectionDef {
            name: "no_ts".into(),
            anchor_table: "sales".into(),
            columns: vec![0, 1],
            column_names: vec!["id".into(), "cust_id".into()],
            column_types: vec![DataType::Integer, DataType::Integer],
            sort_keys: vec![SortKey::asc(0)],
            encodings: vec![vdb_encoding::EncodingType::Auto; 2],
            segmentation: Segmentation::Replicated,
            prejoin: vec![],
        };
        assert!(matches!(e.create_projection(bad), Err(DbError::Binder(_))));
    }

    #[test]
    fn drop_partition_across_projections() {
        let e = engine();
        let schema = sales_schema();
        let part = Expr::call(Func::YearMonth, vec![Expr::col(3, "ts")]);
        e.create_table(schema.clone(), Some(part)).unwrap();
        e.create_projection(ProjectionDef::super_projection(
            &schema,
            "sales_super",
            &[3],
            &[0],
        ))
        .unwrap();
        let mar = vdb_types::date::timestamp_from_civil(2012, 3, 10, 0, 0, 0);
        let apr = vdb_types::date::timestamp_from_civil(2012, 4, 10, 0, 0, 0);
        let rows: Vec<Row> = [mar, apr]
            .iter()
            .enumerate()
            .flat_map(|(i, &ts)| {
                (0..5).map(move |j| {
                    vec![
                        Value::Integer((i * 5 + j) as i64),
                        Value::Integer(0),
                        Value::Float(1.0),
                        Value::Timestamp(ts),
                    ]
                })
            })
            .collect();
        e.insert_table_rows("sales", &rows, Epoch(1), true).unwrap();
        let dropped = e
            .drop_partition("sales", &Value::Integer(201_203), Epoch(1))
            .unwrap();
        assert!(dropped >= 1);
        let sup = e.projection("sales_super").unwrap();
        let left = sup.read().visible_rows(Epoch(1)).unwrap();
        assert_eq!(left.len(), 5, "only April rows remain");
    }

    #[test]
    fn prejoin_load_denormalizes() {
        let e = engine();
        // Dimension: customer(cid, name) — replicated super projection.
        let cust = TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("cid", DataType::Integer),
                ColumnDef::new("name", DataType::Varchar),
            ],
        );
        e.create_table(cust.clone(), None).unwrap();
        e.create_projection(ProjectionDef::super_projection(
            &cust,
            "cust_super",
            &[0],
            &[],
        ))
        .unwrap();
        e.insert_table_rows(
            "customer",
            &[
                vec![Value::Integer(1), Value::Varchar("ann".into())],
                vec![Value::Integer(2), Value::Varchar("bob".into())],
            ],
            Epoch(1),
            true,
        )
        .unwrap();
        // Fact with a prejoin projection.
        e.create_table(sales_schema(), None).unwrap();
        e.create_projection(ProjectionDef::super_projection(
            &sales_schema(),
            "sales_super",
            &[0],
            &[0],
        ))
        .unwrap();
        e.create_projection(ProjectionDef {
            name: "sales_prejoin".into(),
            anchor_table: "sales".into(),
            columns: vec![0, 1, 2, 3],
            column_names: vec![
                "id".into(),
                "cust_id".into(),
                "amt".into(),
                "ts".into(),
                "name".into(),
            ],
            column_types: vec![
                DataType::Integer,
                DataType::Integer,
                DataType::Float,
                DataType::Timestamp,
                DataType::Varchar,
            ],
            sort_keys: vec![SortKey::asc(0)],
            encodings: vec![vdb_encoding::EncodingType::Auto; 5],
            segmentation: Segmentation::Replicated,
            prejoin: vec![PrejoinDim {
                dim_table: "customer".into(),
                fact_key: 1,
                dim_key: 0,
                dim_columns: vec![1],
            }],
        })
        .unwrap();
        e.insert_table_rows(
            "sales",
            &[vec![
                Value::Integer(100),
                Value::Integer(2),
                Value::Float(9.5),
                Value::Timestamp(0),
            ]],
            Epoch(2),
            true,
        )
        .unwrap();
        let pj = e.projection("sales_prejoin").unwrap();
        let rows = pj.read().visible_rows(Epoch(2)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][4], Value::Varchar("bob".into()));
        // A fact row with a dangling key is rejected.
        let err = e.insert_table_rows(
            "sales",
            &[vec![
                Value::Integer(101),
                Value::Integer(99),
                Value::Float(1.0),
                Value::Timestamp(0),
            ]],
            Epoch(3),
            true,
        );
        assert!(matches!(err, Err(DbError::Constraint(_))));
    }
}
