//! `vdb-storage` — the physical storage layer (§3 and §4 of the paper).
//!
//! Table data is physically organized into **projections**: sorted subsets
//! of a table's attributes ([`projection`]). Each projection's data lives in
//! immutable **ROS containers** ([`ros`]) — a pair of files per column
//! (data plus position index) on a [`backend`] — plus an in-memory, unsorted,
//! unencoded **WOS** ([`wos`]) that buffers trickle loads. Deletes never
//! modify storage: they append to **delete vectors** ([`delete_vector`]).
//! The **tuple mover** ([`tuple_mover`]) runs moveout (WOS→ROS) and
//! strata-based mergeout, preserving `PARTITION BY` ([`partition`]) and
//! local-segment boundaries. A node's projections are collected in a
//! [`engine::StorageEngine`].
//!
//! Durability (§5.1): the volatile WOS is backed by a per-projection
//! **redo log** ([`redo`]), the live container set by a per-projection
//! manifest committed with whole-file writes, and crash windows are
//! testable through deterministic **fault injection** ([`fault`]).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod backend;
pub mod delete_vector;
pub mod engine;
pub mod fault;
pub mod layout;
pub mod partition;
pub mod projection;
pub mod redo;
pub mod ros;
pub mod store;
pub mod tuple_mover;
pub mod wos;

pub use backend::{FsBackend, MemBackend, StorageBackend};
pub use delete_vector::DeleteVector;
pub use engine::StorageEngine;
pub use projection::{ProjectionDef, Segmentation};
pub use redo::{RedoLog, RedoRecord};
pub use ros::{ContainerId, RosContainer};
pub use store::{ContainerPin, ProjectionStore, RowLocation, SnapshotScan};
pub use tuple_mover::{TupleMover, TupleMoverConfig};
