//! Delete vectors (§3.7.1).
//!
//! "Data in Vertica is never modified in place. When a tuple is deleted or
//! updated from either the WOS or ROS, Vertica creates a delete vector — a
//! list of positions of rows that have been deleted", each paired with the
//! epoch it was deleted at (§5). Delete vectors are stored like user data:
//! first in a DVWOS in memory, then moved to DVROS containers on disk by
//! the tuple mover "using efficient compression mechanisms" — here,
//! delta-varint positions plus RLE-style epoch runs.

use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbResult, Epoch};

/// Deleted positions (sorted, deduplicated) of one target store (a ROS
/// container or the WOS), each with its delete epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeleteVector {
    /// Sorted `(position, delete_epoch)` pairs.
    entries: Vec<(u64, Epoch)>,
}

impl DeleteVector {
    pub fn new() -> DeleteVector {
        DeleteVector::default()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Record a deletion. Re-deleting the same position keeps the earliest
    /// epoch (a row can only die once; later marks are no-ops from replayed
    /// DML).
    pub fn mark(&mut self, position: u64, epoch: Epoch) {
        match self.entries.binary_search_by_key(&position, |e| e.0) {
            Ok(_) => {}
            Err(i) => self.entries.insert(i, (position, epoch)),
        }
    }

    /// Bulk-mark sorted positions at one epoch (the common DELETE path).
    pub fn mark_all(&mut self, positions: &[u64], epoch: Epoch) {
        for &p in positions {
            self.mark(p, epoch);
        }
    }

    /// Is `position` deleted as of snapshot `epoch`? (A row deleted at
    /// epoch E is invisible to queries with snapshot ≥ E.)
    pub fn is_deleted(&self, position: u64, as_of: Epoch) -> bool {
        match self.entries.binary_search_by_key(&position, |e| e.0) {
            Ok(i) => self.entries[i].1 <= as_of,
            Err(_) => false,
        }
    }

    /// Delete epoch of a position, if marked.
    pub fn delete_epoch(&self, position: u64) -> Option<Epoch> {
        self.entries
            .binary_search_by_key(&position, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Iterate `(position, epoch)` pairs in position order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Epoch)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of rows deleted at or before `ahm` — candidates for purge.
    pub fn purgeable(&self, ahm: Epoch) -> usize {
        self.entries.iter().filter(|(_, e)| *e <= ahm).count()
    }

    /// Serialize (DVROS format): delta-varint positions + epoch values.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_uvarint(self.entries.len() as u64);
        let mut prev_pos = 0u64;
        for &(p, _) in &self.entries {
            w.put_uvarint(p - prev_pos);
            prev_pos = p;
        }
        // Epochs arrive in bursts (one DELETE statement marks many rows at
        // one epoch): run-length encode them.
        let mut i = 0;
        while i < self.entries.len() {
            let e = self.entries[i].1;
            let mut run = 1u64;
            while i + (run as usize) < self.entries.len() && self.entries[i + run as usize].1 == e {
                run += 1;
            }
            w.put_uvarint(run);
            w.put_uvarint(e.0);
            i += run as usize;
        }
        w.into_bytes()
    }

    pub fn decode(bytes: &[u8]) -> DbResult<DeleteVector> {
        let mut r = Reader::new(bytes);
        let n = r.get_uvarint()? as usize;
        let mut positions = Vec::with_capacity(n);
        let mut pos = 0u64;
        for i in 0..n {
            let d = r.get_uvarint()?;
            pos = if i == 0 { d } else { pos + d };
            positions.push(pos);
        }
        let mut entries = Vec::with_capacity(n);
        let mut i = 0usize;
        while i < n {
            let run = r.get_uvarint()? as usize;
            let e = Epoch(r.get_uvarint()?);
            for _ in 0..run {
                if i >= n {
                    return Err(vdb_types::DbError::Corrupt(
                        "delete vector epoch runs exceed positions".into(),
                    ));
                }
                entries.push((positions[i], e));
                i += 1;
            }
        }
        if i != n {
            return Err(vdb_types::DbError::Corrupt(
                "delete vector epoch runs short of positions".into(),
            ));
        }
        Ok(DeleteVector { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_visibility() {
        let mut dv = DeleteVector::new();
        dv.mark(10, Epoch(5));
        dv.mark(3, Epoch(7));
        assert!(dv.is_deleted(10, Epoch(5)));
        assert!(dv.is_deleted(10, Epoch(9)));
        assert!(
            !dv.is_deleted(10, Epoch(4)),
            "historical query sees the row"
        );
        assert!(!dv.is_deleted(4, Epoch(100)));
        assert_eq!(dv.delete_epoch(3), Some(Epoch(7)));
        assert_eq!(dv.len(), 2);
    }

    #[test]
    fn double_delete_keeps_first_epoch() {
        let mut dv = DeleteVector::new();
        dv.mark(1, Epoch(3));
        dv.mark(1, Epoch(9));
        assert_eq!(dv.delete_epoch(1), Some(Epoch(3)));
        assert_eq!(dv.len(), 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut dv = DeleteVector::new();
        // One bulk delete at epoch 4, another at epoch 9.
        dv.mark_all(&[5, 6, 7, 100, 10_000], Epoch(4));
        dv.mark_all(&[8, 200], Epoch(9));
        let bytes = dv.encode();
        assert_eq!(DeleteVector::decode(&bytes).unwrap(), dv);
    }

    #[test]
    fn bulk_deletes_compress_well() {
        // 10k consecutive positions deleted at one epoch: ~1 byte each for
        // the position delta, ~4 bytes total for the epoch run.
        let mut dv = DeleteVector::new();
        let positions: Vec<u64> = (0..10_000).collect();
        dv.mark_all(&positions, Epoch(2));
        let bytes = dv.encode();
        assert!(bytes.len() < 11_000, "dv bytes = {}", bytes.len());
        assert_eq!(DeleteVector::decode(&bytes).unwrap().len(), 10_000);
    }

    #[test]
    fn purgeable_counts_ancient_deletes() {
        let mut dv = DeleteVector::new();
        dv.mark(1, Epoch(2));
        dv.mark(2, Epoch(5));
        dv.mark(3, Epoch(9));
        assert_eq!(dv.purgeable(Epoch(5)), 2);
        assert_eq!(dv.purgeable(Epoch(1)), 0);
    }

    #[test]
    fn empty_round_trip() {
        let dv = DeleteVector::new();
        assert_eq!(DeleteVector::decode(&dv.encode()).unwrap(), dv);
        assert!(!dv.is_deleted(0, Epoch(100)));
    }

    #[test]
    fn corrupt_rejected() {
        let mut dv = DeleteVector::new();
        dv.mark_all(&[1, 2, 3], Epoch(1));
        let bytes = dv.encode();
        assert!(DeleteVector::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
