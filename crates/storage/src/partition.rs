//! Intra-node partitioning (§3.5): `CREATE TABLE ... PARTITION BY <expr>`.
//!
//! "This instructs Vertica to maintain physical storage so that all tuples
//! within a ROS container evaluate to the same distinct value of the
//! partition expression." Partitioning is a *table*-level property (bulk
//! delete must drop the same files on every projection), most often a
//! month/year extraction.

use std::collections::BTreeMap;
use vdb_types::{DbResult, Expr, Row, Value};

/// A table's partition clause: a bound expression over the *table* row.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    pub expr: Expr,
}

impl PartitionSpec {
    pub fn new(expr: Expr) -> PartitionSpec {
        PartitionSpec { expr }
    }

    /// The canonical month/year partition key over a timestamp column
    /// (Figure 2's `EXTRACT MONTH, YEAR FROM TIMESTAMP`).
    pub fn by_year_month(ts_column: usize, name: &str) -> PartitionSpec {
        PartitionSpec::new(Expr::call(
            vdb_types::Func::YearMonth,
            vec![Expr::col(ts_column, name)],
        ))
    }

    /// Evaluate the partition key for a table row.
    pub fn key_of(&self, row: &[Value]) -> DbResult<Value> {
        self.expr.eval(row)
    }

    /// Group rows by partition key (deterministic BTreeMap ordering keeps
    /// container creation stable across nodes).
    pub fn split<'a>(
        &self,
        rows: impl IntoIterator<Item = Row> + 'a,
    ) -> DbResult<BTreeMap<Value, Vec<Row>>> {
        let mut out: BTreeMap<Value, Vec<Row>> = BTreeMap::new();
        for row in rows {
            let key = self.key_of(&row)?;
            out.entry(key).or_default().push(row);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_types::date::timestamp_from_civil;

    fn row(ts: i64) -> Row {
        vec![Value::Integer(0), Value::Timestamp(ts)]
    }

    #[test]
    fn year_month_keys_match_figure2() {
        let spec = PartitionSpec::by_year_month(1, "ts");
        let march = timestamp_from_civil(2012, 3, 15, 0, 0, 0);
        let june = timestamp_from_civil(2012, 6, 1, 12, 0, 0);
        assert_eq!(spec.key_of(&row(march)).unwrap(), Value::Integer(201_203));
        assert_eq!(spec.key_of(&row(june)).unwrap(), Value::Integer(201_206));
    }

    #[test]
    fn split_groups_by_distinct_key() {
        let spec = PartitionSpec::by_year_month(1, "ts");
        let rows: Vec<Row> = (3..=6)
            .flat_map(|m| (0..4).map(move |d| row(timestamp_from_civil(2012, m, 1 + d, 0, 0, 0))))
            .collect();
        let groups = spec.split(rows).unwrap();
        // Figure 2: four partition keys 3/2012..6/2012.
        assert_eq!(groups.len(), 4);
        for (_, rows) in groups {
            assert_eq!(rows.len(), 4);
        }
    }

    #[test]
    fn non_date_partition_expressions_work() {
        // PARTITION BY region_id % 4
        let spec = PartitionSpec::new(Expr::binary(
            vdb_types::BinOp::Mod,
            Expr::col(0, "region_id"),
            Expr::int(4),
        ));
        let groups = spec
            .split((0..20).map(|i| vec![Value::Integer(i), Value::Timestamp(0)]))
            .unwrap();
        assert_eq!(groups.len(), 4);
    }
}
