//! Projection definitions (§3.1–§3.3, §3.6).
//!
//! A projection is a sorted subset of a table's attributes with its own
//! sort order, per-column encodings and segmentation clause. Every table
//! needs at least one **super projection** containing every column (Vertica
//! dropped C-Store's join indexes, §3.2). **Prejoin projections** (§3.3)
//! denormalize N:1 joins with dimension tables at load time.

use vdb_encoding::EncodingType;
use vdb_types::schema::{SortDirection, SortKey};
use vdb_types::{DbError, DbResult, Expr, Row, TableSchema, Value};

/// How a projection's tuples are distributed across nodes (§3.6).
#[derive(Debug, Clone, PartialEq)]
pub enum Segmentation {
    /// Every node stores a full copy (small dimension tables).
    Replicated,
    /// `SEGMENTED BY <expr>`: the integral expression (over the projection's
    /// columns) maps each tuple onto the ring; nodes own contiguous ranges.
    ByExpr(Expr),
}

impl Segmentation {
    /// The canonical choice: `HASH(cols...)` over high-cardinality columns.
    pub fn hash_of(columns: &[(usize, &str)]) -> Segmentation {
        Segmentation::ByExpr(Expr::call(
            vdb_types::Func::Hash,
            columns
                .iter()
                .map(|(i, n)| Expr::col(*i, (*n).to_string()))
                .collect(),
        ))
    }
}

/// One dimension-table join of a prejoin projection (§3.3): rows of the
/// anchor (fact) table are joined N:1 against the dimension at load time.
#[derive(Debug, Clone, PartialEq)]
pub struct PrejoinDim {
    pub dim_table: String,
    /// Column index in the *anchor table* holding the foreign key.
    pub fact_key: usize,
    /// Column index in the *dimension table* holding the join key.
    pub dim_key: usize,
    /// Dimension columns materialized into the projection, as indexes into
    /// the dimension table schema.
    pub dim_columns: Vec<usize>,
}

/// Definition of a physical projection.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectionDef {
    pub name: String,
    /// The anchoring logical table.
    pub anchor_table: String,
    /// Anchor-table column indexes stored by this projection, in projection
    /// column order. For prejoin projections these come first, followed by
    /// the dimension columns of each `prejoin` entry in order.
    pub columns: Vec<usize>,
    /// Display names of the projection columns (anchor + dimension).
    pub column_names: Vec<String>,
    /// Data types of the projection columns.
    pub column_types: Vec<vdb_types::DataType>,
    /// Sort order, as indexes into the *projection's* columns.
    pub sort_keys: Vec<SortKey>,
    /// Per-projection-column encodings.
    pub encodings: Vec<EncodingType>,
    /// Cluster distribution.
    pub segmentation: Segmentation,
    /// Prejoined dimensions (empty for ordinary projections).
    pub prejoin: Vec<PrejoinDim>,
}

impl ProjectionDef {
    /// Build a super projection over every column of `schema`, sorted by
    /// `sort_columns` (table column indexes), hash-segmented by
    /// `seg_columns` (table column indexes), with Auto encodings.
    pub fn super_projection(
        schema: &TableSchema,
        name: impl Into<String>,
        sort_columns: &[usize],
        seg_columns: &[usize],
    ) -> ProjectionDef {
        let columns: Vec<usize> = (0..schema.arity()).collect();
        let column_names = schema.columns.iter().map(|c| c.name.clone()).collect();
        let column_types = schema.columns.iter().map(|c| c.data_type).collect();
        let sort_keys = sort_columns.iter().map(|&c| SortKey::asc(c)).collect();
        let segmentation = if seg_columns.is_empty() {
            Segmentation::Replicated
        } else {
            Segmentation::hash_of(
                &seg_columns
                    .iter()
                    .map(|&c| (c, schema.columns[c].name.as_str()))
                    .collect::<Vec<_>>(),
            )
        };
        ProjectionDef {
            name: name.into(),
            anchor_table: schema.name.clone(),
            columns,
            column_names,
            column_types,
            sort_keys,
            encodings: vec![EncodingType::Auto; schema.arity()],
            segmentation,
            prejoin: Vec::new(),
        }
    }

    /// Is this a super projection of a table with `arity` columns?
    /// (Prejoin projections qualify if they cover every anchor column.)
    pub fn is_super(&self, arity: usize) -> bool {
        let mut covered: Vec<usize> = self
            .columns
            .iter()
            .take(self.num_anchor_columns())
            .copied()
            .collect();
        covered.sort_unstable();
        covered.dedup();
        covered.len() == arity
    }

    /// Number of leading projection columns sourced from the anchor table.
    /// (`columns` indexes only anchor columns; dimension columns of prejoin
    /// projections follow them and are described by `prejoin`.)
    pub fn num_anchor_columns(&self) -> usize {
        self.columns.len()
    }

    pub fn arity(&self) -> usize {
        self.column_names.len()
    }

    /// Map an anchor-table column index to this projection's column index.
    pub fn projection_column_of(&self, table_column: usize) -> Option<usize> {
        self.columns[..self.num_anchor_columns()]
            .iter()
            .position(|&c| c == table_column)
    }

    /// Project an anchor-table row into this projection's column order
    /// (non-prejoin projections only).
    pub fn project_row(&self, table_row: &[Value]) -> DbResult<Row> {
        if !self.prejoin.is_empty() {
            return Err(DbError::Execution(
                "prejoin projections need dimension rows; use project_row_prejoin".into(),
            ));
        }
        self.columns
            .iter()
            .map(|&c| {
                table_row.get(c).cloned().ok_or_else(|| {
                    DbError::Execution(format!(
                        "projection {} references column {c} beyond row arity {}",
                        self.name,
                        table_row.len()
                    ))
                })
            })
            .collect()
    }

    /// Project a fact row joined with pre-looked-up dimension rows (one per
    /// prejoin entry, in order) into projection column order.
    pub fn project_row_prejoin(&self, fact_row: &[Value], dim_rows: &[&[Value]]) -> DbResult<Row> {
        if dim_rows.len() != self.prejoin.len() {
            return Err(DbError::Execution(format!(
                "projection {} expects {} dimension rows, got {}",
                self.name,
                self.prejoin.len(),
                dim_rows.len()
            )));
        }
        let mut out = Vec::with_capacity(self.arity());
        for &c in &self.columns[..self.num_anchor_columns()] {
            out.push(fact_row[c].clone());
        }
        for (dim, row) in self.prejoin.iter().zip(dim_rows) {
            for &c in &dim.dim_columns {
                out.push(row[c].clone());
            }
        }
        Ok(out)
    }

    /// Sort a batch of projection-shaped rows by the projection sort order.
    pub fn sort_rows(&self, rows: &mut [Row]) {
        let keys = &self.sort_keys;
        rows.sort_by(|a, b| vdb_types::schema::compare_rows(a, b, keys));
    }

    /// Evaluate the segmentation expression for a projection-shaped row.
    /// Returns `None` for replicated projections.
    pub fn segment_value(&self, row: &[Value]) -> DbResult<Option<u64>> {
        match &self.segmentation {
            Segmentation::Replicated => Ok(None),
            Segmentation::ByExpr(e) => {
                let v = e.eval(row)?;
                let i = v.as_i64().ok_or_else(|| {
                    DbError::Execution(format!(
                        "segmentation expression of {} must be integral, got {v}",
                        self.name
                    ))
                })?;
                Ok(Some(i as u64))
            }
        }
    }

    /// Leading sort columns (projection column indexes) — the prefix the
    /// optimizer matches predicates and group-bys against.
    pub fn sort_prefix(&self) -> Vec<usize> {
        self.sort_keys.iter().map(|k| k.column).collect()
    }

    /// Does the projection's sort order start with `columns` (in any order
    /// within the prefix)? Used for merge-join and pipelined-groupby
    /// eligibility.
    pub fn sorted_by_prefix(&self, columns: &[usize]) -> bool {
        if columns.len() > self.sort_keys.len() {
            return false;
        }
        let prefix: Vec<usize> = self.sort_keys[..columns.len()]
            .iter()
            .map(|k| k.column)
            .collect();
        let mut a = prefix.clone();
        let mut b = columns.to_vec();
        a.sort_unstable();
        b.sort_unstable();
        a == b
    }

    /// Human-readable DDL-ish description (EXPLAIN / Database Designer).
    pub fn describe(&self) -> String {
        let sort: Vec<String> = self
            .sort_keys
            .iter()
            .map(|k| {
                format!(
                    "{}{}",
                    self.column_names[k.column],
                    match k.direction {
                        SortDirection::Asc => "",
                        SortDirection::Desc => " DESC",
                    }
                )
            })
            .collect();
        let seg = match &self.segmentation {
            Segmentation::Replicated => "UNSEGMENTED ALL NODES".to_string(),
            Segmentation::ByExpr(e) => format!("SEGMENTED BY {e}"),
        };
        format!(
            "PROJECTION {} ({}) ORDER BY {} {}",
            self.name,
            self.column_names.join(", "),
            sort.join(", "),
            seg
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_types::{ColumnDef, DataType};

    fn sales_schema() -> TableSchema {
        TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("sale_id", DataType::Integer),
                ColumnDef::new("cust", DataType::Varchar),
                ColumnDef::new("price", DataType::Float),
                ColumnDef::new("date", DataType::Timestamp),
            ],
        )
    }

    #[test]
    fn super_projection_covers_all_columns() {
        let p = ProjectionDef::super_projection(&sales_schema(), "sales_super", &[3], &[0]);
        assert!(p.is_super(4));
        assert_eq!(p.arity(), 4);
        assert_eq!(p.sort_prefix(), vec![3]);
        assert!(matches!(p.segmentation, Segmentation::ByExpr(_)));
    }

    #[test]
    fn narrow_projection_figure1() {
        // Figure 1's second projection: (cust, price) sorted by cust,
        // segmented by HASH(cust).
        let p = ProjectionDef {
            name: "sales_cust_price".into(),
            anchor_table: "sales".into(),
            columns: vec![1, 2],
            column_names: vec!["cust".into(), "price".into()],
            column_types: vec![DataType::Varchar, DataType::Float],
            sort_keys: vec![SortKey::asc(0)],
            encodings: vec![EncodingType::Auto, EncodingType::Auto],
            segmentation: Segmentation::hash_of(&[(0, "cust")]),
            prejoin: vec![],
        };
        assert!(!p.is_super(4));
        let row = vec![
            Value::Integer(7),
            Value::Varchar("ann".into()),
            Value::Float(9.5),
            Value::Timestamp(0),
        ];
        assert_eq!(
            p.project_row(&row).unwrap(),
            vec![Value::Varchar("ann".into()), Value::Float(9.5)]
        );
        assert_eq!(p.projection_column_of(2), Some(1));
        assert_eq!(p.projection_column_of(0), None);
    }

    #[test]
    fn segment_value_is_deterministic() {
        let p = ProjectionDef::super_projection(&sales_schema(), "s", &[0], &[0]);
        let row = vec![
            Value::Integer(42),
            Value::Varchar("x".into()),
            Value::Float(0.0),
            Value::Timestamp(0),
        ];
        let a = p.segment_value(&row).unwrap().unwrap();
        let b = p.segment_value(&row).unwrap().unwrap();
        assert_eq!(a, b);
        let replicated = ProjectionDef::super_projection(&sales_schema(), "r", &[0], &[]);
        assert_eq!(replicated.segment_value(&row).unwrap(), None);
    }

    #[test]
    fn sort_rows_by_order() {
        let p = ProjectionDef::super_projection(&sales_schema(), "s", &[3, 0], &[0]);
        let mut rows = vec![
            vec![
                Value::Integer(2),
                Value::Varchar("b".into()),
                Value::Float(1.0),
                Value::Timestamp(100),
            ],
            vec![
                Value::Integer(1),
                Value::Varchar("a".into()),
                Value::Float(2.0),
                Value::Timestamp(100),
            ],
            vec![
                Value::Integer(3),
                Value::Varchar("c".into()),
                Value::Float(3.0),
                Value::Timestamp(50),
            ],
        ];
        p.sort_rows(&mut rows);
        assert_eq!(rows[0][3], Value::Timestamp(50));
        assert_eq!(rows[1][0], Value::Integer(1));
        assert_eq!(rows[2][0], Value::Integer(2));
    }

    #[test]
    fn sorted_by_prefix_matching() {
        let p = ProjectionDef::super_projection(&sales_schema(), "s", &[3, 0, 1], &[0]);
        assert!(p.sorted_by_prefix(&[3]));
        assert!(p.sorted_by_prefix(&[0, 3]), "prefix is order-insensitive");
        assert!(!p.sorted_by_prefix(&[0]));
        assert!(!p.sorted_by_prefix(&[3, 0, 1, 2]));
    }

    #[test]
    fn prejoin_projection_rows() {
        // Fact sales(sale_id, cust_id, price) prejoined with
        // customer(cust_id, name, state).
        let p = ProjectionDef {
            name: "sales_prejoin".into(),
            anchor_table: "sales".into(),
            columns: vec![0, 1, 2],
            column_names: vec![
                "sale_id".into(),
                "cust_id".into(),
                "price".into(),
                "name".into(),
                "state".into(),
            ],
            column_types: vec![
                DataType::Integer,
                DataType::Integer,
                DataType::Float,
                DataType::Varchar,
                DataType::Varchar,
            ],
            sort_keys: vec![SortKey::asc(0)],
            encodings: vec![EncodingType::Auto; 5],
            segmentation: Segmentation::Replicated,
            prejoin: vec![PrejoinDim {
                dim_table: "customer".into(),
                fact_key: 1,
                dim_key: 0,
                dim_columns: vec![1, 2],
            }],
        };
        assert_eq!(p.num_anchor_columns(), 3);
        assert!(p.is_super(3));
        let fact = vec![Value::Integer(1), Value::Integer(77), Value::Float(5.0)];
        let dim = vec![
            Value::Integer(77),
            Value::Varchar("ann".into()),
            Value::Varchar("MA".into()),
        ];
        let row = p.project_row_prejoin(&fact, &[&dim]).unwrap();
        assert_eq!(row.len(), 5);
        assert_eq!(row[3], Value::Varchar("ann".into()));
        assert!(p.project_row(&fact).is_err(), "prejoin needs dim rows");
    }

    #[test]
    fn describe_is_ddl_like() {
        let p = ProjectionDef::super_projection(&sales_schema(), "sales_super", &[3], &[0]);
        let d = p.describe();
        assert!(d.contains("PROJECTION sales_super"));
        assert!(d.contains("ORDER BY date"));
        assert!(d.contains("SEGMENTED BY HASH(sale_id)"));
    }
}
