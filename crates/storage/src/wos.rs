//! Write Optimized Store (§3.7).
//!
//! "Data in the WOS is solely in memory ... The WOS's primary purpose is to
//! buffer small data inserts, deletes and updates so that writes to
//! physical structures contain a sufficient number of rows to amortize the
//! cost of the writing. ... Data is not encoded or compressed when it is in
//! the WOS. However, it is segmented according to the projection's
//! segmentation expression." The paper notes the WOS flip-flopped between
//! row and column orientation with no measurable difference; we use row
//! orientation (the engineering-simplicity choice it landed on).

use crate::delete_vector::DeleteVector;
use vdb_types::{DbResult, Epoch, Row, Value};

/// One buffered row with its commit epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct WosRow {
    pub epoch: Epoch,
    pub row: Row,
}

/// The in-memory write buffer for one projection on one node. Rows keep
/// stable positions (indexes) until moveout so delete vectors can target
/// them — the DVWOS of §3.7.1.
#[derive(Debug, Default)]
pub struct Wos {
    rows: Vec<WosRow>,
    deletes: DeleteVector,
    approx_bytes: usize,
}

impl Wos {
    pub fn new() -> Wos {
        Wos::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rough memory footprint, used by the tuple mover's moveout trigger.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    pub fn insert(&mut self, row: Row, epoch: Epoch) -> u64 {
        self.approx_bytes += approx_row_bytes(&row);
        self.rows.push(WosRow { epoch, row });
        (self.rows.len() - 1) as u64
    }

    /// Mark a WOS position deleted (DVWOS).
    pub fn mark_deleted(&mut self, position: u64, epoch: Epoch) {
        self.deletes.mark(position, epoch);
    }

    pub fn deletes(&self) -> &DeleteVector {
        &self.deletes
    }

    /// Rows visible at `snapshot`: committed at or before it and not
    /// deleted at or before it.
    pub fn visible_rows(&self, snapshot: Epoch) -> Vec<Row> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(i, wr)| wr.epoch <= snapshot && !self.deletes.is_deleted(*i as u64, snapshot))
            .map(|(_, wr)| wr.row.clone())
            .collect()
    }

    /// Iterate all rows with epochs and delete marks (for moveout, which
    /// must carry history forward).
    pub fn all_rows(&self) -> impl Iterator<Item = (u64, &WosRow, Option<Epoch>)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, wr)| (i as u64, wr, self.deletes.delete_epoch(i as u64)))
    }

    /// The lowest epoch present in the WOS (rows not yet moved out). The
    /// projection's Last Good Epoch is just below this (§5.1).
    pub fn min_epoch(&self) -> Option<Epoch> {
        self.rows.iter().map(|wr| wr.epoch).min()
    }

    /// Drain rows committed at or before `up_to` for moveout. Returns
    /// `(row, commit_epoch, delete_epoch)` triples; remaining rows keep
    /// fresh positions and their delete marks are re-based.
    pub fn drain_up_to(&mut self, up_to: Epoch) -> DbResult<Vec<(Row, Epoch, Option<Epoch>)>> {
        crate::fault::fire(crate::fault::WOS_BEFORE_DRAIN)?;
        let mut moved = Vec::new();
        let mut kept_rows = Vec::new();
        let mut kept_deletes = DeleteVector::new();
        for (i, wr) in self.rows.drain(..).enumerate() {
            let del = self.deletes.delete_epoch(i as u64);
            if wr.epoch <= up_to {
                moved.push((wr.row, wr.epoch, del));
            } else {
                if let Some(d) = del {
                    kept_deletes.mark(kept_rows.len() as u64, d);
                }
                kept_rows.push(wr);
            }
        }
        self.rows = kept_rows;
        self.deletes = kept_deletes;
        self.approx_bytes = self.rows.iter().map(|wr| approx_row_bytes(&wr.row)).sum();
        Ok(moved)
    }
}

/// Rough in-memory size of a row (uncompressed, per §3.7).
pub fn approx_row_bytes(row: &[Value]) -> usize {
    row.iter()
        .map(|v| match v {
            Value::Null => 1,
            Value::Integer(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Boolean(_) => 1,
            Value::Varchar(s) => 24 + s.len(),
        })
        .sum::<usize>()
        + 16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(i: i64) -> Row {
        vec![Value::Integer(i)]
    }

    #[test]
    fn insert_and_visibility() {
        let mut wos = Wos::new();
        wos.insert(row(1), Epoch(1));
        wos.insert(row(2), Epoch(2));
        wos.insert(row(3), Epoch(3));
        assert_eq!(wos.visible_rows(Epoch(2)), vec![row(1), row(2)]);
        assert_eq!(wos.visible_rows(Epoch(0)), Vec::<Row>::new());
        assert_eq!(wos.len(), 3);
        assert!(wos.approx_bytes() > 0);
    }

    #[test]
    fn deletes_respect_snapshots() {
        let mut wos = Wos::new();
        let p = wos.insert(row(1), Epoch(1));
        wos.insert(row(2), Epoch(1));
        wos.mark_deleted(p, Epoch(3));
        assert_eq!(wos.visible_rows(Epoch(2)), vec![row(1), row(2)]);
        assert_eq!(wos.visible_rows(Epoch(3)), vec![row(2)]);
    }

    #[test]
    fn drain_carries_history_and_rebases() {
        let mut wos = Wos::new();
        wos.insert(row(1), Epoch(1));
        wos.insert(row(2), Epoch(5)); // stays
        wos.insert(row(3), Epoch(2));
        wos.mark_deleted(0, Epoch(4)); // deleted row still moves out
        wos.mark_deleted(1, Epoch(6)); // delete on kept row must re-base
        let moved = wos.drain_up_to(Epoch(3)).unwrap();
        assert_eq!(
            moved,
            vec![(row(1), Epoch(1), Some(Epoch(4))), (row(3), Epoch(2), None),]
        );
        assert_eq!(wos.len(), 1);
        // The kept row (was position 1) is now position 0, delete intact.
        assert_eq!(wos.deletes().delete_epoch(0), Some(Epoch(6)));
        assert_eq!(wos.min_epoch(), Some(Epoch(5)));
    }

    #[test]
    fn min_epoch_tracks_lge() {
        let mut wos = Wos::new();
        assert_eq!(wos.min_epoch(), None);
        wos.insert(row(1), Epoch(7));
        wos.insert(row(2), Epoch(3));
        assert_eq!(wos.min_epoch(), Some(Epoch(3)));
    }
}
