//! Deterministic fault injection for crash-recovery testing.
//!
//! A process-wide registry of named *fault points*. Durability-sensitive
//! code paths call [`fire`] at the instant between "work done" and "work
//! committed"; if a test armed that point, `fire` returns an error that
//! aborts the operation mid-flight. Under the simulated-crash model this is
//! the moral equivalent of `kill -9`: the backends write whole files (never
//! torn), so on-disk state after a fired fault is exactly what a real crash
//! at that instant would leave behind. The *in-memory* store state may be
//! inconsistent after a fault fires — the test must drop the database and
//! reopen it from disk, which is precisely the recovery path being
//! exercised.
//!
//! Points are armed programmatically ([`arm`]) or through the
//! `VDB_FAULT_POINTS` environment variable (a comma-separated list, read
//! once at first use). Firing is one-shot: a point disarms itself as it
//! fires, so the subsequent reopen/replay runs clean.

use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use vdb_types::{DbError, DbResult};

/// Moveout wrote the new ROS containers but neither the WOS checkpoint nor
/// the manifest exists yet: recovery must come back pre-moveout, with the
/// orphaned containers garbage-collected.
pub const MOVEOUT_BEFORE_MANIFEST: &str = "moveout.before_manifest";
/// Moveout wrote containers *and* the WOS checkpoint record, but the
/// manifest still points at the old state: the stale checkpoint must be
/// ignored on replay (its containers never became visible).
pub const MOVEOUT_BEFORE_WOS_TRUNCATE: &str = "moveout.before_wos_truncate";
/// Mergeout wrote the merged container but the manifest still lists the
/// victims: recovery must come back pre-merge.
pub const MERGEOUT_BEFORE_MANIFEST: &str = "mergeout.before_manifest";
/// Mergeout committed the manifest but victim files are not yet reclaimed:
/// recovery must GC them and serve the merged container.
pub const MERGEOUT_BEFORE_CLEANUP: &str = "mergeout.before_cleanup";
/// The tuple mover picked mergeout victims but wrote nothing yet.
pub const MERGEOUT_AFTER_PICK: &str = "mergeout.after_pick";
/// A DML transaction applied its writes but the commit marker is not on
/// disk: recovery must truncate the epoch away (uncommitted rows vanish).
pub const COMMIT_BEFORE_MARKER: &str = "commit.before_marker";
/// The WOS is about to drain for moveout; nothing has happened yet.
pub const WOS_BEFORE_DRAIN: &str = "wos.before_drain";
/// Drop-partition detached its victims from the in-memory catalog but the
/// manifest still lists them (and their files are untouched): recovery
/// must come back with the partition intact.
pub const DROP_PARTITION_BEFORE_MANIFEST: &str = "drop_partition.before_manifest";
/// Drop-partition committed the manifest but victim files are not yet
/// reclaimed: recovery must GC the orphans and serve the surviving
/// partitions.
pub const DROP_PARTITION_BEFORE_CLEANUP: &str = "drop_partition.before_cleanup";
/// Truncation rewrote containers but neither the WOS checkpoint nor the
/// manifest is durable: recovery must find the pre-truncation state
/// intact (victim files still on disk, rewrites orphaned).
pub const TRUNCATE_BEFORE_MANIFEST: &str = "truncate.before_manifest";

static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<BTreeSet<String>> {
    static REG: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    REG.get_or_init(|| {
        let mut set = BTreeSet::new();
        if let Ok(list) = std::env::var("VDB_FAULT_POINTS") {
            for p in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                set.insert(p.to_string());
            }
        }
        if !set.is_empty() {
            ANY_ARMED.store(true, Ordering::Release);
        }
        Mutex::new(set)
    })
}

/// Arm a fault point: the next [`fire`] call naming it returns an error.
pub fn arm(point: &str) {
    registry().lock().insert(point.to_string());
    ANY_ARMED.store(true, Ordering::Release);
}

/// Disarm every armed point (test teardown).
pub fn disarm_all() {
    registry().lock().clear();
    ANY_ARMED.store(false, Ordering::Release);
}

/// Currently armed points, sorted.
pub fn armed() -> Vec<String> {
    registry().lock().iter().cloned().collect()
}

/// Crash site marker: returns `Err` exactly once if `point` is armed,
/// disarming it in the process; a no-op (and nearly free) otherwise.
pub fn fire(point: &str) -> DbResult<()> {
    let reg = registry();
    if !ANY_ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    let mut set = reg.lock();
    if set.remove(point) {
        if set.is_empty() {
            ANY_ARMED.store(false, Ordering::Release);
        }
        Err(DbError::Execution(format!("fault injected: {point}")))
    } else {
        Ok(())
    }
}

/// Whether an error came from an injected fault (as opposed to a real bug).
pub fn is_fault(err: &DbError) -> bool {
    matches!(err, DbError::Execution(m) if m.starts_with("fault injected: "))
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests use point names no production path fires, because the
    // registry is process-global and the crate's other unit tests run
    // moveout/mergeout concurrently. They also serialize against each other
    // (disarm_all would otherwise clear a sibling's armed point).
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn fire_is_one_shot() {
        let _guard = SERIAL.lock().unwrap();
        arm("test.fault.one_shot");
        let err = fire("test.fault.one_shot").unwrap_err();
        assert!(is_fault(&err), "{err}");
        assert!(fire("test.fault.one_shot").is_ok(), "disarmed after firing");
    }

    #[test]
    fn unarmed_points_are_noops() {
        assert!(fire("test.fault.never_armed").is_ok());
        assert!(!is_fault(&DbError::Execution("other".into())));
    }

    #[test]
    fn disarm_all_clears() {
        let _guard = SERIAL.lock().unwrap();
        arm("test.fault.a");
        arm("test.fault.b");
        assert!(armed().iter().any(|p| p == "test.fault.a"));
        disarm_all();
        assert!(fire("test.fault.a").is_ok());
        assert!(fire("test.fault.b").is_ok());
    }
}
