//! ROS containers (§3.7).
//!
//! "Data in the ROS is physically stored in multiple ROS containers on a
//! standard file system. Each ROS container logically contains some number
//! of complete tuples sorted by the projection's sort order, stored as a
//! pair of files per column ... one with the actual column data, and one
//! with a position index." Containers are immutable once written; data is
//! identified by implicit ordinal position.
//!
//! The rarely-used hybrid row-column mode ("grouping multiple columns
//! together into the same file", §3.7) is supported via
//! [`RosContainer::write_grouped`].

use crate::backend::StorageBackend;
use crate::projection::ProjectionDef;
use vdb_encoding::{ColumnReader, ColumnWriter, PositionIndex};
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Epoch, Row, Value};

/// Identifies a ROS container within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u64);

impl std::fmt::Display for ContainerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ros{}", self.0)
    }
}

/// Metadata for one immutable ROS container. Column data lives on the
/// backend; position indexes are cached in memory (they are tiny, §3.7).
#[derive(Debug, Clone, PartialEq)]
pub struct RosContainer {
    pub id: ContainerId,
    pub projection: String,
    /// `PARTITION BY` key all tuples in this container evaluate to (§3.5).
    pub partition_key: Option<Value>,
    /// Local segment index within the node (§3.6).
    pub local_segment: u32,
    /// Epoch of the committing transaction; the container is invisible to
    /// snapshots before it.
    pub commit_epoch: Epoch,
    pub row_count: u64,
    /// Hybrid row-column mode: all columns in one file.
    pub grouped: bool,
    /// Cached per-column position indexes (empty for grouped containers).
    pub indexes: Vec<PositionIndex>,
}

impl RosContainer {
    fn dir(projection: &str, id: ContainerId) -> String {
        format!("{projection}/{id}")
    }

    /// Path of a column's data file.
    pub fn data_path(&self, col: usize) -> String {
        format!("{}/c{col}.dat", Self::dir(&self.projection, self.id))
    }

    /// Path of a column's position index file.
    pub fn index_path(&self, col: usize) -> String {
        format!("{}/c{col}.idx", Self::dir(&self.projection, self.id))
    }

    fn grouped_path(&self) -> String {
        format!("{}/rows.grp", Self::dir(&self.projection, self.id))
    }

    fn meta_path(&self) -> String {
        format!("{}/container.meta", Self::dir(&self.projection, self.id))
    }

    /// Write a new column-oriented container from rows already sorted by
    /// the projection's sort order.
    pub fn write(
        backend: &dyn StorageBackend,
        def: &ProjectionDef,
        id: ContainerId,
        rows: &[Row],
        commit_epoch: Epoch,
        partition_key: Option<Value>,
        local_segment: u32,
    ) -> DbResult<RosContainer> {
        debug_assert!(
            rows.windows(2).all(|w| {
                vdb_types::schema::compare_rows(&w[0], &w[1], &def.sort_keys)
                    != std::cmp::Ordering::Greater
            }),
            "rows must be sorted by the projection sort order"
        );
        let mut container = RosContainer {
            id,
            projection: def.name.clone(),
            partition_key,
            local_segment,
            commit_epoch,
            row_count: rows.len() as u64,
            grouped: false,
            indexes: Vec::with_capacity(def.arity()),
        };
        for col in 0..def.arity() {
            let mut w = ColumnWriter::new(def.encodings[col]);
            w.extend(rows.iter().map(|r| r[col].clone()));
            let (data, index) = w.finish();
            backend.write_file(&container.data_path(col), &data)?;
            backend.write_file(&container.index_path(col), &index.encode())?;
            container.indexes.push(index);
        }
        backend.write_file(&container.meta_path(), &container.encode_meta())?;
        Ok(container)
    }

    /// Write a grouped (hybrid row-column) container: one file holding all
    /// columns row by row.
    pub fn write_grouped(
        backend: &dyn StorageBackend,
        def: &ProjectionDef,
        id: ContainerId,
        rows: &[Row],
        commit_epoch: Epoch,
        partition_key: Option<Value>,
        local_segment: u32,
    ) -> DbResult<RosContainer> {
        let container = RosContainer {
            id,
            projection: def.name.clone(),
            partition_key,
            local_segment,
            commit_epoch,
            row_count: rows.len() as u64,
            grouped: true,
            indexes: Vec::new(),
        };
        let mut w = Writer::new();
        w.put_uvarint(rows.len() as u64);
        w.put_uvarint(def.arity() as u64);
        for row in rows {
            for v in row {
                w.put_value(v);
            }
        }
        backend.write_file(&container.grouped_path(), &w.into_bytes())?;
        backend.write_file(&container.meta_path(), &container.encode_meta())?;
        Ok(container)
    }

    /// Read one column's values (decoding every block).
    pub fn read_column(&self, backend: &dyn StorageBackend, col: usize) -> DbResult<Vec<Value>> {
        if self.grouped {
            let rows = self.read_rows_grouped(backend)?;
            return Ok(rows.into_iter().map(|mut r| r.swap_remove(col)).collect());
        }
        let data = backend.read_file(&self.data_path(col))?;
        let index = &self.indexes[col];
        ColumnReader::new(&data, index).read_all()
    }

    /// Read the raw column file bytes (for block-pruned scans, which need
    /// the bytes plus the cached index).
    pub fn read_column_bytes(&self, backend: &dyn StorageBackend, col: usize) -> DbResult<Vec<u8>> {
        if self.grouped {
            return Err(DbError::Execution(
                "grouped containers have no per-column files".into(),
            ));
        }
        backend.read_file(&self.data_path(col))
    }

    /// Reconstruct complete rows (all columns).
    pub fn read_rows(&self, backend: &dyn StorageBackend) -> DbResult<Vec<Row>> {
        if self.grouped {
            return self.read_rows_grouped(backend);
        }
        let arity = self.indexes.len();
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            columns.push(self.read_column(backend, c)?);
        }
        let n = self.row_count as usize;
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            rows.push(columns.iter().map(|c| c[i].clone()).collect());
        }
        Ok(rows)
    }

    fn read_rows_grouped(&self, backend: &dyn StorageBackend) -> DbResult<Vec<Row>> {
        let bytes = backend.read_file(&self.grouped_path())?;
        let mut r = Reader::new(&bytes);
        let n = r.get_uvarint()? as usize;
        let arity = r.get_uvarint()? as usize;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let mut row = Vec::with_capacity(arity);
            for _ in 0..arity {
                row.push(r.get_value()?);
            }
            rows.push(row);
        }
        Ok(rows)
    }

    /// Reconstruct the tuple at `position` by fetching the value with the
    /// same position from each column file (§3.7).
    pub fn read_row_at(&self, backend: &dyn StorageBackend, position: u64) -> DbResult<Row> {
        if self.grouped {
            let rows = self.read_rows_grouped(backend)?;
            return rows
                .get(position as usize)
                .cloned()
                .ok_or_else(|| DbError::Corrupt(format!("position {position} out of range")));
        }
        let mut row = Vec::with_capacity(self.indexes.len());
        for c in 0..self.indexes.len() {
            let data = backend.read_file(&self.data_path(c))?;
            row.push(ColumnReader::new(&data, &self.indexes[c]).value_at(position)?);
        }
        Ok(row)
    }

    /// Total bytes of this container's user-data files (data + index).
    pub fn total_bytes(&self, backend: &dyn StorageBackend) -> u64 {
        if self.grouped {
            return backend.file_size(&self.grouped_path()).unwrap_or(0);
        }
        (0..self.indexes.len())
            .map(|c| {
                backend.file_size(&self.data_path(c)).unwrap_or(0)
                    + backend.file_size(&self.index_path(c)).unwrap_or(0)
            })
            .sum()
    }

    /// Delete all files (rollback / post-mergeout reclamation; "removing a
    /// specific month of data is as simple as deleting files", §3.5).
    pub fn delete_files(&self, backend: &dyn StorageBackend) -> DbResult<()> {
        if self.grouped {
            backend.delete_file(&self.grouped_path())?;
        } else {
            for c in 0..self.indexes.len() {
                backend.delete_file(&self.data_path(c))?;
                backend.delete_file(&self.index_path(c))?;
            }
        }
        backend.delete_file(&self.meta_path())?;
        Ok(())
    }

    /// Container-level min/max of a column (SMA pruning at plan time, §3.5).
    pub fn column_min_max(&self, col: usize) -> Option<(Value, Value)> {
        self.indexes.get(col)?.column_min_max()
    }

    /// Number of 1024-row storage blocks per column — the work granularity
    /// inside one scan morsel (a morsel is one container; workers stream it
    /// block by block).
    pub fn block_count(&self) -> usize {
        self.indexes.first().map_or(0, |idx| idx.blocks.len())
    }

    /// Serialize container metadata.
    pub fn encode_meta(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_uvarint(self.id.0);
        w.put_str(&self.projection);
        match &self.partition_key {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                w.put_value(v);
            }
        }
        w.put_u32(self.local_segment);
        w.put_uvarint(self.commit_epoch.0);
        w.put_uvarint(self.row_count);
        w.put_u8(u8::from(self.grouped));
        w.put_uvarint(self.indexes.len() as u64);
        for idx in &self.indexes {
            w.put_bytes(&idx.encode());
        }
        w.into_bytes()
    }

    pub fn decode_meta(bytes: &[u8]) -> DbResult<RosContainer> {
        let mut r = Reader::new(bytes);
        let id = ContainerId(r.get_uvarint()?);
        let projection = r.get_str()?;
        let partition_key = match r.get_u8()? {
            0 => None,
            _ => Some(r.get_value()?),
        };
        let local_segment = r.get_u32()?;
        let commit_epoch = Epoch(r.get_uvarint()?);
        let row_count = r.get_uvarint()?;
        let grouped = r.get_u8()? != 0;
        let n = r.get_uvarint()? as usize;
        let mut indexes = Vec::with_capacity(n);
        for _ in 0..n {
            indexes.push(PositionIndex::decode(r.get_bytes()?)?);
        }
        Ok(RosContainer {
            id,
            projection,
            partition_key,
            local_segment,
            commit_epoch,
            row_count,
            grouped,
            indexes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use vdb_types::{ColumnDef, DataType, TableSchema};

    fn def() -> ProjectionDef {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Varchar),
            ],
        );
        ProjectionDef::super_projection(&schema, "t_super", &[0], &[0])
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Integer(i), Value::Varchar(format!("s{}", i % 3))])
            .collect()
    }

    #[test]
    fn write_read_round_trip() {
        let backend = MemBackend::new();
        let c = RosContainer::write(
            &backend,
            &def(),
            ContainerId(1),
            &rows(100),
            Epoch(1),
            None,
            0,
        )
        .unwrap();
        assert_eq!(c.row_count, 100);
        assert_eq!(c.read_rows(&backend).unwrap(), rows(100));
        assert_eq!(c.read_column(&backend, 0).unwrap()[5], Value::Integer(5));
        // Two files per column + meta.
        assert_eq!(backend.list_files("t_super/").len(), 5);
    }

    #[test]
    fn positional_tuple_reconstruction() {
        let backend = MemBackend::new();
        let c = RosContainer::write(
            &backend,
            &def(),
            ContainerId(2),
            &rows(50),
            Epoch(1),
            None,
            0,
        )
        .unwrap();
        assert_eq!(
            c.read_row_at(&backend, 49).unwrap(),
            vec![Value::Integer(49), Value::Varchar("s1".into())]
        );
        assert!(c.read_row_at(&backend, 50).is_err());
    }

    #[test]
    fn container_min_max_for_pruning() {
        let backend = MemBackend::new();
        let c = RosContainer::write(
            &backend,
            &def(),
            ContainerId(3),
            &rows(100),
            Epoch(1),
            None,
            0,
        )
        .unwrap();
        assert_eq!(
            c.column_min_max(0),
            Some((Value::Integer(0), Value::Integer(99)))
        );
    }

    #[test]
    fn grouped_mode_round_trip() {
        let backend = MemBackend::new();
        let c = RosContainer::write_grouped(
            &backend,
            &def(),
            ContainerId(4),
            &rows(20),
            Epoch(1),
            None,
            0,
        )
        .unwrap();
        assert!(c.grouped);
        assert_eq!(c.read_rows(&backend).unwrap(), rows(20));
        assert_eq!(c.read_column(&backend, 1).unwrap().len(), 20);
        // One grouped file + meta: no per-column files.
        assert_eq!(backend.list_files("t_super/").len(), 2);
    }

    #[test]
    fn grouped_mode_pays_compression_penalty() {
        // §3.7: hybrid row-column mode exacts a compression penalty — the
        // columnar form compresses sorted data; the grouped form cannot.
        let backend = MemBackend::new();
        let many = rows(5000);
        let col = RosContainer::write(&backend, &def(), ContainerId(5), &many, Epoch(1), None, 0)
            .unwrap();
        let grp =
            RosContainer::write_grouped(&backend, &def(), ContainerId(6), &many, Epoch(1), None, 0)
                .unwrap();
        assert!(
            col.total_bytes(&backend) < grp.total_bytes(&backend) / 2,
            "columnar {} vs grouped {}",
            col.total_bytes(&backend),
            grp.total_bytes(&backend)
        );
    }

    #[test]
    fn meta_round_trip() {
        let backend = MemBackend::new();
        let c = RosContainer::write(
            &backend,
            &def(),
            ContainerId(7),
            &rows(10),
            Epoch(3),
            Some(Value::Integer(201_203)),
            2,
        )
        .unwrap();
        let bytes = c.encode_meta();
        assert_eq!(RosContainer::decode_meta(&bytes).unwrap(), c);
    }

    #[test]
    fn delete_files_reclaims_storage() {
        let backend = MemBackend::new();
        let c = RosContainer::write(
            &backend,
            &def(),
            ContainerId(8),
            &rows(10),
            Epoch(1),
            None,
            0,
        )
        .unwrap();
        assert!(c.total_bytes(&backend) > 0);
        c.delete_files(&backend).unwrap();
        assert_eq!(backend.list_files("t_super/").len(), 0);
    }
}
