//! Physical-layout reporting: the Figure 2 view of a projection's storage.
//!
//! Figure 2 of the paper shows one node's storage for a projection
//! partitioned by month/year and segmented by `HASH(cid)` into three local
//! segments: 14 ROS containers × 2 columns = 28 data files. This module
//! renders exactly that inventory from a live [`ProjectionStore`].

use crate::store::ProjectionStore;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use vdb_types::Value;

/// Summary counts for a projection's physical layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutSummary {
    pub containers: usize,
    pub partition_keys: usize,
    pub local_segments: usize,
    /// Column data files (data only, matching the paper's "28 files of
    /// user data" count; position indexes double it).
    pub column_data_files: usize,
    pub total_bytes: u64,
    pub wos_rows: usize,
}

/// Compute the layout summary of a projection store.
pub fn summarize(store: &ProjectionStore) -> LayoutSummary {
    let mut partition_keys = std::collections::BTreeSet::new();
    let mut local_segments = std::collections::BTreeSet::new();
    let mut containers = 0usize;
    let mut column_data_files = 0usize;
    let mut total_bytes = 0u64;
    for c in store.containers() {
        containers += 1;
        partition_keys.insert(format!("{:?}", c.partition_key));
        local_segments.insert(c.local_segment);
        column_data_files += if c.grouped { 1 } else { c.indexes.len() };
        total_bytes += c.total_bytes(store.backend().as_ref());
    }
    LayoutSummary {
        containers,
        partition_keys: partition_keys.len(),
        local_segments: local_segments.len(),
        column_data_files,
        total_bytes,
        wos_rows: store.wos_row_count(),
    }
}

/// Render a Figure-2 style tree: partition → local segment → containers.
pub fn render(store: &ProjectionStore) -> String {
    let def = store.def();
    let mut out = String::new();
    let _ = writeln!(out, "{}", def.describe());
    // (partition, segment) → container lines.
    let mut tree: BTreeMap<(Option<Value>, u32), Vec<String>> = BTreeMap::new();
    for c in store.containers() {
        let bytes = c.total_bytes(store.backend().as_ref());
        let files = if c.grouped { 1 } else { c.indexes.len() };
        tree.entry((c.partition_key.clone(), c.local_segment))
            .or_default()
            .push(format!(
                "{} rows={} files={} bytes={} epoch={}",
                c.id, c.row_count, files, bytes, c.commit_epoch
            ));
    }
    let mut last_partition: Option<Option<Value>> = None;
    for ((pkey, seg), containers) in tree {
        if last_partition.as_ref() != Some(&pkey) {
            match &pkey {
                Some(v) => {
                    let _ = writeln!(out, "  partition {v}");
                }
                None => {
                    let _ = writeln!(out, "  (unpartitioned)");
                }
            }
            last_partition = Some(pkey);
        }
        let _ = writeln!(out, "    local segment {seg}");
        for line in containers {
            let _ = writeln!(out, "      {line}");
        }
    }
    let s = summarize(store);
    let _ = writeln!(
        out,
        "  total: {} containers, {} column data files, {} bytes on disk, {} WOS rows",
        s.containers, s.column_data_files, s.total_bytes, s.wos_rows
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::partition::PartitionSpec;
    use crate::projection::ProjectionDef;
    use std::sync::Arc;
    use vdb_types::date::timestamp_from_civil;
    use vdb_types::{ColumnDef, DataType, Epoch, Row, TableSchema};

    /// Recreate Figure 2's scenario: 2-column projection, month/year
    /// partitions 3/2012..6/2012, HASH(cid) segmentation, 3 local segments.
    fn figure2_store() -> ProjectionStore {
        let schema = TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("cid", DataType::Integer),
                ColumnDef::new("ts", DataType::Timestamp),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "sales_b0", &[1], &[0]);
        let spec = PartitionSpec::by_year_month(1, "ts");
        let mut s = ProjectionStore::new(def, Some(spec), 3, Arc::new(MemBackend::new()));
        let mut rows: Vec<Row> = Vec::new();
        for m in 3..=6u32 {
            for d in 0..200 {
                rows.push(vec![
                    Value::Integer(i64::from(d) * 7919),
                    Value::Timestamp(timestamp_from_civil(2012, m, 1 + d % 27, 0, 0, 0)),
                ]);
            }
        }
        s.insert_direct_ros(rows, Epoch(1)).unwrap();
        s
    }

    #[test]
    fn figure2_layout_counts() {
        let s = figure2_store();
        let summary = summarize(&s);
        assert_eq!(summary.partition_keys, 4, "3/2012..6/2012");
        assert_eq!(summary.local_segments, 3);
        // 4 partitions × 3 local segments = 12 containers (the paper shows
        // 14 because two partitions had a second container from a later
        // load; one load here gives the clean cross product).
        assert_eq!(summary.containers, 12);
        // 2 user columns + hidden epoch column per container.
        assert_eq!(summary.column_data_files, 12 * 3);
        assert!(summary.total_bytes > 0);
    }

    #[test]
    fn render_mentions_partitions_and_segments() {
        let s = figure2_store();
        let text = render(&s);
        assert!(text.contains("partition 201203"));
        assert!(text.contains("partition 201206"));
        assert!(text.contains("local segment 0"));
        assert!(text.contains("local segment 2"));
        assert!(text.contains("total: 12 containers"));
    }
}
