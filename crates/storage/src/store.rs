//! Per-projection storage management: WOS + ROS containers + delete
//! vectors, with epoch-based visibility (§3.7, §5).
//!
//! "Every tuple in Vertica is timestamped with the logical time at which it
//! was committed ... implemented as implicit 64-bit integral columns on the
//! projection" — each ROS container here carries a hidden trailing epoch
//! column, so historical snapshots work even for containers holding rows
//! from several epochs (as moveout produces). Container-level epoch min/max
//! (from the epoch column's position index) lets scans skip the per-row
//! check for fully-visible containers, which is the common case.

use crate::backend::StorageBackend;
use crate::delete_vector::DeleteVector;
use crate::fault;
use crate::partition::PartitionSpec;
use crate::projection::ProjectionDef;
use crate::redo::{RedoLog, RedoRecord};
use crate::ros::{ContainerId, RosContainer};
use crate::wos::Wos;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vdb_encoding::EncodingType;
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Epoch, Row, Value};

/// Where a row physically lives (for delete targeting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowLocation {
    Wos(u64),
    Ros(ContainerId, u64),
}

/// Visibility of a container's rows at a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum VisibleSet {
    /// Every position visible.
    All,
    /// No position visible.
    None,
    /// Per-position mask.
    Mask(Vec<bool>),
}

impl VisibleSet {
    pub fn is_visible(&self, pos: u64) -> bool {
        match self {
            VisibleSet::All => true,
            VisibleSet::None => false,
            VisibleSet::Mask(m) => m.get(pos as usize).copied().unwrap_or(false),
        }
    }

    pub fn count_visible(&self, total: u64) -> u64 {
        match self {
            VisibleSet::All => total,
            VisibleSet::None => 0,
            VisibleSet::Mask(m) => m.iter().filter(|&&b| b).count() as u64,
        }
    }
}

/// Keeps a removed container's files alive until its last holder drops.
///
/// Mergeout and partition drops remove a container from the catalog
/// immediately, but in-flight scans may still hold a [`ScanContainer`]
/// clone referencing its files. Each live container owns one pin; scans
/// clone the `Arc`. Removal *dooms* the pin instead of deleting files —
/// the files are reclaimed when the last `Arc` drops, so a concurrent
/// reader never loses a container mid-scan.
pub struct ContainerPin {
    backend: Arc<dyn StorageBackend>,
    dir_prefix: String,
    doomed: AtomicBool,
}

impl ContainerPin {
    fn new(backend: Arc<dyn StorageBackend>, projection: &str, id: ContainerId) -> ContainerPin {
        ContainerPin {
            backend,
            dir_prefix: format!("{projection}/{id}/"),
            doomed: AtomicBool::new(false),
        }
    }

    fn doom(&self) {
        self.doomed.store(true, Ordering::Release);
    }
}

impl Drop for ContainerPin {
    fn drop(&mut self) {
        if *self.doomed.get_mut() {
            for f in self.backend.list_files(&self.dir_prefix) {
                let _ = self.backend.delete_file(&f);
            }
        }
    }
}

impl std::fmt::Debug for ContainerPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContainerPin")
            .field("dir", &self.dir_prefix)
            .field("doomed", &self.doomed)
            .finish()
    }
}

/// One container plus its delete vector, pinned to a snapshot epoch — the
/// unit handed to the scan operator. Carries the owning node's backend so
/// a scan can mix containers sourced from several nodes (buddy-projection
/// reads and broadcast gathers in the cluster layer).
#[derive(Clone)]
pub struct ScanContainer {
    pub container: RosContainer,
    pub deletes: DeleteVector,
    pub snapshot: Epoch,
    pub backend: Arc<dyn StorageBackend>,
    /// Holds the container's files alive if the tuple mover retires it
    /// while this scan is in flight.
    pub pin: Option<Arc<ContainerPin>>,
}

impl std::fmt::Debug for ScanContainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanContainer")
            .field("container", &self.container)
            .field("deletes", &self.deletes)
            .field("snapshot", &self.snapshot)
            .finish()
    }
}

impl ScanContainer {
    /// Index of the hidden epoch column.
    pub fn epoch_column(&self) -> usize {
        self.container.indexes.len() - 1
    }

    /// Compute which positions are visible at the snapshot, consulting the
    /// epoch column only when the container straddles the snapshot.
    pub fn visible(&self, backend: &dyn StorageBackend) -> DbResult<VisibleSet> {
        let (min_e, max_e) = match self.container.column_min_max(self.epoch_column()) {
            Some((Value::Integer(a), Value::Integer(b))) => (Epoch(a as u64), Epoch(b as u64)),
            _ => (self.container.commit_epoch, self.container.commit_epoch),
        };
        if min_e > self.snapshot {
            return Ok(VisibleSet::None);
        }
        let epoch_visible_all = max_e <= self.snapshot;
        if epoch_visible_all && self.deletes.is_empty() {
            return Ok(VisibleSet::All);
        }
        let n = self.container.row_count as usize;
        let mut mask = vec![true; n];
        if !epoch_visible_all {
            let epochs = self.container.read_column(backend, self.epoch_column())?;
            for (i, e) in epochs.iter().enumerate() {
                if e.as_i64().is_none_or(|v| Epoch(v as u64) > self.snapshot) {
                    mask[i] = false;
                }
            }
        }
        for (pos, del_epoch) in self.deletes.iter() {
            if del_epoch <= self.snapshot {
                if let Some(m) = mask.get_mut(pos as usize) {
                    *m = false;
                }
            }
        }
        if mask.iter().all(|&b| b) {
            Ok(VisibleSet::All)
        } else if mask.iter().all(|&b| !b) {
            Ok(VisibleSet::None)
        } else {
            Ok(VisibleSet::Mask(mask))
        }
    }
}

/// Everything a scan needs from one projection at one snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotScan {
    pub containers: Vec<ScanContainer>,
    /// Visible WOS rows (projection-shaped, no epoch column).
    pub wos_rows: Vec<Row>,
}

impl SnapshotScan {
    pub fn total_ros_rows(&self) -> u64 {
        self.containers.iter().map(|c| c.container.row_count).sum()
    }

    /// How many morsels [`SnapshotScan::into_morsels`] would produce.
    pub fn morsel_count(&self) -> usize {
        self.containers.len() + usize::from(!self.wos_rows.is_empty())
    }

    /// Split into independently scannable units of parallel work: one
    /// morsel per ROS container (containers are written independently and
    /// carry their own delete vectors and position indexes, so they never
    /// share scan state) plus one for the WOS tail. Morsels keep the
    /// snapshot's container order so that concatenating per-morsel scan
    /// output in morsel order reproduces the serial scan exactly.
    pub fn into_morsels(self) -> Vec<ScanMorsel> {
        let mut out: Vec<ScanMorsel> = self
            .containers
            .into_iter()
            .map(|sc| {
                let rows = sc.container.row_count;
                ScanMorsel {
                    containers: vec![sc],
                    wos_rows: Vec::new(),
                    rows,
                }
            })
            .collect();
        if !self.wos_rows.is_empty() {
            let rows = self.wos_rows.len() as u64;
            out.push(ScanMorsel {
                containers: Vec::new(),
                wos_rows: self.wos_rows,
                rows,
            });
        }
        out
    }
}

/// One unit of parallel scan work handed to an execution worker: a subset
/// of a snapshot's containers, or the WOS tail. Produced by
/// [`SnapshotScan::into_morsels`]; consumed by the executor's morsel queue.
#[derive(Debug, Clone)]
pub struct ScanMorsel {
    pub containers: Vec<ScanContainer>,
    /// Visible WOS rows (projection-shaped); non-empty only for the tail
    /// morsel.
    pub wos_rows: Vec<Row>,
    /// Rows covered before visibility/predicates — the scheduling weight.
    pub rows: u64,
}

/// WOS + ROS + delete vectors for one projection on one node.
pub struct ProjectionStore {
    def: ProjectionDef,
    /// Physical definition: `def` plus the hidden epoch column.
    physical: ProjectionDef,
    /// Partition clause, already remapped to projection column indexes.
    partition: Option<PartitionSpec>,
    n_local_segments: u32,
    backend: Arc<dyn StorageBackend>,
    wos: Wos,
    containers: BTreeMap<ContainerId, RosContainer>,
    delete_vectors: BTreeMap<ContainerId, DeleteVector>,
    pins: BTreeMap<ContainerId, Arc<ContainerPin>>,
    next_container: u64,
    /// WOS durability (§5.1): every WOS mutation is logged; moveout
    /// checkpoints and truncates.
    redo: RedoLog,
    /// Redo sequence the durable WOS starts at (the committed checkpoint).
    wos_start_seq: u64,
    /// Set when a multi-step durable operation (moveout, mergeout,
    /// truncation, partition drop) failed partway, leaving the in-memory
    /// state out of sync with disk. Every subsequent operation refuses to
    /// run until the store is reopened from durable state — serving from
    /// the divergent image would leak uncommitted rows to readers.
    poisoned: Option<String>,
}

const MANIFEST_VERSION: u64 = 1;

impl ProjectionStore {
    pub fn new(
        def: ProjectionDef,
        partition: Option<PartitionSpec>,
        n_local_segments: u32,
        backend: Arc<dyn StorageBackend>,
    ) -> ProjectionStore {
        assert!(n_local_segments >= 1);
        let mut physical = def.clone();
        physical.columns.push(usize::MAX); // not a real anchor column
        physical.column_names.push("__epoch".into());
        physical.column_types.push(vdb_types::DataType::Integer);
        physical.encodings.push(EncodingType::Auto);
        let redo = RedoLog::new(&def.name);
        ProjectionStore {
            def,
            physical,
            partition,
            n_local_segments,
            backend,
            wos: Wos::new(),
            containers: BTreeMap::new(),
            delete_vectors: BTreeMap::new(),
            pins: BTreeMap::new(),
            next_container: 1,
            redo,
            wos_start_seq: 0,
            poisoned: None,
        }
    }

    /// Refuse to operate on a store whose in-memory state diverged from
    /// disk. The only way out is to drop the store and reattach via
    /// [`ProjectionStore::open`] — exactly what crash recovery does.
    pub fn ensure_usable(&self) -> DbResult<()> {
        match &self.poisoned {
            None => Ok(()),
            Some(why) => Err(DbError::NeedsReopen(format!(
                "projection {}: {why}",
                self.def.name
            ))),
        }
    }

    fn poison(&mut self, op: &str, err: &DbError) {
        if self.poisoned.is_none() {
            self.poisoned = Some(format!("{op} failed partway ({err})"));
        }
    }

    /// Open a projection store, attaching to durable state when the backend
    /// holds a manifest (the reopen path) and starting fresh otherwise.
    ///
    /// Attach re-reads container metadata and delete vectors for every
    /// manifest-listed container, garbage-collects container directories a
    /// crashed moveout/mergeout left orphaned, and rebuilds the WOS by
    /// replaying the redo log from the committed checkpoint.
    pub fn open(
        def: ProjectionDef,
        partition: Option<PartitionSpec>,
        n_local_segments: u32,
        backend: Arc<dyn StorageBackend>,
    ) -> DbResult<ProjectionStore> {
        let mut store = Self::new(def, partition, n_local_segments, backend);
        let Ok(bytes) = store.backend.read_file(&store.manifest_path()) else {
            // No manifest yet — nothing ever reached the ROS. WOS inserts
            // may still have redo records (a moveout has to run before the
            // first manifest exists), so replay them: an insert-only
            // projection must survive reopen too.
            let (wos, redo) = RedoLog::replay(store.backend.as_ref(), &store.def.name, 0)?;
            store.wos = wos;
            store.redo = redo;
            return Ok(store);
        };
        let mut r = Reader::new(&bytes);
        let version = r.get_uvarint()?;
        if version != MANIFEST_VERSION {
            return Err(DbError::Corrupt(format!(
                "projection {} manifest version {version}",
                store.def.name
            )));
        }
        store.next_container = r.get_uvarint()?;
        store.wos_start_seq = r.get_uvarint()?;
        let n = r.get_uvarint()?;
        let mut live = BTreeSet::new();
        for _ in 0..n {
            live.insert(ContainerId(r.get_uvarint()?));
        }
        for &id in &live {
            let meta = store
                .backend
                .read_file(&format!("{}/{}/container.meta", store.def.name, id))?;
            let container = RosContainer::decode_meta(&meta)?;
            let dv = match store
                .backend
                .read_file(&format!("{}/{}/deletes.dv", store.def.name, id))
            {
                Ok(b) => DeleteVector::decode(&b)?,
                Err(_) => DeleteVector::new(),
            };
            store.pins.insert(
                id,
                Arc::new(ContainerPin::new(
                    store.backend.clone(),
                    &store.def.name,
                    id,
                )),
            );
            store.containers.insert(id, container);
            store.delete_vectors.insert(id, dv);
        }
        store.gc_orphans(&live);
        let (wos, redo) =
            RedoLog::replay(store.backend.as_ref(), &store.def.name, store.wos_start_seq)?;
        store.wos = wos;
        store.redo = redo;
        store
            .redo
            .gc_before(store.backend.as_ref(), store.wos_start_seq);
        Ok(store)
    }

    fn manifest_path(&self) -> String {
        format!("{}/manifest", self.def.name)
    }

    /// Persist the durable catalog: live container ids, the container id
    /// allocator and the redo checkpoint sequence. A single whole-file
    /// rewrite, so under the simulated-crash model this is the atomic
    /// commit point for every container-set or WOS-truncation change.
    fn save_manifest(&self) -> DbResult<()> {
        let mut w = Writer::new();
        w.put_uvarint(MANIFEST_VERSION);
        w.put_uvarint(self.next_container);
        w.put_uvarint(self.wos_start_seq);
        w.put_uvarint(self.containers.len() as u64);
        for id in self.containers.keys() {
            w.put_uvarint(id.0);
        }
        self.backend
            .write_file(&self.manifest_path(), &w.into_bytes())
    }

    /// Delete files of container directories the manifest does not list —
    /// debris from operations that crashed between writing containers and
    /// committing the manifest. Without this, reopen would eventually
    /// re-allocate an orphan's id and inherit its stale files.
    fn gc_orphans(&self, live: &BTreeSet<ContainerId>) {
        for file in self.backend.list_files(&format!("{}/", self.def.name)) {
            let rel = &file[self.def.name.len() + 1..];
            let Some((dir, _)) = rel.split_once('/') else {
                continue; // the manifest itself
            };
            let Some(id) = dir.strip_prefix("ros").and_then(|s| s.parse::<u64>().ok()) else {
                continue; // redo/ and anything non-container
            };
            if !live.contains(&ContainerId(id)) {
                let _ = self.backend.delete_file(&file);
            }
        }
    }

    pub fn def(&self) -> &ProjectionDef {
        &self.def
    }

    pub fn partition_spec(&self) -> Option<&PartitionSpec> {
        self.partition.as_ref()
    }

    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    pub fn wos_row_count(&self) -> usize {
        self.wos.len()
    }

    pub fn wos_bytes(&self) -> usize {
        self.wos.approx_bytes()
    }

    pub fn container_count(&self) -> usize {
        self.containers.len()
    }

    /// How many scan morsels a snapshot of this store yields right now —
    /// the storage-side input to the planner's degree-of-parallelism
    /// choice (one morsel per container, plus the WOS tail).
    pub fn morsel_count(&self) -> usize {
        self.containers.len() + usize::from(!self.wos.is_empty())
    }

    pub fn containers(&self) -> impl Iterator<Item = &RosContainer> {
        self.containers.values()
    }

    /// Total on-backend bytes of this projection's containers.
    pub fn ros_bytes(&self) -> u64 {
        self.containers
            .values()
            .map(|c| c.total_bytes(self.backend.as_ref()))
            .sum()
    }

    /// Local segment of a segmentation-ring value: the ring is cut into
    /// `n_local_segments` equal ranges so segments transfer wholesale when
    /// the cluster resizes (§3.6).
    pub fn local_segment_of(&self, seg_value: Option<u64>) -> u32 {
        match seg_value {
            None => 0,
            Some(v) => ((v as u128 * u128::from(self.n_local_segments)) >> 64) as u32,
        }
    }

    fn alloc_container(&mut self) -> ContainerId {
        let id = ContainerId(self.next_container);
        self.next_container += 1;
        id
    }

    /// Insert projection-shaped rows at `epoch`, buffered in the WOS. The
    /// batch is logged to the redo log first (the WOS itself is volatile,
    /// §5.1).
    pub fn insert_wos(&mut self, rows: Vec<Row>, epoch: Epoch) -> DbResult<()> {
        self.ensure_usable()?;
        for row in &rows {
            self.check_arity(row)?;
        }
        self.redo.append(
            self.backend.as_ref(),
            &RedoRecord::Insert {
                epoch,
                rows: rows.clone(),
            },
        )?;
        for row in rows {
            self.wos.insert(row, epoch);
        }
        Ok(())
    }

    /// Insert projection-shaped rows at `epoch` directly into new ROS
    /// containers, bypassing the WOS (the §7 "Direct Loading to the ROS"
    /// path for bulk loads).
    pub fn insert_direct_ros(
        &mut self,
        rows: Vec<Row>,
        epoch: Epoch,
    ) -> DbResult<Vec<ContainerId>> {
        self.ensure_usable()?;
        for row in &rows {
            self.check_arity(row)?;
        }
        let augmented: Vec<(Row, Epoch, Option<Epoch>)> =
            rows.into_iter().map(|r| (r, epoch, None)).collect();
        let result = self
            .write_containers(augmented, epoch)
            .and_then(|created| self.save_manifest().map(|()| created));
        if let Err(e) = &result {
            self.poison("direct load", e);
        }
        result
    }

    fn check_arity(&self, row: &Row) -> DbResult<()> {
        if row.len() != self.def.arity() {
            return Err(DbError::Execution(format!(
                "projection {} expects {} columns, row has {}",
                self.def.name,
                self.def.arity(),
                row.len()
            )));
        }
        Ok(())
    }

    /// Group rows by (partition key, local segment), sort each group by the
    /// sort order, append the epoch column and write one container per
    /// group. Deleted rows carry their delete epochs into the new
    /// container's delete vector.
    fn write_containers(
        &mut self,
        rows: Vec<(Row, Epoch, Option<Epoch>)>,
        commit_epoch: Epoch,
    ) -> DbResult<Vec<ContainerId>> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        // Group key: (partition, local segment).
        type RowHistory = Vec<(Row, Epoch, Option<Epoch>)>;
        let mut groups: BTreeMap<(Option<Value>, u32), RowHistory> = BTreeMap::new();
        for (row, e, d) in rows {
            let pkey = match &self.partition {
                Some(spec) => Some(spec.key_of(&row)?),
                None => None,
            };
            let seg = self.def.segment_value(&row)?;
            let lseg = self.local_segment_of(seg);
            groups.entry((pkey, lseg)).or_default().push((row, e, d));
        }
        let mut created = Vec::with_capacity(groups.len());
        for ((pkey, lseg), mut group) in groups {
            group.sort_by(|a, b| vdb_types::schema::compare_rows(&a.0, &b.0, &self.def.sort_keys));
            let mut dv = DeleteVector::new();
            let physical_rows: Vec<Row> = group
                .iter()
                .enumerate()
                .map(|(i, (row, e, d))| {
                    if let Some(de) = d {
                        dv.mark(i as u64, *de);
                    }
                    let mut pr = row.clone();
                    pr.push(Value::Integer(e.0 as i64));
                    pr
                })
                .collect();
            let id = self.alloc_container();
            // Stage the group's files fully before touching the catalog, so
            // a failed write leaves only orphan files (GC'd on reopen). A
            // failure once earlier groups are catalog-visible is a
            // different story: the catalog is ahead of the manifest, so the
            // store must poison itself until reopened.
            let staged = RosContainer::write(
                self.backend.as_ref(),
                &self.physical,
                id,
                &physical_rows,
                commit_epoch,
                pkey,
                lseg,
            )
            .and_then(|container| {
                if !dv.is_empty() {
                    self.persist_delete_vector(id, &dv)?;
                }
                Ok(container)
            });
            let container = match staged {
                Ok(c) => c,
                Err(e) => {
                    if !created.is_empty() {
                        self.poison("container write", &e);
                    }
                    return Err(e);
                }
            };
            self.pins.insert(
                id,
                Arc::new(ContainerPin::new(self.backend.clone(), &self.def.name, id)),
            );
            self.containers.insert(id, container);
            self.delete_vectors.insert(id, dv);
            created.push(id);
        }
        Ok(created)
    }

    fn persist_delete_vector(&self, id: ContainerId, dv: &DeleteVector) -> DbResult<()> {
        self.backend.write_file(
            &format!("{}/{}/deletes.dv", self.def.name, id),
            &dv.encode(),
        )
    }

    /// Moveout (§4): move WOS rows committed at or before `up_to` into new
    /// ROS containers. Returns created container ids.
    ///
    /// Durable protocol: write containers → checkpoint the surviving WOS →
    /// commit both by rewriting the manifest. A crash anywhere before the
    /// manifest write recovers to the pre-moveout state (orphan containers
    /// and the uncommitted checkpoint are ignored on reopen); after it, to
    /// the post-moveout state. Fault points mark the two crash windows.
    pub fn moveout(&mut self, up_to: Epoch) -> DbResult<Vec<ContainerId>> {
        self.ensure_usable()?;
        let moved = self.wos.drain_up_to(up_to)?;
        if moved.is_empty() {
            return Ok(Vec::new());
        }
        // The drain already mutated the in-memory WOS; any failure from
        // here on leaves memory ahead of disk, so the store poisons
        // itself and demands a reopen.
        match self.moveout_drained(moved) {
            Ok(created) => Ok(created),
            Err(e) => {
                self.poison("moveout", &e);
                Err(e)
            }
        }
    }

    fn moveout_drained(
        &mut self,
        moved: Vec<(Row, Epoch, Option<Epoch>)>,
    ) -> DbResult<Vec<ContainerId>> {
        let max_epoch = moved.iter().map(|(_, e, _)| *e).max().unwrap();
        let created = self.write_containers(moved, max_epoch)?;
        fault::fire(fault::MOVEOUT_BEFORE_MANIFEST)?;
        let image: Vec<(Row, Epoch, Option<Epoch>)> = self
            .wos
            .all_rows()
            .map(|(_, wr, d)| (wr.row.clone(), wr.epoch, d))
            .collect();
        let ckpt = self.redo.append(
            self.backend.as_ref(),
            &RedoRecord::Checkpoint { rows: image },
        )?;
        fault::fire(fault::MOVEOUT_BEFORE_WOS_TRUNCATE)?;
        self.wos_start_seq = ckpt;
        self.save_manifest()?;
        self.redo.gc_before(self.backend.as_ref(), ckpt);
        Ok(created)
    }

    /// Mark a row deleted (§3.7.1). UPDATE = delete + insert at exec level.
    pub fn mark_deleted(&mut self, loc: RowLocation, epoch: Epoch) -> DbResult<()> {
        self.ensure_usable()?;
        match loc {
            RowLocation::Wos(pos) => {
                if pos >= self.wos.len() as u64 {
                    return Err(DbError::Execution(format!(
                        "WOS position {pos} out of range"
                    )));
                }
                self.redo.append(
                    self.backend.as_ref(),
                    &RedoRecord::DeleteWos {
                        position: pos,
                        epoch,
                    },
                )?;
                self.wos.mark_deleted(pos, epoch);
                Ok(())
            }
            RowLocation::Ros(id, pos) => {
                let container = self
                    .containers
                    .get(&id)
                    .ok_or_else(|| DbError::NotFound(format!("container {id}")))?;
                if pos >= container.row_count {
                    return Err(DbError::Execution(format!(
                        "position {pos} out of range for {id}"
                    )));
                }
                // Persist before mutating memory: a failed write then
                // leaves the in-memory vector untouched instead of
                // serving a delete that never reached disk.
                let mut dv = self.delete_vectors.get(&id).cloned().unwrap_or_default();
                dv.mark(pos, epoch);
                self.persist_delete_vector(id, &dv)?;
                self.delete_vectors.insert(id, dv);
                Ok(())
            }
        }
    }

    /// Snapshot of everything a scan needs at `snapshot`.
    pub fn scan_snapshot(&self, snapshot: Epoch) -> SnapshotScan {
        let containers = self
            .containers
            .values()
            .map(|c| ScanContainer {
                container: c.clone(),
                deletes: self.delete_vectors.get(&c.id).cloned().unwrap_or_default(),
                snapshot,
                backend: self.backend.clone(),
                pin: self.pins.get(&c.id).cloned(),
            })
            .collect();
        SnapshotScan {
            containers,
            wos_rows: self.wos.visible_rows(snapshot),
        }
    }

    /// All rows visible at `snapshot` (projection-shaped, epoch column
    /// stripped), in no particular order. Recovery, refresh and tests use
    /// this; queries go through the execution engine's scan instead.
    pub fn visible_rows(&self, snapshot: Epoch) -> DbResult<Vec<Row>> {
        self.ensure_usable()?;
        let scan = self.scan_snapshot(snapshot);
        let mut out = Vec::new();
        for sc in &scan.containers {
            let visible = sc.visible(self.backend.as_ref())?;
            if matches!(visible, VisibleSet::None) {
                continue;
            }
            let rows = sc.container.read_rows(self.backend.as_ref())?;
            for (i, mut row) in rows.into_iter().enumerate() {
                if visible.is_visible(i as u64) {
                    row.pop(); // strip epoch column
                    out.push(row);
                }
            }
        }
        out.extend(scan.wos_rows);
        Ok(out)
    }

    /// Visible rows together with their physical locations (DELETE/UPDATE
    /// targeting).
    pub fn visible_rows_with_locations(
        &self,
        snapshot: Epoch,
    ) -> DbResult<Vec<(RowLocation, Row)>> {
        self.ensure_usable()?;
        let scan = self.scan_snapshot(snapshot);
        let mut out = Vec::new();
        for sc in &scan.containers {
            let visible = sc.visible(self.backend.as_ref())?;
            if matches!(visible, VisibleSet::None) {
                continue;
            }
            let rows = sc.container.read_rows(self.backend.as_ref())?;
            for (i, mut row) in rows.into_iter().enumerate() {
                if visible.is_visible(i as u64) {
                    row.pop();
                    out.push((RowLocation::Ros(sc.container.id, i as u64), row));
                }
            }
        }
        for (pos, wr, del) in self.wos.all_rows() {
            let deleted = del.is_some_and(|d| d <= snapshot);
            if wr.epoch <= snapshot && !deleted {
                out.push((RowLocation::Wos(pos), wr.row.clone()));
            }
        }
        Ok(out)
    }

    /// Encoded bytes per projection column (data + index files), summed
    /// across containers — the optimizer's compression-aware I/O input.
    pub fn column_bytes(&self) -> Vec<u64> {
        let mut bytes = vec![0u64; self.def.arity()];
        for c in self.containers.values() {
            if c.grouped {
                continue;
            }
            for (col, b) in bytes.iter_mut().enumerate() {
                *b += self.backend.file_size(&c.data_path(col)).unwrap_or(0)
                    + self.backend.file_size(&c.index_path(col)).unwrap_or(0);
            }
        }
        bytes
    }

    /// Observed concrete encodings per projection column: `(encoding name,
    /// rows)` pairs summed over every ROS block's position-index entry.
    /// This is the Database Designer feedback loop (§6.3): what `Auto`
    /// actually picked on real data, surfaced to the optimizer catalog so
    /// encoding choices are inspectable and re-designable.
    pub fn column_encodings(&self) -> Vec<Vec<(String, u64)>> {
        let mut per_col: Vec<std::collections::BTreeMap<&'static str, u64>> =
            vec![std::collections::BTreeMap::new(); self.def.arity()];
        for c in self.containers.values() {
            if c.grouped {
                continue;
            }
            for (col, counts) in per_col.iter_mut().enumerate() {
                if let Some(idx) = c.indexes.get(col) {
                    for b in &idx.blocks {
                        *counts.entry(b.encoding.name()).or_insert(0) += u64::from(b.count);
                    }
                }
            }
        }
        per_col
            .into_iter()
            .map(|m| m.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
            .collect()
    }

    /// Total visible row count at a snapshot (cheap: container row counts
    /// minus deletes; WOS visible rows).
    pub fn row_count_estimate(&self) -> u64 {
        self.containers.values().map(|c| c.row_count).sum::<u64>() + self.wos.len() as u64
    }

    /// Fast bulk delete of one partition (§3.5): moveout any WOS rows, then
    /// retire every container with the given partition key.
    ///
    /// Uses the same durable protocol as mergeout: detach the victims from
    /// the catalog, commit by rewriting the manifest, and only then doom
    /// the pins — the manifest must never list a container whose files a
    /// crash-interrupted delete already reclaimed.
    pub fn drop_partition(&mut self, key: &Value, current: Epoch) -> DbResult<usize> {
        self.ensure_usable()?;
        self.moveout(current)?;
        let victims: Vec<ContainerId> = self
            .containers
            .values()
            .filter(|c| c.partition_key.as_ref() == Some(key))
            .map(|c| c.id)
            .collect();
        if victims.is_empty() {
            return Ok(0);
        }
        match self.commit_removal(
            &victims,
            fault::DROP_PARTITION_BEFORE_MANIFEST,
            fault::DROP_PARTITION_BEFORE_CLEANUP,
        ) {
            Ok(()) => Ok(victims.len()),
            Err(e) => {
                self.poison("drop partition", &e);
                Err(e)
            }
        }
    }

    /// Durably retire a set of containers: detach them from the catalog,
    /// commit via the manifest rewrite, then doom the pins so files are
    /// reclaimed once in-flight scans let go. The two fault points bracket
    /// the manifest write — the single atomic commit step.
    fn commit_removal(
        &mut self,
        victims: &[ContainerId],
        before_manifest: &str,
        before_cleanup: &str,
    ) -> DbResult<()> {
        fault::fire(before_manifest)?;
        let pins: Vec<Arc<ContainerPin>> = victims
            .iter()
            .filter_map(|id| self.detach_container(*id))
            .collect();
        self.save_manifest()?;
        fault::fire(before_cleanup)?;
        for pin in pins {
            pin.doom();
        }
        Ok(())
    }

    /// Remove a container from the catalog and hand back its (undoomed)
    /// pin. Callers commit the removal with a manifest save and only then
    /// doom the pin — dooming first would let a crash delete files the
    /// manifest still references.
    fn detach_container(&mut self, id: ContainerId) -> Option<Arc<ContainerPin>> {
        self.containers.remove(&id)?;
        self.delete_vectors.remove(&id);
        self.pins.remove(&id)
    }

    /// Drop a container from the catalog. File reclamation is deferred to
    /// the last pin holder — an in-flight scan keeps the files alive.
    /// Callers changing the durable container set must follow up with a
    /// manifest save.
    #[cfg(test)]
    pub(crate) fn remove_container(&mut self, id: ContainerId) {
        if let Some(pin) = self.detach_container(id) {
            pin.doom();
        }
    }

    /// Read a container's rows together with per-row `(epoch, delete)`
    /// history — the mergeout and recovery input.
    pub(crate) fn container_history(
        &self,
        id: ContainerId,
    ) -> DbResult<Vec<(Row, Epoch, Option<Epoch>)>> {
        let c = self
            .containers
            .get(&id)
            .ok_or_else(|| DbError::NotFound(format!("container {id}")))?;
        let dv = self.delete_vectors.get(&id).cloned().unwrap_or_default();
        let rows = c.read_rows(self.backend.as_ref())?;
        Ok(rows
            .into_iter()
            .enumerate()
            .map(|(i, mut row)| {
                let e = row
                    .pop()
                    .and_then(|v| v.as_i64())
                    .map(|v| Epoch(v as u64))
                    .unwrap_or(c.commit_epoch);
                (row, e, dv.delete_epoch(i as u64))
            })
            .collect())
    }

    /// Replace a set of containers with newly-merged history (tuple mover).
    ///
    /// Durable protocol: write the merged containers, then commit by
    /// rewriting the manifest with the victims dropped, then reclaim victim
    /// files. Crashing before the manifest recovers pre-merge (the merged
    /// containers are orphans); after it, post-merge (leftover victim files
    /// are GC'd on reopen). An error after the merged containers became
    /// catalog-visible poisons the store — the in-memory image is ahead of
    /// the manifest and only a reopen reconverges them.
    pub(crate) fn replace_containers(
        &mut self,
        victims: &[ContainerId],
        merged: Vec<(Row, Epoch, Option<Epoch>)>,
        commit_epoch: Epoch,
    ) -> DbResult<Vec<ContainerId>> {
        self.ensure_usable()?;
        let created = self.write_containers(merged, commit_epoch)?;
        match self.commit_removal(
            victims,
            fault::MERGEOUT_BEFORE_MANIFEST,
            fault::MERGEOUT_BEFORE_CLEANUP,
        ) {
            Ok(()) => Ok(created),
            Err(e) => {
                self.poison("mergeout", &e);
                Err(e)
            }
        }
    }

    pub(crate) fn delete_vector_of(&self, id: ContainerId) -> DeleteVector {
        self.delete_vectors.get(&id).cloned().unwrap_or_default()
    }

    /// Truncate all effects after `epoch`: recovery's first step ("the node
    /// truncates all tuples that were inserted after its LGE", §5.2). Rows
    /// committed after `epoch` disappear; delete marks stamped after
    /// `epoch` are undone.
    pub fn truncate_after(&mut self, epoch: Epoch) -> DbResult<()> {
        self.ensure_usable()?;
        match self.truncate_after_inner(epoch) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.poison("truncate", &e);
                Err(e)
            }
        }
    }

    fn truncate_after_inner(&mut self, epoch: Epoch) -> DbResult<()> {
        // WOS: drop rows after epoch, undo later deletes.
        let kept = self.wos.drain_up_to(Epoch(u64::MAX))?;
        let mut new_wos = Wos::new();
        for (row, e, d) in kept {
            if e <= epoch {
                let pos = new_wos.insert(row, e);
                if let Some(de) = d {
                    if de <= epoch {
                        new_wos.mark_deleted(pos, de);
                    }
                }
            }
        }
        self.wos = new_wos;
        // ROS: rewrite containers that contain post-epoch rows or deletes.
        // Victims are detached but their dooms wait until the manifest
        // commits — before that, their files are the only durable copy of
        // the surviving rows.
        let mut detached: Vec<Arc<ContainerPin>> = Vec::new();
        let ids: Vec<ContainerId> = self.containers.keys().copied().collect();
        for id in ids {
            let hist = self.container_history(id)?;
            let needs_rewrite = hist
                .iter()
                .any(|(_, e, d)| *e > epoch || d.is_some_and(|de| de > epoch));
            if !needs_rewrite {
                continue;
            }
            let filtered: Vec<(Row, Epoch, Option<Epoch>)> = hist
                .into_iter()
                .filter(|(_, e, _)| *e <= epoch)
                .map(|(r, e, d)| (r, e, d.filter(|de| *de <= epoch)))
                .collect();
            detached.extend(self.detach_container(id));
            if !filtered.is_empty() {
                self.write_containers(filtered, epoch)?;
            }
        }
        fault::fire(fault::TRUNCATE_BEFORE_MANIFEST)?;
        // Durable commit of the truncation: checkpoint the rebuilt WOS and
        // rewrite the manifest in one step; only then reclaim the
        // rewritten containers' files.
        let image: Vec<(Row, Epoch, Option<Epoch>)> = self
            .wos
            .all_rows()
            .map(|(_, wr, d)| (wr.row.clone(), wr.epoch, d))
            .collect();
        let ckpt = self.redo.append(
            self.backend.as_ref(),
            &RedoRecord::Checkpoint { rows: image },
        )?;
        self.wos_start_seq = ckpt;
        self.save_manifest()?;
        for pin in detached {
            pin.doom();
        }
        self.redo.gc_before(self.backend.as_ref(), ckpt);
        Ok(())
    }

    /// Complete history of the projection (for recovery copy): every row
    /// with commit epoch in `(from, to]`, including deleted rows and their
    /// delete epochs — "an execution plan similar to INSERT...SELECT is
    /// used to move rows (including deleted rows)" (§5.2).
    pub fn history_between(
        &self,
        from: Epoch,
        to: Epoch,
    ) -> DbResult<Vec<(Row, Epoch, Option<Epoch>)>> {
        self.ensure_usable()?;
        let mut out = Vec::new();
        let ids: Vec<ContainerId> = self.containers.keys().copied().collect();
        for id in ids {
            for (row, e, d) in self.container_history(id)? {
                if e > from && e <= to {
                    out.push((row, e, d.filter(|de| *de <= to)));
                }
            }
        }
        for (_, wr, d) in self.wos.all_rows() {
            if wr.epoch > from && wr.epoch <= to {
                out.push((wr.row.clone(), wr.epoch, d.filter(|de| *de <= to)));
            }
        }
        Ok(out)
    }

    /// Deletes that hit *old* rows during an interval: rows committed at or
    /// before `from` whose delete epoch lies in `(from, to]`. Recovery must
    /// replay these separately — `history_between` only carries rows whose
    /// *commit* falls in the window.
    pub fn late_deletes_between(
        &self,
        from: Epoch,
        to: Epoch,
    ) -> DbResult<Vec<(Row, Epoch, Epoch)>> {
        self.ensure_usable()?;
        let mut out = Vec::new();
        let ids: Vec<ContainerId> = self.containers.keys().copied().collect();
        for id in ids {
            for (row, e, d) in self.container_history(id)? {
                if let Some(de) = d {
                    if e <= from && de > from && de <= to {
                        out.push((row, e, de));
                    }
                }
            }
        }
        for (_, wr, d) in self.wos.all_rows() {
            if let Some(de) = d {
                if wr.epoch <= from && de > from && de <= to {
                    out.push((wr.row.clone(), wr.epoch, de));
                }
            }
        }
        Ok(out)
    }

    /// Replay late deletes gathered from a buddy: find each (row, commit
    /// epoch) pair without a delete mark and mark it. Returns marks applied.
    pub fn apply_late_deletes(&mut self, items: &[(Row, Epoch, Epoch)]) -> DbResult<u64> {
        self.ensure_usable()?;
        let mut applied = 0;
        for (row, commit, delete) in items {
            let mut target: Option<RowLocation> = None;
            let ids: Vec<ContainerId> = self.containers.keys().copied().collect();
            'search: for id in ids {
                for (i, (r, e, d)) in self.container_history(id)?.into_iter().enumerate() {
                    if d.is_none() && &r == row && &e == commit {
                        target = Some(RowLocation::Ros(id, i as u64));
                        break 'search;
                    }
                }
            }
            if target.is_none() {
                for (pos, wr, d) in self.wos.all_rows() {
                    if d.is_none() && &wr.row == row && &wr.epoch == commit {
                        target = Some(RowLocation::Wos(pos));
                        break;
                    }
                }
            }
            if let Some(loc) = target {
                self.mark_deleted(loc, *delete)?;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Drop all WOS contents (simulated node crash: "data that exists only
    /// in the WOS is lost in the event of a node failure", §5.1).
    ///
    /// This models a *volatile* WOS for the cluster-level fail/recover
    /// tests and deliberately leaves the redo log untouched: those tests
    /// never reopen the store from disk, and the buddy-replay recovery that
    /// follows ends in [`ProjectionStore::truncate_after`], which rewrites
    /// the checkpoint and re-converges durable state.
    pub fn lose_wos(&mut self) {
        self.wos = Wos::new();
    }

    /// Apply copied history (recovery's historical/current phases).
    pub fn apply_history(&mut self, rows: Vec<(Row, Epoch, Option<Epoch>)>) -> DbResult<()> {
        self.ensure_usable()?;
        if rows.is_empty() {
            return Ok(());
        }
        let max_epoch = rows.iter().map(|(_, e, _)| *e).max().unwrap();
        self.write_containers(rows, max_epoch)?;
        if let Err(e) = self.save_manifest() {
            self.poison("history apply", &e);
            return Err(e);
        }
        Ok(())
    }

    /// Last Good Epoch (§5.1): everything at or below this epoch is safely
    /// in ROS containers on disk. Data only in the WOS would be lost on
    /// failure.
    pub fn last_good_epoch(&self, current: Epoch) -> Epoch {
        match self.wos.min_epoch() {
            Some(e) => e.prev(),
            None => current,
        }
    }

    /// Hard-link every file of this projection under `backup/<tag>/`
    /// (§5.2's backup mechanism). Returns the number of files linked.
    pub fn backup(&self, tag: &str) -> DbResult<usize> {
        let files = self.backend.list_files(&format!("{}/", self.def.name));
        for f in &files {
            self.backend.hard_link(f, &format!("backup/{tag}/{f}"))?;
        }
        Ok(files.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use vdb_types::{ColumnDef, DataType, TableSchema};

    fn schema() -> TableSchema {
        TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("amt", DataType::Integer),
            ],
        )
    }

    fn store() -> ProjectionStore {
        let def = ProjectionDef::super_projection(&schema(), "sales_super", &[0], &[0]);
        ProjectionStore::new(def, None, 3, Arc::new(MemBackend::new()))
    }

    fn row(id: i64, amt: i64) -> Row {
        vec![Value::Integer(id), Value::Integer(amt)]
    }

    #[test]
    fn wos_insert_then_moveout() {
        let mut s = store();
        s.insert_wos(vec![row(1, 10), row(2, 20)], Epoch(1))
            .unwrap();
        s.insert_wos(vec![row(3, 30)], Epoch(2)).unwrap();
        assert_eq!(s.wos_row_count(), 3);
        assert_eq!(s.container_count(), 0);
        let created = s.moveout(Epoch(2)).unwrap();
        assert!(!created.is_empty());
        assert_eq!(s.wos_row_count(), 0);
        let mut rows = s.visible_rows(Epoch(2)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row(1, 10), row(2, 20), row(3, 30)]);
    }

    #[test]
    fn snapshot_isolation_across_epochs() {
        let mut s = store();
        s.insert_wos(vec![row(1, 10)], Epoch(1)).unwrap();
        s.moveout(Epoch(1)).unwrap();
        s.insert_wos(vec![row(2, 20)], Epoch(2)).unwrap();
        s.moveout(Epoch(2)).unwrap();
        assert_eq!(s.visible_rows(Epoch(1)).unwrap(), vec![row(1, 10)]);
        assert_eq!(s.visible_rows(Epoch(2)).unwrap().len(), 2);
        assert_eq!(s.visible_rows(Epoch(0)).unwrap().len(), 0);
    }

    #[test]
    fn mixed_epoch_container_visibility() {
        // Moveout bundles epochs 1..3 into one container; per-row epoch
        // column must keep historical snapshots exact.
        let mut s = store();
        s.insert_wos(vec![row(1, 1)], Epoch(1)).unwrap();
        s.insert_wos(vec![row(2, 2)], Epoch(2)).unwrap();
        s.insert_wos(vec![row(3, 3)], Epoch(3)).unwrap();
        s.moveout(Epoch(3)).unwrap();
        assert_eq!(s.visible_rows(Epoch(2)).unwrap().len(), 2);
        assert_eq!(s.visible_rows(Epoch(3)).unwrap().len(), 3);
    }

    #[test]
    fn direct_ros_load() {
        let mut s = store();
        let rows: Vec<Row> = (0..100).map(|i| row(i, i * 2)).collect();
        let created = s.insert_direct_ros(rows.clone(), Epoch(1)).unwrap();
        assert!(!created.is_empty());
        assert_eq!(s.wos_row_count(), 0);
        let mut got = s.visible_rows(Epoch(1)).unwrap();
        got.sort();
        assert_eq!(got, rows);
    }

    /// Unsegmented single-local-segment store: one container per load, rows
    /// in sort order (position semantics are deterministic).
    fn flat_store() -> ProjectionStore {
        let def = ProjectionDef::super_projection(&schema(), "sales_flat", &[0], &[]);
        ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()))
    }

    #[test]
    fn deletes_and_historical_reads() {
        let mut s = flat_store();
        s.insert_direct_ros(vec![row(1, 10), row(2, 20)], Epoch(1))
            .unwrap();
        let id = s.containers().next().unwrap().id;
        // Row order inside the container is sorted by id: position 0 = id 1.
        s.mark_deleted(RowLocation::Ros(id, 0), Epoch(3)).unwrap();
        assert_eq!(s.visible_rows(Epoch(2)).unwrap().len(), 2);
        assert_eq!(s.visible_rows(Epoch(3)).unwrap(), vec![row(2, 20)]);
    }

    #[test]
    fn wos_deletes_survive_moveout() {
        let mut s = store();
        s.insert_wos(vec![row(1, 10), row(2, 20)], Epoch(1))
            .unwrap();
        s.mark_deleted(RowLocation::Wos(0), Epoch(2)).unwrap();
        s.moveout(Epoch(2)).unwrap();
        assert_eq!(s.visible_rows(Epoch(1)).unwrap().len(), 2);
        assert_eq!(s.visible_rows(Epoch(2)).unwrap(), vec![row(2, 20)]);
    }

    #[test]
    fn partitioned_containers_per_key() {
        let def = ProjectionDef::super_projection(&schema(), "p", &[0], &[0]);
        let spec = PartitionSpec::new(vdb_types::Expr::binary(
            vdb_types::BinOp::Mod,
            vdb_types::Expr::col(0, "id"),
            vdb_types::Expr::int(2),
        ));
        let mut s = ProjectionStore::new(def, Some(spec), 1, Arc::new(MemBackend::new()));
        s.insert_direct_ros((0..10).map(|i| row(i, i)).collect(), Epoch(1))
            .unwrap();
        // Two partitions (even/odd), one local segment each.
        assert_eq!(s.container_count(), 2);
        let keys: Vec<Option<Value>> = s.containers().map(|c| c.partition_key.clone()).collect();
        assert!(keys.contains(&Some(Value::Integer(0))));
        assert!(keys.contains(&Some(Value::Integer(1))));
    }

    #[test]
    fn drop_partition_is_file_deletion() {
        let def = ProjectionDef::super_projection(&schema(), "p", &[0], &[0]);
        let spec = PartitionSpec::new(vdb_types::Expr::binary(
            vdb_types::BinOp::Mod,
            vdb_types::Expr::col(0, "id"),
            vdb_types::Expr::int(2),
        ));
        let mut s = ProjectionStore::new(def, Some(spec), 1, Arc::new(MemBackend::new()));
        s.insert_direct_ros((0..10).map(|i| row(i, i)).collect(), Epoch(1))
            .unwrap();
        let dropped = s.drop_partition(&Value::Integer(0), Epoch(1)).unwrap();
        assert_eq!(dropped, 1);
        let rows = s.visible_rows(Epoch(1)).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[0].as_i64().unwrap() % 2 == 1));
    }

    #[test]
    fn local_segments_split_direct_loads() {
        let mut s = store(); // 3 local segments, segmented by HASH(id)
        s.insert_direct_ros((0..300).map(|i| row(i, i)).collect(), Epoch(1))
            .unwrap();
        let segs: std::collections::BTreeSet<u32> =
            s.containers().map(|c| c.local_segment).collect();
        assert!(
            segs.len() > 1,
            "hash range should hit several local segments"
        );
        assert_eq!(s.visible_rows(Epoch(1)).unwrap().len(), 300);
    }

    #[test]
    fn truncate_after_restores_consistent_state() {
        let mut s = store();
        s.insert_direct_ros(vec![row(1, 1)], Epoch(1)).unwrap();
        s.insert_direct_ros(vec![row(2, 2)], Epoch(3)).unwrap();
        let id = s.containers().next().unwrap().id;
        s.mark_deleted(RowLocation::Ros(id, 0), Epoch(4)).unwrap();
        s.insert_wos(vec![row(9, 9)], Epoch(5)).unwrap();
        s.truncate_after(Epoch(2)).unwrap();
        // Epoch-3 insert, epoch-4 delete and epoch-5 WOS row all gone.
        assert_eq!(s.visible_rows(Epoch(10)).unwrap(), vec![row(1, 1)]);
        assert_eq!(s.wos_row_count(), 0);
    }

    #[test]
    fn history_between_and_apply() {
        let mut s = store();
        s.insert_direct_ros(vec![row(1, 1)], Epoch(1)).unwrap();
        s.insert_direct_ros(vec![row(2, 2)], Epoch(2)).unwrap();
        s.insert_wos(vec![row(3, 3)], Epoch(3)).unwrap();
        let hist = s.history_between(Epoch(1), Epoch(3)).unwrap();
        assert_eq!(hist.len(), 2, "rows committed in (1,3]");
        let mut other = store();
        other.insert_direct_ros(vec![row(1, 1)], Epoch(1)).unwrap();
        other.apply_history(hist).unwrap();
        let mut rows = other.visible_rows(Epoch(3)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row(1, 1), row(2, 2), row(3, 3)]);
    }

    #[test]
    fn last_good_epoch_tracks_wos() {
        let mut s = store();
        assert_eq!(s.last_good_epoch(Epoch(5)), Epoch(5));
        s.insert_wos(vec![row(1, 1)], Epoch(3)).unwrap();
        assert_eq!(s.last_good_epoch(Epoch(5)), Epoch(2));
        s.moveout(Epoch(5)).unwrap();
        assert_eq!(s.last_good_epoch(Epoch(5)), Epoch(5));
    }

    #[test]
    fn backup_hard_links_files() {
        let mut s = store();
        s.insert_direct_ros(vec![row(1, 1)], Epoch(1)).unwrap();
        let n = s.backup("snap1").unwrap();
        assert!(n > 0);
        let backend = s.backend().clone();
        assert!(!backend.list_files("backup/snap1/").is_empty());
    }

    #[test]
    fn reopen_attaches_durable_state() {
        let backend: Arc<MemBackend> = Arc::new(MemBackend::new());
        let def = ProjectionDef::super_projection(&schema(), "sales_super", &[0], &[0]);
        let mut s = ProjectionStore::new(def.clone(), None, 3, backend.clone());
        s.insert_wos(vec![row(1, 10), row(2, 20)], Epoch(1))
            .unwrap();
        s.moveout(Epoch(1)).unwrap();
        s.insert_wos(vec![row(3, 30)], Epoch(2)).unwrap();
        s.mark_deleted(RowLocation::Wos(0), Epoch(3)).unwrap();
        drop(s);
        let s2 = ProjectionStore::open(def, None, 3, backend).unwrap();
        let mut rows = s2.visible_rows(Epoch(2)).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row(1, 10), row(2, 20), row(3, 30)]);
        assert_eq!(
            s2.visible_rows(Epoch(3)).unwrap().len(),
            2,
            "replayed WOS delete respected"
        );
        assert_eq!(s2.wos_row_count(), 1, "moved-out rows not resurrected");
    }

    #[test]
    fn open_without_manifest_is_fresh() {
        let def = ProjectionDef::super_projection(&schema(), "sales_super", &[0], &[0]);
        let s = ProjectionStore::open(def, None, 3, Arc::new(MemBackend::new())).unwrap();
        assert_eq!(s.container_count(), 0);
        assert_eq!(s.wos_row_count(), 0);
    }

    #[test]
    fn inflight_scan_survives_container_removal() {
        let mut s = flat_store();
        s.insert_direct_ros(vec![row(1, 1), row(2, 2)], Epoch(1))
            .unwrap();
        let id = s.containers().next().unwrap().id;
        let scan = s.scan_snapshot(Epoch(1));
        s.remove_container(id);
        // The in-flight scan pins the files: reads still work.
        let sc = &scan.containers[0];
        assert_eq!(
            sc.container.read_rows(s.backend().as_ref()).unwrap().len(),
            2
        );
        let prefix = format!("sales_flat/{id}/");
        assert!(!s.backend().list_files(&prefix).is_empty());
        // Last pin dropped → files reclaimed.
        drop(scan);
        assert!(s.backend().list_files(&prefix).is_empty());
    }

    #[test]
    fn scan_container_visibility_fast_paths() {
        let mut s = store();
        s.insert_direct_ros(vec![row(1, 1), row(2, 2)], Epoch(1))
            .unwrap();
        let scan = s.scan_snapshot(Epoch(1));
        let sc = &scan.containers[0];
        assert_eq!(sc.visible(s.backend().as_ref()).unwrap(), VisibleSet::All);
        let older = s.scan_snapshot(Epoch(0));
        assert_eq!(
            older.containers[0].visible(s.backend().as_ref()).unwrap(),
            VisibleSet::None
        );
    }
}
