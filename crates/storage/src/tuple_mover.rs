//! The tuple mover (§4): moveout and strata-based mergeout.
//!
//! Moveout drains the WOS into new ROS containers when the WOS grows past a
//! threshold. Mergeout "periodically quantizes the ROS containers into
//! several exponential sized strata based on file size" and merges the
//! containers of an overfull stratum into one larger container, bounding
//! the number of times any tuple is rewritten to the number of strata.
//! Merges never intermix WOS and ROS data, never cross partition or local
//! segment boundaries, never produce containers above the size cap, and
//! elide rows deleted before the Ancient History Mark.

use crate::ros::ContainerId;
use crate::store::ProjectionStore;
use std::collections::BTreeMap;
use vdb_types::{DbResult, Epoch, Value};

/// Tuning knobs. Defaults are scaled-down analogues of production values
/// (the paper's container cap is 2 TB; tests want a few KB).
#[derive(Debug, Clone)]
pub struct TupleMoverConfig {
    /// Moveout triggers when the WOS holds at least this many bytes.
    pub wos_moveout_bytes: usize,
    /// Smallest stratum covers containers up to this many bytes.
    pub strata_base_bytes: u64,
    /// Each stratum covers `factor`× the size range of the previous.
    pub strata_factor: u64,
    /// Merge a stratum once it holds this many containers.
    pub merge_threshold: usize,
    /// Never create a container larger than this ("currently 2TB").
    pub max_container_bytes: u64,
}

impl Default for TupleMoverConfig {
    fn default() -> TupleMoverConfig {
        TupleMoverConfig {
            wos_moveout_bytes: 1 << 20,
            strata_base_bytes: 4096,
            strata_factor: 8,
            merge_threshold: 4,
            max_container_bytes: 2 << 40,
        }
    }
}

/// Outcome of one mergeout pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeoutStats {
    pub merges: usize,
    pub containers_merged: usize,
    pub rows_purged: u64,
    pub containers_after: usize,
}

/// Outcome of one moveout pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MoveoutStats {
    pub ran: bool,
    pub containers_created: usize,
}

/// The asynchronous storage-maintenance service of §4 (driven synchronously
/// here: callers invoke [`TupleMover::run_moveout`]/[`TupleMover::run_mergeout`] after loads or on a timer).
#[derive(Debug, Clone, Default)]
pub struct TupleMover {
    pub config: TupleMoverConfig,
}

impl TupleMover {
    pub fn new(config: TupleMoverConfig) -> TupleMover {
        TupleMover { config }
    }

    /// Stratum of a container of `bytes` bytes: exponential quantization.
    pub fn stratum_of(&self, bytes: u64) -> u32 {
        let mut bound = self.config.strata_base_bytes.max(1);
        let mut s = 0u32;
        while bytes > bound {
            bound = bound.saturating_mul(self.config.strata_factor);
            s += 1;
        }
        s
    }

    /// Moveout if the WOS is over threshold (or `force`).
    pub fn run_moveout(
        &self,
        store: &mut ProjectionStore,
        up_to: Epoch,
        force: bool,
    ) -> DbResult<MoveoutStats> {
        if !force && store.wos_bytes() < self.config.wos_moveout_bytes {
            return Ok(MoveoutStats::default());
        }
        let created = store.moveout(up_to)?;
        Ok(MoveoutStats {
            ran: !created.is_empty(),
            containers_created: created.len(),
        })
    }

    /// One mergeout pass. Containers are grouped by
    /// `(partition key, local segment)` — merges never cross those
    /// boundaries — then quantized into strata; each overfull stratum is
    /// merged into a single container. Rows deleted at or before `ahm`
    /// are elided ("there is no way a user can query them").
    pub fn run_mergeout(&self, store: &mut ProjectionStore, ahm: Epoch) -> DbResult<MergeoutStats> {
        let mut stats = MergeoutStats::default();
        while let Some((victims, purge_estimate)) = self.pick_merge(store) {
            // Crash site: victims chosen, nothing written yet — recovery is
            // trivially the pre-merge state.
            crate::fault::fire(crate::fault::MERGEOUT_AFTER_PICK)?;
            // Gather the full history of all victims, dropping
            // ancient-deleted rows.
            let mut merged = Vec::new();
            let mut purged = 0u64;
            for id in &victims {
                for (row, e, d) in store.container_history(*id)? {
                    if d.is_some_and(|de| de <= ahm) {
                        purged += 1;
                    } else {
                        merged.push((row, e, d));
                    }
                }
            }
            let _ = purge_estimate;
            let commit = merged
                .iter()
                .map(|(_, e, _)| *e)
                .max()
                .unwrap_or(Epoch::ZERO);
            store.replace_containers(&victims, merged, commit)?;
            stats.merges += 1;
            stats.containers_merged += victims.len();
            stats.rows_purged += purged;
        }
        stats.containers_after = store.container_count();
        Ok(stats)
    }

    /// Find one overfull stratum within one (partition, segment) group.
    fn pick_merge(&self, store: &ProjectionStore) -> Option<(Vec<ContainerId>, u64)> {
        let backend = store.backend().clone();
        // (partition, local segment, stratum) → container ids + sizes.
        type Stratum = (Vec<ContainerId>, u64);
        let mut groups: BTreeMap<(Option<Value>, u32, u32), Stratum> = BTreeMap::new();
        for c in store.containers() {
            let bytes = c.total_bytes(backend.as_ref());
            let stratum = self.stratum_of(bytes);
            let e = groups
                .entry((c.partition_key.clone(), c.local_segment, stratum))
                .or_default();
            e.0.push(c.id);
            e.1 += bytes;
        }
        for ((_, _, _), (ids, total_bytes)) in groups {
            if ids.len() >= self.config.merge_threshold
                && total_bytes <= self.config.max_container_bytes
            {
                let purgeable: u64 = ids
                    .iter()
                    .map(|id| store.delete_vector_of(*id).len() as u64)
                    .sum();
                return Some((ids, purgeable));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;
    use crate::projection::ProjectionDef;
    use crate::store::RowLocation;
    use std::sync::Arc;
    use vdb_types::{ColumnDef, DataType, Row, TableSchema};

    fn store() -> ProjectionStore {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("v", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_super", &[0], &[]);
        ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()))
    }

    fn mover() -> TupleMover {
        TupleMover::new(TupleMoverConfig {
            wos_moveout_bytes: 1024,
            strata_base_bytes: 256,
            strata_factor: 4,
            merge_threshold: 3,
            max_container_bytes: 1 << 30,
        })
    }

    fn row(i: i64) -> Row {
        vec![Value::Integer(i), Value::Integer(i * 2)]
    }

    #[test]
    fn stratum_quantization_is_exponential() {
        let m = mover();
        assert_eq!(m.stratum_of(0), 0);
        assert_eq!(m.stratum_of(256), 0);
        assert_eq!(m.stratum_of(257), 1);
        assert_eq!(m.stratum_of(1024), 1);
        assert_eq!(m.stratum_of(1025), 2);
        assert_eq!(m.stratum_of(4096), 2);
        assert_eq!(m.stratum_of(4097), 3);
    }

    #[test]
    fn moveout_respects_threshold() {
        let m = mover();
        let mut s = store();
        s.insert_wos(vec![row(1)], Epoch(1)).unwrap();
        let stats = m.run_moveout(&mut s, Epoch(1), false).unwrap();
        assert!(!stats.ran, "tiny WOS should not move out");
        // Stuff the WOS past the threshold.
        s.insert_wos((0..100).map(row).collect(), Epoch(2)).unwrap();
        let stats = m.run_moveout(&mut s, Epoch(2), false).unwrap();
        assert!(stats.ran);
        assert_eq!(s.wos_row_count(), 0);
    }

    #[test]
    fn mergeout_collapses_small_containers() {
        let m = mover();
        let mut s = store();
        // 6 little containers in stratum 0.
        for e in 1..=6u64 {
            s.insert_direct_ros(vec![row(e as i64)], Epoch(e)).unwrap();
        }
        assert_eq!(s.container_count(), 6);
        let stats = m.run_mergeout(&mut s, Epoch::ZERO).unwrap();
        assert!(stats.merges >= 1);
        assert!(
            s.container_count() < 6,
            "containers after: {}",
            s.container_count()
        );
        // Data intact.
        assert_eq!(s.visible_rows(Epoch(6)).unwrap().len(), 6);
        // History intact: snapshot at epoch 3 sees 3 rows.
        assert_eq!(s.visible_rows(Epoch(3)).unwrap().len(), 3);
    }

    #[test]
    fn mergeout_purges_ancient_deletes_only() {
        let m = mover();
        let mut s = store();
        for e in 1..=4u64 {
            s.insert_direct_ros(vec![row(e as i64)], Epoch(e)).unwrap();
        }
        let ids: Vec<ContainerId> = s.containers().map(|c| c.id).collect();
        s.mark_deleted(RowLocation::Ros(ids[0], 0), Epoch(5))
            .unwrap();
        s.mark_deleted(RowLocation::Ros(ids[1], 0), Epoch(9))
            .unwrap();
        // AHM = 6: the epoch-5 delete is ancient (purged); epoch-9 is not.
        let stats = m.run_mergeout(&mut s, Epoch(6)).unwrap();
        assert_eq!(stats.rows_purged, 1);
        // The epoch-9-deleted row must still be visible at snapshot 8.
        let visible_at_8 = s.visible_rows(Epoch(8)).unwrap();
        assert_eq!(visible_at_8.len(), 3);
        let visible_at_9 = s.visible_rows(Epoch(9)).unwrap();
        assert_eq!(visible_at_9.len(), 2);
    }

    #[test]
    fn mergeout_preserves_partition_boundaries() {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("v", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, "t_p", &[0], &[]);
        let spec = crate::partition::PartitionSpec::new(vdb_types::Expr::binary(
            vdb_types::BinOp::Mod,
            vdb_types::Expr::col(0, "id"),
            vdb_types::Expr::int(2),
        ));
        let mut s = ProjectionStore::new(def, Some(spec), 1, Arc::new(MemBackend::new()));
        for e in 1..=6u64 {
            s.insert_direct_ros(vec![row(e as i64)], Epoch(e)).unwrap();
        }
        let m = mover();
        m.run_mergeout(&mut s, Epoch::ZERO).unwrap();
        // Every container still holds a single partition key.
        for c in s.containers() {
            assert!(c.partition_key.is_some());
        }
        // Both partitions still present, data intact.
        assert_eq!(s.visible_rows(Epoch(6)).unwrap().len(), 6);
    }

    #[test]
    fn bounded_rewrites_tuples_merge_log_times() {
        // Insert 32 single-row containers and run mergeout after each; with
        // threshold 3 and factor 4, no tuple should be rewritten more than
        // ~log_4(total) + threshold times. We track rewrites via merge
        // counts: total containers_merged across all passes bounds
        // tuple-rewrite amplification.
        let m = mover();
        let mut s = store();
        let mut total_merged_containers = 0usize;
        for e in 1..=32u64 {
            s.insert_direct_ros(vec![row(e as i64)], Epoch(e)).unwrap();
            let stats = m.run_mergeout(&mut s, Epoch::ZERO).unwrap();
            total_merged_containers += stats.containers_merged;
        }
        assert_eq!(s.visible_rows(Epoch(32)).unwrap().len(), 32);
        // Naive merge-everything-every-time would be Θ(n²/threshold) ≈ 340+;
        // strata keep it linear-ish.
        assert!(
            total_merged_containers < 80,
            "merged containers = {total_merged_containers}"
        );
    }
}
