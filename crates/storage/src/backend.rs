//! Storage backends: where ROS container files physically live.
//!
//! The paper stores ROS containers "on a standard file system" (§3.7) and
//! implements backup by hard-linking data files (§5.2). [`FsBackend`] does
//! exactly that; [`MemBackend`] is a drop-in in-memory implementation used
//! by tests and by benchmarks that measure logical byte counts.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use vdb_types::{DbError, DbResult};

/// Abstract flat file store. Paths are slash-separated logical names;
/// containers never overwrite files (the storage system is append-only at
/// file granularity), so there is no partial-write handling.
pub trait StorageBackend: Send + Sync {
    fn write_file(&self, path: &str, bytes: &[u8]) -> DbResult<()>;
    fn read_file(&self, path: &str) -> DbResult<Vec<u8>>;
    fn delete_file(&self, path: &str) -> DbResult<()>;
    fn file_size(&self, path: &str) -> DbResult<u64>;
    /// All file paths under a prefix, sorted.
    fn list_files(&self, prefix: &str) -> Vec<String>;
    /// Hard-link `src` to `dst` (backup mechanism, §5.2). For backends
    /// without links this copies.
    fn hard_link(&self, src: &str, dst: &str) -> DbResult<()>;
    /// Total bytes across all files under a prefix.
    fn total_size(&self, prefix: &str) -> u64 {
        self.list_files(prefix)
            .iter()
            .filter_map(|p| self.file_size(p).ok())
            .sum()
    }
}

/// In-memory backend: a path → bytes map.
#[derive(Default)]
pub struct MemBackend {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl StorageBackend for MemBackend {
    fn write_file(&self, path: &str, bytes: &[u8]) -> DbResult<()> {
        self.files.write().insert(path.to_string(), bytes.to_vec());
        Ok(())
    }

    fn read_file(&self, path: &str) -> DbResult<Vec<u8>> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("file {path}")))
    }

    fn delete_file(&self, path: &str) -> DbResult<()> {
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| DbError::NotFound(format!("file {path}")))
    }

    fn file_size(&self, path: &str) -> DbResult<u64> {
        self.files
            .read()
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| DbError::NotFound(format!("file {path}")))
    }

    fn list_files(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    fn hard_link(&self, src: &str, dst: &str) -> DbResult<()> {
        let bytes = self.read_file(src)?;
        self.files.write().insert(dst.to_string(), bytes);
        Ok(())
    }
}

/// Filesystem backend rooted at a directory.
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    pub fn new(root: impl Into<PathBuf>) -> DbResult<FsBackend> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FsBackend { root })
    }

    fn resolve(&self, path: &str) -> DbResult<PathBuf> {
        if path.contains("..") {
            return Err(DbError::Io(format!("path escapes root: {path}")));
        }
        Ok(self.root.join(path))
    }
}

impl StorageBackend for FsBackend {
    fn write_file(&self, path: &str, bytes: &[u8]) -> DbResult<()> {
        let full = self.resolve(path)?;
        if let Some(parent) = full.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(full, bytes)?;
        Ok(())
    }

    fn read_file(&self, path: &str) -> DbResult<Vec<u8>> {
        Ok(std::fs::read(self.resolve(path)?)?)
    }

    fn delete_file(&self, path: &str) -> DbResult<()> {
        Ok(std::fs::remove_file(self.resolve(path)?)?)
    }

    fn file_size(&self, path: &str) -> DbResult<u64> {
        Ok(std::fs::metadata(self.resolve(path)?)?.len())
    }

    fn list_files(&self, prefix: &str) -> Vec<String> {
        fn walk(dir: &std::path::Path, root: &std::path::Path, out: &mut Vec<String>) {
            let Ok(entries) = std::fs::read_dir(dir) else {
                return;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, root, out);
                } else if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out);
        out.retain(|p| p.starts_with(prefix));
        out.sort();
        out
    }

    fn hard_link(&self, src: &str, dst: &str) -> DbResult<()> {
        let s = self.resolve(src)?;
        let d = self.resolve(dst)?;
        if let Some(parent) = d.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::hard_link(s, d)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn StorageBackend) {
        backend.write_file("proj/a/1.dat", b"hello").unwrap();
        backend.write_file("proj/a/1.idx", b"xy").unwrap();
        backend.write_file("proj/b/2.dat", b"zzz").unwrap();
        assert_eq!(backend.read_file("proj/a/1.dat").unwrap(), b"hello");
        assert_eq!(backend.file_size("proj/a/1.idx").unwrap(), 2);
        assert_eq!(
            backend.list_files("proj/a/"),
            vec!["proj/a/1.dat".to_string(), "proj/a/1.idx".to_string()]
        );
        assert_eq!(backend.total_size("proj/"), 10);
        backend.hard_link("proj/a/1.dat", "backup/1.dat").unwrap();
        assert_eq!(backend.read_file("backup/1.dat").unwrap(), b"hello");
        // Deleting the original leaves the backup readable (link semantics).
        backend.delete_file("proj/a/1.dat").unwrap();
        assert_eq!(backend.read_file("backup/1.dat").unwrap(), b"hello");
        assert!(backend.read_file("proj/a/1.dat").is_err());
        // Deleting a missing file may error or no-op depending on backend.
        let _ = backend.delete_file("nope");
    }

    #[test]
    fn mem_backend() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn fs_backend() {
        let dir = std::env::temp_dir().join(format!("vdb-fs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&FsBackend::new(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_backend_rejects_escape() {
        let dir = std::env::temp_dir().join(format!("vdb-fs-esc-{}", std::process::id()));
        let b = FsBackend::new(&dir).unwrap();
        assert!(b.write_file("../evil", b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
