//! Storage backends: where ROS container files physically live.
//!
//! The paper stores ROS containers "on a standard file system" (§3.7) and
//! implements backup by hard-linking data files (§5.2). [`FsBackend`] does
//! exactly that; [`MemBackend`] is a drop-in in-memory implementation used
//! by tests and by benchmarks that measure logical byte counts.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::PathBuf;
use vdb_types::{DbError, DbResult};

/// Abstract flat file store. Paths are slash-separated logical names.
///
/// The durability protocol (manifest rewrites, commit markers, redo
/// records, the DDL log) treats every write as a whole-file atomic commit
/// point: after a crash, a file either holds its complete new contents or
/// whatever was there before — never a torn mix. Implementations must
/// uphold that; [`FsBackend`] does so with write-temp → fsync → rename →
/// fsync-directory.
pub trait StorageBackend: Send + Sync {
    /// Atomically replace (or create) `path` with `bytes`.
    fn write_file(&self, path: &str, bytes: &[u8]) -> DbResult<()>;
    fn read_file(&self, path: &str) -> DbResult<Vec<u8>>;
    fn delete_file(&self, path: &str) -> DbResult<()>;
    fn file_size(&self, path: &str) -> DbResult<u64>;
    /// All file paths under a prefix, sorted.
    fn list_files(&self, prefix: &str) -> Vec<String>;
    /// Hard-link `src` to `dst` (backup mechanism, §5.2). For backends
    /// without links this copies.
    fn hard_link(&self, src: &str, dst: &str) -> DbResult<()>;
    /// Total bytes across all files under a prefix.
    fn total_size(&self, prefix: &str) -> u64 {
        self.list_files(prefix)
            .iter()
            .filter_map(|p| self.file_size(p).ok())
            .sum()
    }
}

/// In-memory backend: a path → bytes map.
#[derive(Default)]
pub struct MemBackend {
    files: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemBackend {
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl StorageBackend for MemBackend {
    fn write_file(&self, path: &str, bytes: &[u8]) -> DbResult<()> {
        self.files.write().insert(path.to_string(), bytes.to_vec());
        Ok(())
    }

    fn read_file(&self, path: &str) -> DbResult<Vec<u8>> {
        self.files
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("file {path}")))
    }

    fn delete_file(&self, path: &str) -> DbResult<()> {
        self.files
            .write()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| DbError::NotFound(format!("file {path}")))
    }

    fn file_size(&self, path: &str) -> DbResult<u64> {
        self.files
            .read()
            .get(path)
            .map(|b| b.len() as u64)
            .ok_or_else(|| DbError::NotFound(format!("file {path}")))
    }

    fn list_files(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    fn hard_link(&self, src: &str, dst: &str) -> DbResult<()> {
        let bytes = self.read_file(src)?;
        self.files.write().insert(dst.to_string(), bytes);
        Ok(())
    }
}

/// Filesystem backend rooted at a directory.
pub struct FsBackend {
    root: PathBuf,
}

impl FsBackend {
    pub fn new(root: impl Into<PathBuf>) -> DbResult<FsBackend> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(FsBackend { root })
    }

    fn resolve(&self, path: &str) -> DbResult<PathBuf> {
        if path.contains("..") {
            return Err(DbError::Io(format!("path escapes root: {path}")));
        }
        Ok(self.root.join(path))
    }
}

impl StorageBackend for FsBackend {
    fn write_file(&self, path: &str, bytes: &[u8]) -> DbResult<()> {
        use std::io::Write;

        let full = self.resolve(path)?;
        let parent = full
            .parent()
            .ok_or_else(|| DbError::Io(format!("no parent directory for {path}")))?
            .to_path_buf();
        std::fs::create_dir_all(&parent)?;

        // Write-temp → fsync → rename → fsync-directory, so a kill -9 or
        // power loss leaves either the old file or the new one, never a
        // torn mix. Every manifest/marker/redo commit point relies on
        // this. The temp name carries pid + a counter so concurrent
        // writers to the same path can't clobber each other's temp file.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let base = full
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let tmp = parent.join(format!(
            ".{base}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
        ));
        let result = (|| -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            std::fs::rename(&tmp, &full)?;
            // The rename is only durable once the directory entry is; on
            // platforms where directories can't be fsynced this is
            // best-effort.
            if let Ok(dir) = std::fs::File::open(&parent) {
                let _ = dir.sync_all();
            }
            Ok(())
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        Ok(result?)
    }

    fn read_file(&self, path: &str) -> DbResult<Vec<u8>> {
        Ok(std::fs::read(self.resolve(path)?)?)
    }

    fn delete_file(&self, path: &str) -> DbResult<()> {
        Ok(std::fs::remove_file(self.resolve(path)?)?)
    }

    fn file_size(&self, path: &str) -> DbResult<u64> {
        Ok(std::fs::metadata(self.resolve(path)?)?.len())
    }

    fn list_files(&self, prefix: &str) -> Vec<String> {
        fn walk(dir: &std::path::Path, root: &std::path::Path, out: &mut Vec<String>) {
            let Ok(entries) = std::fs::read_dir(dir) else {
                return;
            };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, root, out);
                } else if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root, &self.root, &mut out);
        // Hide temp files a crash mid-write_file may have stranded: they
        // are debris, not logical files, and must not confuse recovery.
        out.retain(|p| {
            p.starts_with(prefix)
                && !p
                    .rsplit('/')
                    .next()
                    .is_some_and(|name| name.starts_with('.') && name.contains(".tmp."))
        });
        out.sort();
        out
    }

    fn hard_link(&self, src: &str, dst: &str) -> DbResult<()> {
        let s = self.resolve(src)?;
        let d = self.resolve(dst)?;
        if let Some(parent) = d.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::hard_link(s, d)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: &dyn StorageBackend) {
        backend.write_file("proj/a/1.dat", b"hello").unwrap();
        backend.write_file("proj/a/1.idx", b"xy").unwrap();
        backend.write_file("proj/b/2.dat", b"zzz").unwrap();
        assert_eq!(backend.read_file("proj/a/1.dat").unwrap(), b"hello");
        assert_eq!(backend.file_size("proj/a/1.idx").unwrap(), 2);
        assert_eq!(
            backend.list_files("proj/a/"),
            vec!["proj/a/1.dat".to_string(), "proj/a/1.idx".to_string()]
        );
        assert_eq!(backend.total_size("proj/"), 10);
        backend.hard_link("proj/a/1.dat", "backup/1.dat").unwrap();
        assert_eq!(backend.read_file("backup/1.dat").unwrap(), b"hello");
        // Deleting the original leaves the backup readable (link semantics).
        backend.delete_file("proj/a/1.dat").unwrap();
        assert_eq!(backend.read_file("backup/1.dat").unwrap(), b"hello");
        assert!(backend.read_file("proj/a/1.dat").is_err());
        // Deleting a missing file may error or no-op depending on backend.
        let _ = backend.delete_file("nope");
    }

    #[test]
    fn mem_backend() {
        exercise(&MemBackend::new());
    }

    #[test]
    fn fs_backend() {
        let dir = std::env::temp_dir().join(format!("vdb-fs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise(&FsBackend::new(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_backend_overwrite_is_clean() {
        let dir = std::env::temp_dir().join(format!("vdb-fs-atomic-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let b = FsBackend::new(&dir).unwrap();
        b.write_file("p/manifest", b"v1").unwrap();
        b.write_file("p/manifest", b"version two, longer").unwrap();
        assert_eq!(b.read_file("p/manifest").unwrap(), b"version two, longer");
        // No temp debris visible, and a stranded temp file from a
        // simulated crash stays hidden from logical listings.
        std::fs::write(dir.join("p/.manifest.tmp.999.0"), b"torn").unwrap();
        assert_eq!(b.list_files("p/"), vec!["p/manifest".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_backend_rejects_escape() {
        let dir = std::env::temp_dir().join(format!("vdb-fs-esc-{}", std::process::id()));
        let b = FsBackend::new(&dir).unwrap();
        assert!(b.write_file("../evil", b"x").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
