//! Canonical Huffman entropy coder for LZ77 token streams.
//!
//! Alphabet layout (a simplified DEFLATE):
//! * **lit/len alphabet** — symbols `0..=255` are literal bytes; symbols
//!   `256..` are match-length *buckets*. A value `v = len - MIN_MATCH` is
//!   coded as bucket `b = floor(log2(v+1))` followed by `b` extra raw bits.
//! * **distance alphabet** — buckets of `v = dist - 1` with the same scheme.
//!
//! Code lengths are limited to [`MAX_CODE_LEN`] bits; the header stores the
//! two length tables in 4 bits per symbol. Decoding uses a flat
//! `2^MAX_CODE_LEN` lookup table per alphabet.
//!
//! The [`HuffmanEncoder`]/[`HuffmanDecoder`] pair is also exposed directly
//! for `vdb-encoding`'s Compressed Common Delta scheme, which entropy-codes
//! dictionary indexes (§3.4.1, encoding type 6).

use crate::bitio::{BitReader, BitWriter};
use crate::error::{corrupt, CompressError};
use crate::lz77::{Token, MIN_MATCH};

/// Maximum Huffman code length in bits.
pub const MAX_CODE_LEN: u32 = 15;

const NUM_LITERALS: usize = 256;
/// len - MIN_MATCH ∈ [0, 254] → buckets 0..=7.
const NUM_LEN_BUCKETS: usize = 8;
const LITLEN_SYMBOLS: usize = NUM_LITERALS + NUM_LEN_BUCKETS;
/// dist - 1 ∈ [0, 32766] → buckets 0..=14.
const NUM_DIST_BUCKETS: usize = 15;

/// Gamma-style bucketing: value `v` → `(bucket, extra_bits_value)` where the
/// bucket index is also the extra-bit width.
#[inline]
fn bucket_of(v: u32) -> (usize, u64, u32) {
    let b = 31 - (v + 1).leading_zeros();
    let extra = u64::from((v + 1) - (1 << b));
    (b as usize, extra, b)
}

#[inline]
fn unbucket(b: usize, extra: u64) -> u32 {
    ((1u64 << b) + extra - 1) as u32
}

// ---------------------------------------------------------------------------
// Code-length construction (length-limited Huffman)
// ---------------------------------------------------------------------------

/// Build Huffman code lengths for the given symbol frequencies, limited to
/// `max_len` bits. Zero-frequency symbols get length 0 (absent).
pub fn build_code_lengths(freqs: &[u64], max_len: u32) -> Vec<u32> {
    let mut freqs = freqs.to_vec();
    loop {
        let lengths = huffman_depths(&freqs);
        let worst = lengths.iter().copied().max().unwrap_or(0);
        if worst <= max_len {
            return lengths;
        }
        // Flatten the distribution and retry; converges quickly because the
        // ratio between min and max frequency halves each round.
        for f in freqs.iter_mut() {
            if *f > 0 {
                *f = (*f >> 1) + 1;
            }
        }
    }
}

/// Plain (unlimited) Huffman depths via pairwise merging.
fn huffman_depths(freqs: &[u64]) -> Vec<u32> {
    #[derive(PartialEq, Eq)]
    struct Node {
        freq: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reversed for min-heap; tie-break on id for determinism.
            other
                .freq
                .cmp(&self.freq)
                .then_with(|| other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = freqs.len();
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lengths = vec![0u32; n];
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    // parent[k] for internal/leaf node ids; leaves are 0..n, internals n+.
    let mut parent = vec![usize::MAX; n + present.len()];
    let mut heap = std::collections::BinaryHeap::new();
    for &i in &present {
        heap.push(Node {
            freq: freqs[i],
            id: i,
        });
    }
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node {
            freq: a.freq + b.freq,
            id: next_id,
        });
        next_id += 1;
    }
    for &i in &present {
        let mut d = 0;
        let mut j = i;
        while parent[j] != usize::MAX {
            j = parent[j];
            d += 1;
        }
        lengths[i] = d;
    }
    lengths
}

/// Assign canonical codes (MSB-first numbering) from code lengths. Returns
/// codes with bits already reversed for LSB-first emission.
pub fn canonical_codes(lengths: &[u32]) -> Vec<u64> {
    let max = lengths.iter().copied().max().unwrap_or(0);
    let mut bl_count = vec![0u64; (max + 1) as usize];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u64; (max + 2) as usize];
    let mut code = 0u64;
    for bits in 1..=max {
        code = (code + bl_count[(bits - 1) as usize]) << 1;
        next_code[bits as usize] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                return 0;
            }
            let c = next_code[l as usize];
            next_code[l as usize] += 1;
            reverse_bits(c, l)
        })
        .collect()
}

#[inline]
fn reverse_bits(v: u64, n: u32) -> u64 {
    let mut out = 0u64;
    for i in 0..n {
        out |= ((v >> i) & 1) << (n - 1 - i);
    }
    out
}

// ---------------------------------------------------------------------------
// Encoder / decoder over a generic alphabet
// ---------------------------------------------------------------------------

/// Encodes symbols of one alphabet with canonical Huffman codes.
pub struct HuffmanEncoder {
    codes: Vec<u64>,
    lengths: Vec<u32>,
}

impl HuffmanEncoder {
    /// Build from symbol frequencies.
    pub fn from_freqs(freqs: &[u64]) -> HuffmanEncoder {
        let lengths = build_code_lengths(freqs, MAX_CODE_LEN);
        let codes = canonical_codes(&lengths);
        HuffmanEncoder { codes, lengths }
    }

    pub fn lengths(&self) -> &[u32] {
        &self.lengths
    }

    #[inline]
    pub fn emit(&self, w: &mut BitWriter, sym: usize) {
        debug_assert!(self.lengths[sym] > 0, "emitting absent symbol {sym}");
        w.write_bits(self.codes[sym], self.lengths[sym]);
    }

    /// Estimated encoded size in bits of `count` occurrences of `sym`.
    pub fn cost_bits(&self, sym: usize) -> u32 {
        self.lengths[sym]
    }
}

/// Flat-table canonical Huffman decoder.
pub struct HuffmanDecoder {
    /// `table[peek] = (symbol << 4) | code_len`; 0 means invalid.
    table: Vec<u32>,
}

impl HuffmanDecoder {
    pub fn from_lengths(lengths: &[u32]) -> Result<HuffmanDecoder, CompressError> {
        let codes = canonical_codes(lengths);
        let mut table = vec![0u32; 1 << MAX_CODE_LEN];
        for (sym, (&len, &code)) in lengths.iter().zip(&codes).enumerate() {
            if len == 0 {
                continue;
            }
            if len > MAX_CODE_LEN {
                return Err(corrupt("code length exceeds limit"));
            }
            let step = 1usize << len;
            let mut idx = code as usize;
            while idx < table.len() {
                if table[idx] != 0 {
                    return Err(corrupt("overlapping huffman codes"));
                }
                table[idx] = ((sym as u32) << 4) | len;
                idx += step;
            }
        }
        Ok(HuffmanDecoder { table })
    }

    #[inline]
    pub fn read(&self, r: &mut BitReader<'_>) -> Result<usize, CompressError> {
        let peek = r.peek_bits(MAX_CODE_LEN) as usize;
        let entry = self.table[peek];
        if entry == 0 {
            return Err(corrupt("invalid huffman code"));
        }
        let len = entry & 0xf;
        r.consume(len)?;
        Ok((entry >> 4) as usize)
    }
}

// ---------------------------------------------------------------------------
// Token-stream (de)serialization
// ---------------------------------------------------------------------------

/// Entropy-code an LZ77 token stream into bytes (header + bitstream).
pub fn encode_tokens(tokens: &[Token]) -> Vec<u8> {
    let mut litlen_freq = vec![0u64; LITLEN_SYMBOLS];
    let mut dist_freq = vec![0u64; NUM_DIST_BUCKETS];
    for t in tokens {
        match *t {
            Token::Literal(b) => litlen_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (lb, _, _) = bucket_of(u32::from(len) - MIN_MATCH as u32);
                litlen_freq[NUM_LITERALS + lb] += 1;
                let (db, _, _) = bucket_of(u32::from(dist) - 1);
                dist_freq[db] += 1;
            }
        }
    }
    let litlen = HuffmanEncoder::from_freqs(&litlen_freq);
    let dist = HuffmanEncoder::from_freqs(&dist_freq);

    // Header: code lengths, 4 bits per symbol (length ≤ 15).
    let mut w = BitWriter::new();
    for &l in litlen.lengths() {
        w.write_bits(u64::from(l), 4);
    }
    for &l in dist.lengths() {
        w.write_bits(u64::from(l), 4);
    }
    for t in tokens {
        match *t {
            Token::Literal(b) => litlen.emit(&mut w, b as usize),
            Token::Match { len, dist: d } => {
                let (lb, lextra, lbits) = bucket_of(u32::from(len) - MIN_MATCH as u32);
                litlen.emit(&mut w, NUM_LITERALS + lb);
                w.write_bits(lextra, lbits);
                let (db, dextra, dbits) = bucket_of(u32::from(d) - 1);
                dist.emit(&mut w, db);
                w.write_bits(dextra, dbits);
            }
        }
    }
    w.finish()
}

/// Decode a token stream until it reproduces `orig_len` output bytes.
pub fn decode_tokens(bytes: &[u8], orig_len: usize) -> Result<Vec<Token>, CompressError> {
    let mut r = BitReader::new(bytes);
    let mut litlen_lengths = vec![0u32; LITLEN_SYMBOLS];
    for l in litlen_lengths.iter_mut() {
        *l = r.read_bits(4)? as u32;
    }
    let mut dist_lengths = vec![0u32; NUM_DIST_BUCKETS];
    for l in dist_lengths.iter_mut() {
        *l = r.read_bits(4)? as u32;
    }
    let litlen = HuffmanDecoder::from_lengths(&litlen_lengths)?;
    let has_dist = dist_lengths.iter().any(|&l| l > 0);
    let dist = if has_dist {
        Some(HuffmanDecoder::from_lengths(&dist_lengths)?)
    } else {
        None
    };

    let mut tokens = Vec::new();
    let mut produced = 0usize;
    while produced < orig_len {
        let sym = litlen.read(&mut r)?;
        if sym < NUM_LITERALS {
            tokens.push(Token::Literal(sym as u8));
            produced += 1;
        } else {
            let lb = sym - NUM_LITERALS;
            let lextra = r.read_bits(lb as u32)?;
            let len = unbucket(lb, lextra) + MIN_MATCH as u32;
            let dist_dec = dist
                .as_ref()
                .ok_or_else(|| corrupt("match token without distance table"))?;
            let db = dist_dec.read(&mut r)?;
            let dextra = r.read_bits(db as u32)?;
            let d = unbucket(db, dextra) + 1;
            if len as usize > crate::lz77::MAX_MATCH {
                return Err(corrupt("match length out of range"));
            }
            tokens.push(Token::Match {
                len: len as u16,
                dist: d as u16,
            });
            produced += len as usize;
        }
    }
    if produced != orig_len {
        return Err(corrupt("token stream overruns declared length"));
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_round_trip() {
        for v in [0u32, 1, 2, 3, 7, 8, 254, 255, 1000, 32_766] {
            let (b, e, bits) = bucket_of(v);
            assert_eq!(unbucket(b, e), v);
            assert_eq!(b as u32, bits);
        }
        assert_eq!(bucket_of(0).0, 0, "v=0 is bucket 0 (no extra bits)");
        assert_eq!(bucket_of(254).0, 7, "max length value fits 8 buckets");
        assert_eq!(bucket_of(32_766).0, 14, "max distance fits 15 buckets");
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let freqs = vec![100, 50, 25, 12, 6, 3, 1, 1];
        let lengths = build_code_lengths(&freqs, MAX_CODE_LEN);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-9, "Kraft inequality violated: {kraft}");
        // More frequent symbols get shorter (or equal) codes.
        assert!(lengths[0] <= lengths[7]);
    }

    #[test]
    fn length_limit_is_enforced() {
        // Fibonacci-ish frequencies force deep trees without limiting.
        let mut freqs = vec![0u64; 40];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_code_lengths(&freqs, MAX_CODE_LEN);
        assert!(lengths.iter().all(|&l| l <= MAX_CODE_LEN));
        assert!(lengths.iter().all(|&l| l > 0), "all symbols present");
    }

    #[test]
    fn single_symbol_alphabet() {
        let lengths = build_code_lengths(&[0, 42, 0], MAX_CODE_LEN);
        assert_eq!(lengths, vec![0, 1, 0]);
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        let enc = HuffmanEncoder::from_freqs(&[0, 42, 0]);
        let mut w = BitWriter::new();
        for _ in 0..5 {
            enc.emit(&mut w, 1);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for _ in 0..5 {
            assert_eq!(dec.read(&mut r).unwrap(), 1);
        }
    }

    #[test]
    fn encoder_decoder_round_trip_random_symbols() {
        let mut freqs = vec![0u64; 64];
        let mut x = 5u64;
        let mut syms = Vec::new();
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Skewed distribution.
            let s = ((x % 64) * (x % 7) / 7 % 64) as usize;
            syms.push(s);
            freqs[s] += 1;
        }
        let enc = HuffmanEncoder::from_freqs(&freqs);
        let mut w = BitWriter::new();
        for &s in &syms {
            enc.emit(&mut w, s);
        }
        let bytes = w.finish();
        let dec = HuffmanDecoder::from_lengths(enc.lengths()).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(dec.read(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn token_stream_round_trip() {
        let tokens = vec![
            Token::Literal(b'h'),
            Token::Literal(b'i'),
            Token::Match { len: 10, dist: 2 },
            Token::Literal(0),
            Token::Match {
                len: 258,
                dist: 32_767,
            },
            Token::Match { len: 4, dist: 1 },
        ];
        let orig_len: usize = tokens
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        let bytes = encode_tokens(&tokens);
        let back = decode_tokens(&bytes, orig_len).unwrap();
        assert_eq!(back, tokens);
    }

    #[test]
    fn literal_only_stream_has_no_distance_table_use() {
        let tokens: Vec<Token> = b"hello world".iter().map(|&b| Token::Literal(b)).collect();
        let bytes = encode_tokens(&tokens);
        let back = decode_tokens(&bytes, 11).unwrap();
        assert_eq!(back, tokens);
    }
}
