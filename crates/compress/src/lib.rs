//! `vdb-compress` — a from-scratch general-purpose byte compressor.
//!
//! Table 4 of the paper compares Vertica's type-aware columnar encodings
//! against **gzip** on two datasets. We cannot ship zlib, so this crate
//! implements a compressor of the same family: LZ77 match finding over a
//! 32 KiB sliding window followed by canonical Huffman entropy coding of
//! literals, match lengths and distances (the DEFLATE recipe, with a
//! simplified container format). On the paper's inputs it achieves
//! compression ratios in the same class as gzip, which is what the
//! experiment needs — the point of Table 4 is the *gap* between a generic
//! byte compressor and sorted columnar encoding.
//!
//! The crate is also used by `vdb-encoding`'s *Compressed Common Delta*
//! scheme, which the paper describes as storing "indexes into the
//! dictionary using entropy coding": we reuse [`huffman`] for that.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod bitio;
pub mod huffman;
pub mod lz77;

use error::{corrupt, CompressError};

/// Error type local to this crate (kept dependency-free of `vdb-types` so
/// the compressor is reusable standalone).
pub mod error {
    use std::fmt;

    /// Decompression failure: the input is not a valid stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct CompressError(pub String);

    impl fmt::Display for CompressError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "compress error: {}", self.0)
        }
    }

    impl std::error::Error for CompressError {}

    pub(crate) fn corrupt(msg: &str) -> CompressError {
        CompressError(msg.to_string())
    }
}

/// Container tag for a raw (stored) block — used when compression would
/// expand the input.
const FORMAT_STORED: u8 = 0;
/// Container tag for an LZ77+Huffman block.
const FORMAT_COMPRESSED: u8 = 1;

/// Compress a byte slice. Never fails; falls back to stored format when the
/// input is incompressible.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let tokens = lz77::tokenize(input);
    let body = huffman::encode_tokens(&tokens);
    // 9-byte header: format tag + original length (u64 LE).
    let mut out = Vec::with_capacity(body.len().min(input.len()) + 9);
    if body.len() >= input.len() {
        out.push(FORMAT_STORED);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(input);
    } else {
        out.push(FORMAT_COMPRESSED);
        out.extend_from_slice(&(input.len() as u64).to_le_bytes());
        out.extend_from_slice(&body);
    }
    out
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CompressError> {
    if input.len() < 9 {
        return Err(corrupt("stream too short"));
    }
    let format = input[0];
    let orig_len = u64::from_le_bytes(input[1..9].try_into().unwrap()) as usize;
    let body = &input[9..];
    match format {
        FORMAT_STORED => {
            if body.len() != orig_len {
                return Err(corrupt("stored block length mismatch"));
            }
            Ok(body.to_vec())
        }
        FORMAT_COMPRESSED => {
            let tokens = huffman::decode_tokens(body, orig_len)?;
            lz77::detokenize(&tokens, orig_len)
        }
        _ => Err(corrupt("unknown format tag")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_and_tiny() {
        for input in [&b""[..], b"a", b"ab", b"abc"] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input);
        }
    }

    #[test]
    fn round_trip_repetitive() {
        let input: Vec<u8> = b"the quick brown fox ".repeat(500);
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        assert!(
            c.len() < input.len() / 5,
            "repetitive text should compress >5x, got {} -> {}",
            input.len(),
            c.len()
        );
    }

    #[test]
    fn incompressible_falls_back_to_stored() {
        // A short pseudo-random byte string with no repeats.
        let mut x: u64 = 0x12345;
        let input: Vec<u8> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + 9);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn digit_text_compresses_about_2x() {
        // The Table 4 "1M random integers as text" case in miniature:
        // newline-separated random digits compress roughly 2x under a
        // byte-level compressor because digits use a fraction of the byte
        // alphabet.
        let mut x: u64 = 42;
        let mut text = String::new();
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            text.push_str(&format!("{}\n", 1 + x % 10_000_000));
        }
        let input = text.as_bytes();
        let c = compress(input);
        let ratio = input.len() as f64 / c.len() as f64;
        assert!(
            ratio > 1.6 && ratio < 3.5,
            "digit text ratio should be ~2x (gzip-class), got {ratio:.2}"
        );
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn long_run_of_one_byte() {
        let input = vec![7u8; 100_000];
        let c = compress(&input);
        assert!(c.len() < 2_000, "RLE-like input must compress hard");
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        assert!(decompress(b"").is_err());
        assert!(decompress(&[9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        let mut c = compress(&b"hello hello hello hello hello hello hello".repeat(20));
        c.truncate(c.len() / 2);
        assert!(decompress(&c).is_err());
    }
}
