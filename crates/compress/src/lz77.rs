//! LZ77 sliding-window match finder.
//!
//! Produces a token stream of literals and `(length, distance)` back
//! references over a 32 KiB window, using a chained hash table over 4-byte
//! prefixes — the same structure gzip's deflate uses, with a bounded chain
//! walk for speed.

use crate::error::{corrupt, CompressError};

/// Window size — matches may reach back at most this far.
pub const WINDOW: usize = 32 * 1024;
/// Minimum match length worth emitting as a back reference.
pub const MIN_MATCH: usize = 4;
/// Maximum match length encoded by a single token.
pub const MAX_MATCH: usize = 258;
/// How many hash-chain candidates to examine per position.
const MAX_CHAIN: usize = 48;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    Literal(u8),
    /// Copy `len` bytes starting `dist` bytes back from the current output
    /// position. `MIN_MATCH ≤ len ≤ MAX_MATCH`, `1 ≤ dist < WINDOW`
    /// (strictly below so `dist` fits `u16` and the 15-bucket distance
    /// alphabet).
    Match {
        len: u16,
        dist: u16,
    },
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let b = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (b.wrapping_mul(2_654_435_761) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Tokenize `input` into literals and matches.
pub fn tokenize(input: &[u8]) -> Vec<Token> {
    let n = input.len();
    let mut tokens = Vec::with_capacity(n / 3 + 8);
    if n < MIN_MATCH {
        tokens.extend(input.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    // head[h] = most recent position with hash h; prev[i % WINDOW] = previous
    // position in the chain for position i.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0usize;
    while i < n {
        if i + MIN_MATCH > n {
            tokens.push(Token::Literal(input[i]));
            i += 1;
            continue;
        }
        let h = hash4(input, i);
        // Walk the chain looking for the longest match in the window.
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        let mut cand = head[h];
        let mut chain = 0usize;
        while cand != usize::MAX && chain < MAX_CHAIN {
            if i - cand >= WINDOW {
                break;
            }
            // Quick reject on the byte just past the current best.
            if best_len == 0 || input.get(cand + best_len) == input.get(i + best_len) {
                let max_len = MAX_MATCH.min(n - i);
                let mut l = 0usize;
                while l < max_len && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l >= max_len {
                        break;
                    }
                }
            }
            cand = prev[cand % WINDOW];
            chain += 1;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u16,
                dist: best_dist as u16,
            });
            // Insert hash entries for all covered positions so later data
            // can match into the middle of this run.
            let end = (i + best_len).min(n - MIN_MATCH + 1);
            let mut j = i;
            while j < end {
                let hj = hash4(input, j);
                prev[j % WINDOW] = head[hj];
                head[hj] = j;
                j += 1;
            }
            i += best_len;
        } else {
            prev[i % WINDOW] = head[h];
            head[h] = i;
            tokens.push(Token::Literal(input[i]));
            i += 1;
        }
    }
    tokens
}

/// Reconstruct the original bytes from a token stream.
pub fn detokenize(tokens: &[Token], expected_len: usize) -> Result<Vec<u8>, CompressError> {
    let mut out = Vec::with_capacity(expected_len);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let len = len as usize;
                let dist = dist as usize;
                if dist == 0 || dist > out.len() {
                    return Err(corrupt("match distance out of range"));
                }
                let start = out.len() - dist;
                // Overlapping copies (dist < len) are valid and replicate.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    if out.len() != expected_len {
        return Err(corrupt("decompressed length mismatch"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) {
        let tokens = tokenize(input);
        let back = detokenize(&tokens, input.len()).unwrap();
        assert_eq!(back, input);
    }

    #[test]
    fn literals_only_for_short_input() {
        let tokens = tokenize(b"abc");
        assert_eq!(
            tokens,
            vec![
                Token::Literal(b'a'),
                Token::Literal(b'b'),
                Token::Literal(b'c')
            ]
        );
    }

    #[test]
    fn finds_repeats() {
        let input = b"abcdabcdabcdabcd";
        let tokens = tokenize(input);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "should emit at least one back reference: {tokens:?}"
        );
        round_trip(input);
    }

    #[test]
    fn overlapping_match_replicates() {
        // "aaaa..." produces dist=1 matches that overlap their own output.
        let input = vec![b'a'; 1000];
        let tokens = tokenize(&input);
        assert!(tokens.len() < 20, "run should collapse: {}", tokens.len());
        round_trip(&input);
    }

    #[test]
    fn round_trip_structured_and_random() {
        let mut x: u64 = 7;
        let random: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        round_trip(&random);
        let structured: Vec<u8> = b"header,value,12345\n".repeat(300);
        round_trip(&structured);
        round_trip(b"");
    }

    #[test]
    fn matches_reach_across_but_not_beyond_window() {
        // A repeated phrase separated by > WINDOW unique-ish filler must not
        // produce an out-of-window reference; detokenize validates this.
        let phrase = b"the rain in spain falls mainly on the plain";
        let mut input = Vec::new();
        input.extend_from_slice(phrase);
        let mut x = 99u64;
        for _ in 0..(WINDOW + 100) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            input.push((x & 0xff) as u8);
        }
        input.extend_from_slice(phrase);
        round_trip(&input);
    }

    #[test]
    fn distances_stay_strictly_below_window() {
        // A phrase repeated at exactly WINDOW distance must not produce a
        // dist=WINDOW token (it would overflow u16). Build input where the
        // only match candidates sit exactly WINDOW back.
        let phrase: Vec<u8> = (0..64u8).collect();
        let mut input = Vec::new();
        input.extend_from_slice(&phrase);
        let mut x = 3u64;
        while input.len() < WINDOW {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            input.push(128 + (x & 0x7f) as u8);
        }
        input.truncate(WINDOW);
        input.extend_from_slice(&phrase); // candidates exactly WINDOW back
        let tokens = tokenize(&input);
        for t in &tokens {
            if let Token::Match { dist, .. } = t {
                assert!((*dist as usize) < WINDOW);
            }
        }
        round_trip(&input);
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let bad = vec![Token::Match { len: 4, dist: 5 }];
        assert!(detokenize(&bad, 4).is_err());
    }
}
