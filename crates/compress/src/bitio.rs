//! Bit-granular readers and writers (LSB-first, DEFLATE bit order).

use crate::error::{corrupt, CompressError};

/// Accumulates bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated but not yet flushed (low bits are oldest).
    acc: u64,
    /// Number of valid bits in `acc` (always < 8 after `flush_bytes`).
    nbits: u32,
}

impl BitWriter {
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Write the low `n` bits of `v` (n ≤ 57).
    pub fn write_bits(&mut self, v: u64, n: u32) {
        debug_assert!(n <= 57);
        debug_assert!(n == 64 || v < (1u64 << n));
        self.acc |= v << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push((self.acc & 0xff) as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    /// Pad to a byte boundary with zero bits and return the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push((self.acc & 0xff) as u8);
        }
        self.out
    }

    /// Current length in bits (for size estimation).
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.nbits as usize
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    byte_pos: usize,
    acc: u64,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> BitReader<'a> {
        BitReader {
            buf,
            byte_pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn refill(&mut self) {
        while self.nbits <= 56 && self.byte_pos < self.buf.len() {
            self.acc |= u64::from(self.buf[self.byte_pos]) << self.nbits;
            self.byte_pos += 1;
            self.nbits += 8;
        }
    }

    /// Read exactly `n` bits (n ≤ 57); errors at end of stream.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, CompressError> {
        debug_assert!(n <= 57);
        if n == 0 {
            return Ok(0);
        }
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(corrupt("bitstream exhausted"));
            }
        }
        let v = self.acc & ((1u64 << n) - 1);
        self.acc >>= n;
        self.nbits -= n;
        Ok(v)
    }

    /// Peek up to `n` bits without consuming (zero-padded near the end).
    pub fn peek_bits(&mut self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        if self.nbits < n {
            self.refill();
        }
        if n == 0 {
            return 0;
        }
        self.acc & ((1u64 << n) - 1)
    }

    /// Consume `n` bits previously peeked; errors if fewer are available.
    pub fn consume(&mut self, n: u32) -> Result<(), CompressError> {
        if self.nbits < n {
            self.refill();
            if self.nbits < n {
                return Err(corrupt("bitstream exhausted"));
            }
        }
        self.acc >>= n;
        self.nbits -= n;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_various_widths() {
        let mut w = BitWriter::new();
        let vals: Vec<(u64, u32)> = vec![
            (1, 1),
            (0, 1),
            (5, 3),
            (255, 8),
            (1023, 10),
            (0, 5),
            (0x1f_ffff, 21),
            (1, 1),
        ];
        for &(v, n) in &vals {
            w.write_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &vals {
            assert_eq!(r.read_bits(n).unwrap(), v, "width {n}");
        }
    }

    #[test]
    fn peek_then_consume() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0b01, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(4), 0b1011);
        assert_eq!(r.peek_bits(4), 0b1011, "peek does not consume");
        r.consume(4).unwrap();
        assert_eq!(r.read_bits(2).unwrap(), 0b01);
    }

    #[test]
    fn exhaustion_errors() {
        let bytes = [0xff];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn peek_past_end_is_zero_padded() {
        let bytes = [0b0000_0001];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(16), 1, "high bits read as zero");
        r.consume(8).unwrap();
        assert!(r.consume(1).is_err());
    }

    #[test]
    fn bit_len_tracks() {
        let mut w = BitWriter::new();
        w.write_bits(0, 3);
        assert_eq!(w.bit_len(), 3);
        w.write_bits(0, 13);
        assert_eq!(w.bit_len(), 16);
    }
}
