//! Trace-driven automatic design (§6.3, closed loop).
//!
//! Where [`crate::design_table`] designs from a *representative* workload
//! handed in by the operator, this module designs from the **observed**
//! workload: the query-trace ring that `vdb-core` fills from live session
//! traffic. Candidates are enumerated from the trace's hot predicates,
//! group-bys and join keys; each candidate is then scored against the
//! trace with [`vdb_optimizer::query_scan_cost`] — the *planner's own*
//! projection-choice metric — so a candidate is accepted exactly when the
//! planner would route traced queries to it and save I/O. There is no
//! designer-private cost model to drift out of sync with the optimizer.

use crate::{storage_optimize, workload_interest, DesignPolicy, REPLICATE_THRESHOLD};
use vdb_encoding::EncodingType;
use vdb_optimizer::query::BoundQuery;
use vdb_optimizer::stats::build_column_stats;
use vdb_optimizer::{query_scan_cost, OptimizerCatalog, ProjectionMeta, TableMeta};
use vdb_storage::projection::{ProjectionDef, Segmentation};
use vdb_types::schema::SortKey;
use vdb_types::{DbError, DbResult, Row, TableSchema, Value};

/// A candidate projection accepted against the traced workload.
#[derive(Debug, Clone)]
pub struct TraceDesign {
    pub def: ProjectionDef,
    /// `CREATE PROJECTION` text ready for execution; per-column `ENCODING`
    /// clauses carry the empirical storage-optimization picks so the
    /// design survives the DDL log round-trip.
    pub ddl: String,
    pub rationale: String,
    /// Weighted workload scan cost over the projections that existed when
    /// this candidate was evaluated.
    pub baseline_cost: f64,
    /// The same figure once this candidate exists.
    pub candidate_cost: f64,
}

impl TraceDesign {
    /// Predicted workload speedup from installing this projection.
    pub fn predicted_speedup(&self) -> f64 {
        if self.candidate_cost <= 0.0 {
            1.0
        } else {
            self.baseline_cost / self.candidate_cost
        }
    }
}

/// Enumerate and cost projection candidates for `table` from a traced
/// workload of `(query, hit count)` pairs.
///
/// * `catalog` — the optimizer's current catalog snapshot (existing
///   projections, row counts, observed per-column codec stats).
/// * `sample` — table-shaped sample rows for the empirical
///   storage-optimization phase and hypothetical statistics.
/// * `workload` — bound queries from the trace with their hit counts
///   (a query traced 50 times weighs 50× in the cost comparison).
///
/// Returns the greedily-accepted candidates, best first; each is kept only
/// if it cuts the weighted workload scan cost by ≥ 10% over the catalog
/// *including previously accepted candidates* (so two candidates serving
/// the same queries are not both installed).
pub fn design_from_trace(
    catalog: &OptimizerCatalog,
    table: &str,
    sample: &[Row],
    workload: &[(BoundQuery, u64)],
    policy: DesignPolicy,
) -> DbResult<Vec<TraceDesign>> {
    let meta = catalog
        .table(table)
        .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
    let schema = &meta.schema;
    let total_rows = meta.row_count();

    let queries: Vec<(&BoundQuery, f64)> = workload
        .iter()
        .filter(|(q, _)| q.tables.iter().any(|t| t.table == table))
        .map(|(q, w)| (q, (*w).max(1) as f64))
        .collect();
    if queries.is_empty() {
        return Ok(Vec::new());
    }
    let flat: Vec<BoundQuery> = queries.iter().map(|(q, _)| (*q).clone()).collect();
    let interest = workload_interest(schema, &flat);

    let candidates = enumerate_candidates(schema, meta, sample, total_rows, &interest);
    if candidates.is_empty() {
        return Ok(Vec::new());
    }

    // Greedy accept loop: each round costs every remaining candidate
    // against the catalog-so-far and keeps the biggest win.
    let weighted_cost = |cat: &OptimizerCatalog| -> DbResult<f64> {
        let mut total = 0.0;
        for (q, w) in &queries {
            total += w * query_scan_cost(cat, q)?;
        }
        Ok(total)
    };
    let budget = match policy {
        DesignPolicy::LoadOptimized => 1,
        DesignPolicy::Balanced => 2,
        DesignPolicy::QueryOptimized => 4,
    };
    let mut working = catalog.clone();
    let mut current_cost = weighted_cost(&working)?;
    let mut remaining = candidates;
    let mut accepted: Vec<TraceDesign> = Vec::new();
    let mut taken: std::collections::BTreeSet<String> = meta
        .projections
        .iter()
        .map(|p| p.def.name.clone())
        .collect();
    while accepted.len() < budget && !remaining.is_empty() {
        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in remaining.iter().enumerate() {
            let mut cat = working.clone();
            let hypo = hypothetical_meta(&cand.def, total_rows, sample, meta);
            cat.tables
                .get_mut(table)
                .expect("table present")
                .projections
                .push(hypo);
            let cost = weighted_cost(&cat)?;
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((i, cost));
            }
        }
        let (i, cost) = best.expect("remaining is non-empty");
        if cost > current_cost * 0.9 {
            break; // best candidate saves < 10%: stop
        }
        let mut cand = remaining.swap_remove(i);
        // Final unique name, then re-render the DDL with it.
        let mut k = accepted.len() + 1;
        while taken.contains(&format!("{table}_auto{k}")) {
            k += 1;
        }
        cand.def.name = format!("{table}_auto{k}");
        taken.insert(cand.def.name.clone());
        let hypo = hypothetical_meta(&cand.def, total_rows, sample, meta);
        working
            .tables
            .get_mut(table)
            .expect("table present")
            .projections
            .push(hypo);
        accepted.push(TraceDesign {
            ddl: render_ddl(&cand.def, schema, &cand.seg_cols),
            def: cand.def,
            rationale: cand.rationale,
            baseline_cost: current_cost,
            candidate_cost: cost,
        });
        current_cost = cost;
    }
    Ok(accepted)
}

struct Candidate {
    def: ProjectionDef,
    /// Segmentation column names (for DDL rendering); empty = replicated.
    seg_cols: Vec<String>,
    rationale: String,
}

/// Candidate enumeration (§6.3 query-optimization phase, driven by the
/// trace): sort orders from hot predicate and group-by columns,
/// segmentation keys from join columns, column sets from what the traced
/// queries actually touch.
fn enumerate_candidates(
    schema: &TableSchema,
    meta: &TableMeta,
    sample: &[Row],
    total_rows: u64,
    interest: &crate::WorkloadInterest,
) -> Vec<Candidate> {
    let column_stats: Vec<_> = (0..schema.arity())
        .map(|c| {
            let col: Vec<Value> = sample.iter().map(|r| r[c].clone()).collect();
            build_column_stats(&col, total_rows)
        })
        .collect();
    let all_cols: Vec<usize> = (0..schema.arity()).collect();
    // Segmentation key: join columns first (co-located joins), then the
    // highest-cardinality interesting column (skew-free distribution).
    let seg_col = interest
        .join_columns
        .first()
        .copied()
        .or_else(|| {
            interest
                .predicate_columns
                .iter()
                .chain(all_cols.iter())
                .max_by_key(|&&c| column_stats[c].distinct)
                .copied()
        })
        .unwrap_or(0);
    let replicated = total_rows < REPLICATE_THRESHOLD;

    // Interesting-column orderings.
    let mut predicate_first: Vec<usize> = Vec::new();
    for &c in interest
        .predicate_columns
        .iter()
        .chain(&interest.group_columns)
        .chain(&interest.join_columns)
        .chain(&interest.order_columns)
    {
        if !predicate_first.contains(&c) {
            predicate_first.push(c);
        }
    }
    if predicate_first.is_empty() {
        predicate_first.push(0);
    }
    let mut group_first: Vec<usize> = interest.group_columns.clone();
    for &c in &predicate_first {
        if !group_first.contains(&c) {
            group_first.push(c);
        }
    }

    // Column set the traced queries actually touch (narrow candidates
    // scan fewer bytes; anything untouched stays on the superprojection).
    let mut touched: Vec<usize> = Vec::new();
    for &c in interest
        .predicate_columns
        .iter()
        .chain(&interest.group_columns)
        .chain(&interest.join_columns)
        .chain(&interest.order_columns)
        .chain(&interest.aggregate_columns)
        .chain(&interest.select_columns)
    {
        if !touched.contains(&c) {
            touched.push(c);
        }
    }
    touched.sort_unstable();

    let mut out: Vec<Candidate> = Vec::new();
    let mut push = |cols: Vec<usize>, order: &[usize], rationale: String| {
        let order: Vec<usize> = order.iter().filter(|c| cols.contains(c)).copied().collect();
        if cols.is_empty() {
            return;
        }
        let column_names: Vec<String> = cols
            .iter()
            .map(|&c| schema.columns[c].name.clone())
            .collect();
        let column_types: Vec<_> = cols.iter().map(|&c| schema.columns[c].data_type).collect();
        let proj_pos = |table_col: usize| cols.iter().position(|&c| c == table_col);
        let sort_keys: Vec<SortKey> = order
            .iter()
            .filter_map(|&c| proj_pos(c).map(SortKey::asc))
            .collect();
        let (segmentation, seg_cols) = match proj_pos(seg_col) {
            Some(p) if !replicated => (
                Segmentation::hash_of(&[(p, column_names[p].as_str())]),
                vec![column_names[p].clone()],
            ),
            _ => (Segmentation::Replicated, vec![]),
        };
        let mut def = ProjectionDef {
            name: format!("{}_candidate{}", schema.name, out.len()),
            anchor_table: schema.name.clone(),
            columns: cols,
            column_names,
            column_types,
            sort_keys,
            encodings: Vec::new(),
            segmentation,
            prejoin: vec![],
        };
        def.encodings = vec![EncodingType::Auto; def.columns.len()];
        // §6.3 phase 2: empirical encodings over the candidate-sorted
        // sample; with no sample, fall back to the codecs storage actually
        // observed for the same table columns on existing projections.
        if sample.is_empty() {
            for (i, &c) in def.columns.iter().enumerate() {
                if let Some(e) = observed_encoding(meta, c) {
                    def.encodings[i] = e;
                }
            }
        } else {
            storage_optimize(&mut def, sample);
        }
        let duplicate = out
            .iter()
            .any(|c| c.def.columns == def.columns && c.def.sort_keys == def.sort_keys);
        if !duplicate {
            out.push(Candidate {
                def,
                seg_cols,
                rationale,
            });
        }
    };

    // Narrow, predicate-leading: the selective-scan winner.
    push(
        touched.clone(),
        &predicate_first,
        "narrow projection over the traced queries' columns, hottest \
         predicate column leading the sort order (SMA pruning)"
            .into(),
    );
    // Narrow, group-by-leading: the pipelined-aggregation winner.
    if !interest.group_columns.is_empty() {
        push(
            touched.clone(),
            &group_first,
            "narrow projection sorted by the traced GROUP BY columns \
             (pipelined aggregation)"
                .into(),
        );
    }
    // Full-width, predicate-leading: replaces the superprojection's scan
    // when queries touch columns the narrow candidates dropped.
    push(
        (0..schema.arity()).collect(),
        &predicate_first,
        "full-width projection re-sorted by the hottest traced predicate".into(),
    );
    out
}

/// What would the catalog say about `def` if it existed? Statistics from
/// the candidate-sorted sample; per-column bytes from trial-encoding the
/// sorted sample and scaling to the table's row count — the same
/// compression-aware I/O figure [`vdb_optimizer::projection_scan_cost`]
/// reads for real projections.
fn hypothetical_meta(
    def: &ProjectionDef,
    total_rows: u64,
    sample: &[Row],
    anchor: &TableMeta,
) -> ProjectionMeta {
    let mut projected: Vec<Row> = sample
        .iter()
        .filter_map(|r| def.project_row(r).ok())
        .collect();
    def.sort_rows(&mut projected);
    let scale = if projected.is_empty() {
        1.0
    } else {
        total_rows as f64 / projected.len() as f64
    };
    let column_bytes: Vec<u64> = (0..def.arity())
        .map(|pc| {
            if projected.is_empty() {
                // No sample: assume the candidate compresses no better
                // than the same column on an existing projection.
                observed_bytes(anchor, def.columns[pc]).unwrap_or(8 * total_rows)
            } else {
                let col: Vec<Value> = projected.iter().map(|r| r[pc].clone()).collect();
                let (_, trials) = vdb_encoding::auto::choose_by_trial(&col);
                let best = trials.iter().map(|&(_, sz)| sz).min().unwrap_or(0);
                (best as f64 * scale).ceil() as u64
            }
        })
        .collect();
    ProjectionMeta::from_sample(def.clone(), total_rows, column_bytes, &projected)
}

/// Encoded bytes of table column `table_col` on any existing projection.
fn observed_bytes(meta: &TableMeta, table_col: usize) -> Option<u64> {
    meta.projections.iter().find_map(|p| {
        p.def
            .projection_column_of(table_col)
            .and_then(|pc| p.column_bytes.get(pc).copied())
    })
}

/// The codec storage observed dominating table column `table_col` on any
/// existing projection (from `ProjectionMeta::column_encodings`).
fn observed_encoding(meta: &TableMeta, table_col: usize) -> Option<EncodingType> {
    meta.projections.iter().find_map(|p| {
        let pc = p.def.projection_column_of(table_col)?;
        EncodingType::parse(p.dominant_encoding(pc)?)
    })
}

/// Render `def` as executable `CREATE PROJECTION` DDL. Non-`Auto`
/// encodings become per-column `ENCODING <name>` clauses.
pub fn render_ddl(def: &ProjectionDef, schema: &TableSchema, seg_cols: &[String]) -> String {
    let cols = def
        .columns
        .iter()
        .zip(&def.encodings)
        .map(|(&c, e)| {
            let name = &schema.columns[c].name;
            match e {
                EncodingType::Auto => name.clone(),
                e => format!("{name} ENCODING {}", e.name()),
            }
        })
        .collect::<Vec<_>>()
        .join(", ");
    let mut sql = format!(
        "CREATE PROJECTION {} AS SELECT {cols} FROM {}",
        def.name, def.anchor_table
    );
    if !def.sort_keys.is_empty() {
        let order = def
            .sort_keys
            .iter()
            .map(|k| def.column_names[k.column].clone())
            .collect::<Vec<_>>()
            .join(", ");
        sql.push_str(&format!(" ORDER BY {order}"));
    }
    if seg_cols.is_empty() {
        sql.push_str(" UNSEGMENTED ALL NODES");
    } else {
        sql.push_str(&format!(
            " SEGMENTED BY HASH({}) ALL NODES",
            seg_cols.join(", ")
        ));
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_optimizer::query::QueryTable;
    use vdb_types::{BinOp, ColumnDef, DataType, Expr};

    fn schema() -> TableSchema {
        TableSchema::new(
            "meter",
            vec![
                ColumnDef::new("metric", DataType::Integer),
                ColumnDef::new("meter", DataType::Integer),
                ColumnDef::new("ts", DataType::Timestamp),
                ColumnDef::new("value", DataType::Float),
            ],
        )
    }

    fn sample(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Integer(i % 10),
                    Value::Integer(i % 100),
                    Value::Timestamp(1_000_000 + i * 300),
                    Value::Float((i % 7) as f64),
                ]
            })
            .collect()
    }

    /// Catalog whose only projection is an id-ordered superprojection —
    /// useless for a `metric = ?` filter, so the designer has room to win.
    fn catalog(rows: u64) -> OptimizerCatalog {
        let s = schema();
        let def = ProjectionDef::super_projection(&s, "meter_super", &[2], &[2]);
        let sample = sample(1000);
        let projected: Vec<Row> = sample
            .iter()
            .filter_map(|r| def.project_row(r).ok())
            .collect();
        let meta = ProjectionMeta::from_sample(def, rows, vec![8 * rows; 4], &projected);
        let mut cat = OptimizerCatalog::default();
        cat.tables.insert(
            "meter".into(),
            TableMeta {
                schema: s,
                partition_by: None,
                projections: vec![meta],
            },
        );
        cat
    }

    fn traced_query() -> BoundQuery {
        BoundQuery {
            tables: vec![QueryTable {
                table: "meter".into(),
                alias: "meter".into(),
            }],
            table_filters: vec![Some(Expr::binary(
                BinOp::Eq,
                Expr::col(0, "metric"),
                Expr::int(3),
            ))],
            select: vec![
                (Expr::col(1, "meter"), "meter".into()),
                (Expr::col(3, "value"), "value".into()),
            ],
            ..Default::default()
        }
    }

    #[test]
    fn accepts_predicate_leading_candidate_with_planner_cost_model() {
        let cat = catalog(1_000_000);
        let designs = design_from_trace(
            &cat,
            "meter",
            &sample(1000),
            &[(traced_query(), 25)],
            DesignPolicy::Balanced,
        )
        .unwrap();
        assert!(!designs.is_empty(), "selective trace must yield a design");
        let d = &designs[0];
        // The accepted candidate leads its sort order with the hot
        // predicate column (metric).
        assert_eq!(d.def.columns[d.def.sort_keys[0].column], 0);
        assert!(d.predicted_speedup() > 2.0, "got {}", d.predicted_speedup());
        assert!(d.ddl.starts_with("CREATE PROJECTION meter_auto1 AS SELECT"));
        assert!(d.ddl.contains("ORDER BY metric"));
        // Narrow: the candidate drops the untouched ts column.
        assert!(!d.def.columns.contains(&2));
    }

    #[test]
    fn empty_or_foreign_trace_yields_nothing() {
        let cat = catalog(1_000_000);
        assert!(
            design_from_trace(&cat, "meter", &sample(100), &[], DesignPolicy::Balanced)
                .unwrap()
                .is_empty()
        );
        let mut foreign = traced_query();
        foreign.tables[0].table = "other".into();
        assert!(design_from_trace(
            &cat,
            "meter",
            &sample(100),
            &[(foreign, 9)],
            DesignPolicy::Balanced
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn ddl_round_trips_encodings() {
        let s = schema();
        let mut def = ProjectionDef::super_projection(&s, "p", &[0], &[0]);
        def.encodings = vec![
            EncodingType::Rle,
            EncodingType::Auto,
            EncodingType::DeltaDelta,
            EncodingType::Plain,
        ];
        let ddl = render_ddl(&def, &s, &["metric".into()]);
        assert!(ddl.contains("metric ENCODING RLE"));
        assert!(ddl.contains("ts ENCODING DELTADELTA"));
        assert!(ddl.contains("SEGMENTED BY HASH(metric) ALL NODES"));
        // The Auto column carries no clause.
        assert!(!ddl.contains("meter ENCODING"));
    }
}
