//! `vdb-designer` — the Database Designer (§6.3 of the paper).
//!
//! "The physical design problem in Vertica is to determine sets of
//! projections that optimize a representative query workload for a given
//! schema and sample data while remaining within a certain space budget."
//!
//! Two sequential phases, exactly as §6.3 describes:
//!
//! 1. **Query optimization** — enumerate candidate sort orders /
//!    segmentations from workload heuristics (predicates, group-by
//!    columns, join predicates, order-by columns) and score them with the
//!    same cost inputs the optimizer uses.
//! 2. **Storage optimization** — pick each column's encoding *empirically*
//!    by encoding a sorted sample with every scheme and keeping the
//!    smallest ([`vdb_encoding::auto::choose_by_trial`]) — the phase whose
//!    choices the paper notes users essentially never override.
//!
//! Three design policies trade query speed against load/storage cost:
//! load-optimized (fewest projections), balanced, query-optimized.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod trace_design;

pub use trace_design::{design_from_trace, render_ddl, TraceDesign};

use std::collections::BTreeMap;
use vdb_encoding::EncodingType;
use vdb_optimizer::query::BoundQuery;
use vdb_optimizer::stats::build_column_stats;
use vdb_storage::projection::{ProjectionDef, Segmentation};
use vdb_types::schema::SortKey;
use vdb_types::{DbResult, Row, TableSchema, Value};

/// Design policies (§6.3: "(a) load-optimized, (b) query-optimized and
/// (c) balanced").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignPolicy {
    LoadOptimized,
    Balanced,
    QueryOptimized,
}

impl DesignPolicy {
    /// Extra (non-super) projections allowed per table.
    fn extra_projections(self) -> usize {
        match self {
            DesignPolicy::LoadOptimized => 0,
            DesignPolicy::Balanced => 1,
            DesignPolicy::QueryOptimized => 3,
        }
    }
}

/// Tables smaller than this (rows) are replicated rather than segmented.
pub const REPLICATE_THRESHOLD: u64 = 10_000;

/// A designed projection with its rationale (for reporting).
#[derive(Debug, Clone)]
pub struct DesignedProjection {
    pub def: ProjectionDef,
    pub rationale: String,
}

/// Run the Database Designer for one table.
///
/// * `schema` — the table.
/// * `sample` — sample rows (the "sample data" of §6.3).
/// * `total_rows` — estimated table size (drives replicate-vs-segment).
/// * `workload` — representative bound queries.
pub fn design_table(
    schema: &TableSchema,
    sample: &[Row],
    total_rows: u64,
    workload: &[BoundQuery],
    policy: DesignPolicy,
) -> DbResult<Vec<DesignedProjection>> {
    let interest = workload_interest(schema, workload);
    // Segmentation: replicate small tables; hash-segment large ones on the
    // highest-cardinality interesting column (join keys first).
    let column_stats: Vec<_> = (0..schema.arity())
        .map(|c| {
            let col: Vec<Value> = sample.iter().map(|r| r[c].clone()).collect();
            build_column_stats(&col, total_rows)
        })
        .collect();
    let all_cols: Vec<usize> = (0..schema.arity()).collect();
    let seg_col = interest
        .join_columns
        .iter()
        .chain(interest.predicate_columns.iter())
        .chain(all_cols.iter())
        .max_by_key(|&&c| column_stats[c].distinct)
        .copied()
        .unwrap_or(0);
    let segmentation_cols: Vec<usize> = if total_rows < REPLICATE_THRESHOLD {
        vec![]
    } else {
        vec![seg_col]
    };

    // Candidate sort orders for the super projection: rank interesting
    // columns — predicate columns first (enables pruning), then group-by
    // (pipelined aggregation), then join keys (merge joins), then order-by.
    let mut sort_candidates: Vec<Vec<usize>> = Vec::new();
    let mut base: Vec<usize> = Vec::new();
    for &c in interest
        .predicate_columns
        .iter()
        .chain(&interest.group_columns)
        .chain(&interest.join_columns)
        .chain(&interest.order_columns)
    {
        if !base.contains(&c) {
            base.push(c);
        }
    }
    if base.is_empty() {
        base.push(0);
    }
    sort_candidates.push(base.clone());
    // Alternative: group-by-first ordering (favors pipelined GroupBy).
    let mut gb_first: Vec<usize> = interest.group_columns.clone();
    for &c in &base {
        if !gb_first.contains(&c) {
            gb_first.push(c);
        }
    }
    if !gb_first.is_empty() && gb_first != base {
        sort_candidates.push(gb_first);
    }

    // Score candidates: how many workload queries get (a) a prunable
    // predicate on the leading sort column, (b) a sorted group-by prefix.
    let score = |order: &[usize]| -> i64 {
        let mut s = 0i64;
        if let Some(&lead) = order.first() {
            if interest.predicate_columns.contains(&lead) {
                s += 10 * interest.predicate_weight.get(&lead).copied().unwrap_or(1);
            }
        }
        if !interest.group_columns.is_empty() && order.starts_with(&interest.group_columns) {
            s += 5;
        }
        s
    };
    sort_candidates.sort_by_key(|c| -score(c));
    let best_order = sort_candidates[0].clone();

    let mut out = Vec::new();
    let mut super_def = ProjectionDef::super_projection(
        schema,
        format!("{}_super", schema.name),
        &best_order,
        &segmentation_cols,
    );
    storage_optimize(&mut super_def, sample);
    out.push(DesignedProjection {
        def: super_def,
        rationale: format!(
            "super projection sorted by {:?} ({}), {}",
            best_order,
            if total_rows < REPLICATE_THRESHOLD {
                "replicated: small table"
            } else {
                "segmented on highest-cardinality key"
            },
            "encodings chosen empirically"
        ),
    });

    // Extra narrow projections per policy: one per heavy group-by set not
    // already served by the super projection's sort order.
    let mut extras = policy.extra_projections();
    if extras > 0 && !interest.group_columns.is_empty() {
        let gcols = interest.group_columns.clone();
        if !out[0].def.sort_prefix().starts_with(&gcols) {
            // Narrow projection: group columns + aggregated columns.
            let mut cols: Vec<usize> = gcols.clone();
            for &c in &interest.aggregate_columns {
                if !cols.contains(&c) {
                    cols.push(c);
                }
            }
            let column_names: Vec<String> = cols
                .iter()
                .map(|&c| schema.columns[c].name.clone())
                .collect();
            let column_types: Vec<_> = cols.iter().map(|&c| schema.columns[c].data_type).collect();
            let mut def = ProjectionDef {
                name: format!("{}_gb", schema.name),
                anchor_table: schema.name.clone(),
                columns: cols.clone(),
                column_names: column_names.clone(),
                column_types,
                sort_keys: (0..gcols.len()).map(SortKey::asc).collect(),
                encodings: vec![EncodingType::Auto; cols.len()],
                segmentation: if total_rows < REPLICATE_THRESHOLD {
                    Segmentation::Replicated
                } else {
                    Segmentation::hash_of(&[(0, column_names[0].as_str())])
                },
                prejoin: vec![],
            };
            storage_optimize(&mut def, sample);
            out.push(DesignedProjection {
                def,
                rationale: "narrow projection sorted by the workload's GROUP BY columns \
                            (pipelined, encoded-aware aggregation)"
                    .into(),
            });
            extras -= 1;
        }
    }
    let _ = extras;
    Ok(out)
}

/// Phase 2 (§6.3 storage optimization): set each column's encoding by
/// empirical trial over the sample, *sorted the way the projection will
/// store it* — sorting is what unlocks RLE/delta schemes.
pub fn storage_optimize(def: &mut ProjectionDef, table_sample: &[Row]) {
    if table_sample.is_empty() {
        return;
    }
    let mut projected: Vec<Row> = table_sample
        .iter()
        .filter_map(|r| def.project_row(r).ok())
        .collect();
    def.sort_rows(&mut projected);
    for (pcol, enc) in def.encodings.iter_mut().enumerate() {
        let col: Vec<Value> = projected.iter().map(|r| r[pcol].clone()).collect();
        let (winner, _) = vdb_encoding::auto::choose_by_trial(&col);
        *enc = winner;
    }
}

/// Columns the workload cares about, per role.
#[derive(Debug, Default, Clone)]
pub struct WorkloadInterest {
    pub predicate_columns: Vec<usize>,
    pub predicate_weight: BTreeMap<usize, i64>,
    pub group_columns: Vec<usize>,
    pub join_columns: Vec<usize>,
    pub order_columns: Vec<usize>,
    pub aggregate_columns: Vec<usize>,
    /// Columns appearing in SELECT lists (narrow-projection column sets).
    pub select_columns: Vec<usize>,
}

/// Extract per-table interest from the workload (candidate enumeration
/// heuristics of §6.3: "predicates, group by columns, order by columns,
/// aggregate columns, and join predicates").
pub fn workload_interest(schema: &TableSchema, workload: &[BoundQuery]) -> WorkloadInterest {
    let mut interest = WorkloadInterest::default();
    for q in workload {
        // Which FROM entry is this table, and at what global offset?
        let Some(t) = q.tables.iter().position(|qt| qt.table == schema.name) else {
            continue;
        };
        // Offsets of earlier FROM entries would need their schemas; the
        // single-table restriction below keeps a zero offset correct.
        let offset: usize = 0;
        // Without the other schemas we cannot compute global offsets for
        // multi-table queries; restrict global-column attribution to
        // single-table workloads and use per-table filters (local columns)
        // which are always local.
        if let Some(Some(f)) = q.table_filters.get(t) {
            for c in f.referenced_columns() {
                interest.predicate_columns.push(c);
                *interest.predicate_weight.entry(c).or_insert(0) += 1;
            }
        }
        for e in &q.joins {
            if e.left_table == t {
                interest.join_columns.extend(e.left_columns.iter().copied());
            }
            if e.right_table == t {
                interest
                    .join_columns
                    .extend(e.right_columns.iter().copied());
            }
        }
        if q.tables.len() == 1 {
            let _ = offset;
            for g in &q.group_by {
                for c in g.referenced_columns() {
                    if c < schema.arity() {
                        interest.group_columns.push(c);
                    }
                }
            }
            for a in &q.aggregates {
                if let Some(e) = &a.input {
                    for c in e.referenced_columns() {
                        if c < schema.arity() {
                            interest.aggregate_columns.push(c);
                        }
                    }
                }
            }
            for (e, _) in &q.select {
                for c in e.referenced_columns() {
                    if c < schema.arity() {
                        interest.select_columns.push(c);
                    }
                }
            }
        }
    }
    dedup_keep_order(&mut interest.predicate_columns);
    dedup_keep_order(&mut interest.group_columns);
    dedup_keep_order(&mut interest.join_columns);
    dedup_keep_order(&mut interest.order_columns);
    dedup_keep_order(&mut interest.aggregate_columns);
    dedup_keep_order(&mut interest.select_columns);
    // Most frequently filtered columns first.
    interest
        .predicate_columns
        .sort_by_key(|c| -interest.predicate_weight.get(c).copied().unwrap_or(0));
    interest
}

fn dedup_keep_order(v: &mut Vec<usize>) {
    let mut seen = std::collections::BTreeSet::new();
    v.retain(|&c| seen.insert(c));
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_optimizer::query::QueryTable;
    use vdb_types::{BinOp, ColumnDef, DataType, Expr};

    fn schema() -> TableSchema {
        TableSchema::new(
            "meter",
            vec![
                ColumnDef::new("metric", DataType::Integer),
                ColumnDef::new("meter", DataType::Integer),
                ColumnDef::new("ts", DataType::Timestamp),
                ColumnDef::new("value", DataType::Float),
            ],
        )
    }

    fn sample(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Integer(i % 10),                // few metrics
                    Value::Integer(i % 100),               // meters
                    Value::Timestamp(1_000_000 + i * 300), // periodic
                    Value::Float((i % 7) as f64),
                ]
            })
            .collect()
    }

    fn workload() -> Vec<BoundQuery> {
        vec![BoundQuery {
            tables: vec![QueryTable {
                table: "meter".into(),
                alias: "m".into(),
            }],
            table_filters: vec![Some(Expr::binary(
                BinOp::Eq,
                Expr::col(0, "metric"),
                Expr::int(3),
            ))],
            select: vec![(Expr::col(1, "meter"), "meter".into())],
            group_by: vec![Expr::col(1, "meter")],
            aggregates: vec![vdb_optimizer::query::AggItem {
                func: vdb_exec::aggregate::AggFunc::Sum,
                input: Some(Expr::col(3, "value")),
                output_name: "total".into(),
            }],
            ..Default::default()
        }]
    }

    #[test]
    fn designs_super_projection_with_predicate_leading_sort() {
        let designs = design_table(
            &schema(),
            &sample(2000),
            1_000_000,
            &workload(),
            DesignPolicy::Balanced,
        )
        .unwrap();
        assert!(!designs.is_empty());
        let sup = &designs[0].def;
        assert!(sup.is_super(4));
        // metric (the filtered column) leads the sort order.
        assert_eq!(sup.sort_prefix()[0], 0);
        assert!(matches!(sup.segmentation, Segmentation::ByExpr(_)));
    }

    #[test]
    fn small_tables_are_replicated() {
        let designs = design_table(
            &schema(),
            &sample(100),
            500, // below threshold
            &workload(),
            DesignPolicy::LoadOptimized,
        )
        .unwrap();
        assert!(matches!(
            designs[0].def.segmentation,
            Segmentation::Replicated
        ));
        assert_eq!(designs.len(), 1, "load-optimized: super only");
    }

    #[test]
    fn balanced_policy_adds_groupby_projection() {
        let designs = design_table(
            &schema(),
            &sample(2000),
            1_000_000,
            &workload(),
            DesignPolicy::Balanced,
        )
        .unwrap();
        assert_eq!(designs.len(), 2);
        let gb = &designs[1].def;
        assert_eq!(gb.sort_prefix(), vec![0], "sorted by meter (proj col 0)");
        assert!(gb.columns.contains(&1) && gb.columns.contains(&3));
    }

    #[test]
    fn storage_optimization_picks_specialized_encodings() {
        let designs = design_table(
            &schema(),
            &sample(4000),
            1_000_000,
            &workload(),
            DesignPolicy::LoadOptimized,
        )
        .unwrap();
        let sup = &designs[0].def;
        // The leading sort column (metric, 10 distinct, sorted) must get
        // RLE — the §8.2 experiment depends on exactly this behaviour.
        let metric_proj_col = sup.projection_column_of(0).unwrap();
        assert_eq!(sup.encodings[metric_proj_col], EncodingType::Rle);
        // No column should be left on Auto after the empirical phase.
        assert!(sup.encodings.iter().all(|e| *e != EncodingType::Auto));
    }

    #[test]
    fn workload_interest_extraction() {
        let i = workload_interest(&schema(), &workload());
        assert_eq!(i.predicate_columns, vec![0]);
        assert_eq!(i.group_columns, vec![1]);
        assert_eq!(i.aggregate_columns, vec![3]);
    }
}
