//! Proleptic-Gregorian calendar arithmetic for `Timestamp` values.
//!
//! `PARTITION BY` expressions are "most often date related such as
//! extracting the month and year from a timestamp" (§3.5), so the expression
//! language needs EXTRACT. We implement the civil-date conversions from
//! first principles (days-from-epoch algorithm, Hinnant-style) instead of
//! pulling in a chrono dependency.

/// Days from 1970-01-01 for a civil date. Valid for the full i32 year range.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m));
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // March=0 .. February=11
    let doy = (153 * mp as i64 + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date (year, month, day) from days since 1970-01-01.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Build a timestamp (seconds since Unix epoch) from civil components.
pub fn timestamp_from_civil(y: i64, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> i64 {
    days_from_civil(y, mo, d) * 86_400 + i64::from(h) * 3600 + i64::from(mi) * 60 + i64::from(s)
}

/// Decompose a timestamp into `(year, month, day, hour, minute, second)`.
pub fn to_civil(ts: i64) -> (i64, u32, u32, u32, u32, u32) {
    let days = ts.div_euclid(86_400);
    let secs = ts.rem_euclid(86_400);
    let (y, m, d) = civil_from_days(days);
    (
        y,
        m,
        d,
        (secs / 3600) as u32,
        (secs % 3600 / 60) as u32,
        (secs % 60) as u32,
    )
}

/// EXTRACT(YEAR FROM ts)
pub fn year(ts: i64) -> i64 {
    to_civil(ts).0
}

/// EXTRACT(MONTH FROM ts)
pub fn month(ts: i64) -> i64 {
    i64::from(to_civil(ts).1)
}

/// EXTRACT(DAY FROM ts)
pub fn day(ts: i64) -> i64 {
    i64::from(to_civil(ts).2)
}

/// The combined `year*100 + month` key commonly used for `PARTITION BY
/// EXTRACT MONTH, YEAR FROM TIMESTAMP` (Figure 2 uses keys like 3/2012).
pub fn year_month(ts: i64) -> i64 {
    let (y, m, _, _, _, _) = to_civil(ts);
    y * 100 + i64::from(m)
}

/// Parse `YYYY-MM-DD` or `YYYY-MM-DD hh:mm:ss` into epoch seconds.
pub fn parse_timestamp(text: &str) -> Option<i64> {
    let text = text.trim();
    let (date_part, time_part) = match text.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (text, None),
    };
    let mut it = date_part.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let mo: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&mo) || !(1..=31).contains(&d) {
        return None;
    }
    let (h, mi, s) = match time_part {
        None => (0, 0, 0),
        Some(t) => {
            let mut it = t.split(':');
            let h: u32 = it.next()?.parse().ok()?;
            let mi: u32 = it.next()?.parse().ok()?;
            let s: u32 = it.next().map_or(Some(0), |s| s.parse().ok())?;
            if h > 23 || mi > 59 || s > 60 {
                return None;
            }
            (h, mi, s)
        }
    };
    Some(timestamp_from_civil(y, mo, d, h, mi, s))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn round_trip_many_days() {
        // Every ~13 days across 160 years exercises all month/era branches.
        let mut d = days_from_civil(1900, 1, 1);
        let end = days_from_civil(2060, 1, 1);
        while d < end {
            let (y, m, dd) = civil_from_days(d);
            assert_eq!(days_from_civil(y, m, dd), d);
            d += 13;
        }
    }

    #[test]
    fn leap_years() {
        assert_eq!(civil_from_days(days_from_civil(2012, 2, 29)), (2012, 2, 29));
        assert_eq!(
            civil_from_days(days_from_civil(2012, 2, 29) + 1),
            (2012, 3, 1)
        );
        // 1900 is not a leap year, 2000 is.
        assert_eq!(
            civil_from_days(days_from_civil(1900, 2, 28) + 1),
            (1900, 3, 1)
        );
        assert_eq!(
            civil_from_days(days_from_civil(2000, 2, 28) + 1),
            (2000, 2, 29)
        );
    }

    #[test]
    fn extract_functions() {
        let ts = timestamp_from_civil(2012, 6, 15, 13, 30, 45);
        assert_eq!(year(ts), 2012);
        assert_eq!(month(ts), 6);
        assert_eq!(day(ts), 15);
        assert_eq!(year_month(ts), 201_206);
    }

    #[test]
    fn parse_forms() {
        assert_eq!(
            parse_timestamp("2012-03-01"),
            Some(timestamp_from_civil(2012, 3, 1, 0, 0, 0))
        );
        assert_eq!(
            parse_timestamp("2012-03-01 10:20:30"),
            Some(timestamp_from_civil(2012, 3, 1, 10, 20, 30))
        );
        assert_eq!(parse_timestamp("2012-13-01"), None);
        assert_eq!(parse_timestamp("nonsense"), None);
    }

    #[test]
    fn negative_timestamps() {
        let ts = timestamp_from_civil(1960, 7, 4, 0, 0, 0);
        assert!(ts < 0);
        assert_eq!(year(ts), 1960);
        assert_eq!(month(ts), 7);
        assert_eq!(day(ts), 4);
    }
}
