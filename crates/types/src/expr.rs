//! Bound scalar expressions.
//!
//! These are *bound* expressions: column references are positional indexes
//! into an input row or batch. The SQL layer (`vdb-sql`) resolves names to
//! indexes; storage uses bound expressions for `PARTITION BY` and
//! `SEGMENTED BY` clauses so that partition/segment evaluation never needs a
//! catalog.
//!
//! Comparison operators implement SQL three-valued logic: any comparison
//! with NULL yields NULL, `AND`/`OR` follow Kleene logic, and `IS NULL` is
//! the only NULL-tolerant predicate.

use crate::date;
use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// For transitive-predicate derivation: `a op b` with `a = c` implies
    /// `c op b` for any comparison op.
    pub fn sql_symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// `HASH(args...)` — the segmentation hash of §3.6.
    Hash,
    /// `EXTRACT(YEAR FROM ts)`
    ExtractYear,
    /// `EXTRACT(MONTH FROM ts)`
    ExtractMonth,
    /// `EXTRACT(DAY FROM ts)`
    ExtractDay,
    /// `year*100+month`, the canonical month/year partition key (§3.5).
    YearMonth,
    Abs,
    /// String length.
    Length,
    Lower,
    Upper,
    /// Smallest of the arguments (NULL-propagating).
    Least,
    Greatest,
}

impl Func {
    pub fn name(self) -> &'static str {
        match self {
            Func::Hash => "HASH",
            Func::ExtractYear => "YEAR",
            Func::ExtractMonth => "MONTH",
            Func::ExtractDay => "DAY",
            Func::YearMonth => "YEAR_MONTH",
            Func::Abs => "ABS",
            Func::Length => "LENGTH",
            Func::Lower => "LOWER",
            Func::Upper => "UPPER",
            Func::Least => "LEAST",
            Func::Greatest => "GREATEST",
        }
    }

    pub fn parse(name: &str) -> Option<Func> {
        Some(match name.to_ascii_uppercase().as_str() {
            "HASH" => Func::Hash,
            "YEAR" => Func::ExtractYear,
            "MONTH" => Func::ExtractMonth,
            "DAY" => Func::ExtractDay,
            "YEAR_MONTH" => Func::YearMonth,
            "ABS" => Func::Abs,
            "LENGTH" => Func::Length,
            "LOWER" => Func::Lower,
            "UPPER" => Func::Upper,
            "LEAST" => Func::Least,
            "GREATEST" => Func::Greatest,
            _ => return None,
        })
    }
}

/// A bound scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Positional reference into the input row, with a display name carried
    /// along for EXPLAIN output.
    Column {
        index: usize,
        name: String,
    },
    Literal(Value),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        input: Box<Expr>,
    },
    Call {
        func: Func,
        args: Vec<Expr>,
    },
    IsNull {
        input: Box<Expr>,
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)` with literal list.
    InList {
        input: Box<Expr>,
        list: Vec<Value>,
        negated: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        input: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
    },
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`
    Case {
        branches: Vec<(Expr, Expr)>,
        otherwise: Option<Box<Expr>>,
    },
    Cast {
        input: Box<Expr>,
        to: DataType,
    },
}

impl Expr {
    pub fn col(index: usize, name: impl Into<String>) -> Expr {
        Expr::Column {
            index,
            name: name.into(),
        }
    }

    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Integer(v))
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Or, left, right)
    }

    /// Logical negation (named to avoid clashing with `std::ops::Not`).
    pub fn negated(input: Expr) -> Expr {
        Expr::Unary {
            op: UnOp::Not,
            input: Box::new(input),
        }
    }

    pub fn in_list(input: Expr, list: Vec<Value>, negated: bool) -> Expr {
        Expr::InList {
            input: Box::new(input),
            list,
            negated,
        }
    }

    pub fn between(input: Expr, low: Expr, high: Expr) -> Expr {
        Expr::Between {
            input: Box::new(input),
            low: Box::new(low),
            high: Box::new(high),
        }
    }

    pub fn is_null(input: Expr, negated: bool) -> Expr {
        Expr::IsNull {
            input: Box::new(input),
            negated,
        }
    }

    pub fn case(branches: Vec<(Expr, Expr)>, otherwise: Option<Expr>) -> Expr {
        Expr::Case {
            branches,
            otherwise: otherwise.map(Box::new),
        }
    }

    pub fn call(func: Func, args: Vec<Expr>) -> Expr {
        Expr::Call { func, args }
    }

    /// True when the expression references no input column — it evaluates
    /// to the same value for every row, so vectorized evaluation can fold
    /// it once per batch instead of once per row.
    pub fn is_constant(&self) -> bool {
        let mut any = false;
        self.visit_columns(&mut |_| any = true);
        !any
    }

    /// Conjoin a list of predicates (`None` for an empty list).
    pub fn conjunction(mut preds: Vec<Expr>) -> Option<Expr> {
        let first = if preds.is_empty() {
            return None;
        } else {
            preds.remove(0)
        };
        Some(preds.into_iter().fold(first, Expr::and))
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Binary {
                op: BinOp::And,
                left,
                right,
            } => {
                let mut out = left.split_conjuncts();
                out.extend(right.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// All column indexes referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit_columns(&mut |i| out.push(i));
        out.sort_unstable();
        out.dedup();
        out
    }

    pub fn visit_columns(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Column { index, .. } => f(*index),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit_columns(f);
                right.visit_columns(f);
            }
            Expr::Unary { input, .. } | Expr::IsNull { input, .. } | Expr::Cast { input, .. } => {
                input.visit_columns(f)
            }
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit_columns(f);
                }
            }
            Expr::InList { input, .. } => input.visit_columns(f),
            Expr::Between { input, low, high } => {
                input.visit_columns(f);
                low.visit_columns(f);
                high.visit_columns(f);
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, v) in branches {
                    c.visit_columns(f);
                    v.visit_columns(f);
                }
                if let Some(e) = otherwise {
                    e.visit_columns(f);
                }
            }
        }
    }

    /// Rewrite column indexes through a mapping (used when pushing
    /// expressions through projections whose column order differs from the
    /// anchor table). Returns `None` if a referenced column is not mapped.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> Option<usize>) -> Option<Expr> {
        Some(match self {
            Expr::Column { index, name } => Expr::Column {
                index: map(*index)?,
                name: name.clone(),
            },
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.remap_columns(map)?),
                right: Box::new(right.remap_columns(map)?),
            },
            Expr::Unary { op, input } => Expr::Unary {
                op: *op,
                input: Box::new(input.remap_columns(map)?),
            },
            Expr::Call { func, args } => Expr::Call {
                func: *func,
                args: args
                    .iter()
                    .map(|a| a.remap_columns(map))
                    .collect::<Option<Vec<_>>>()?,
            },
            Expr::IsNull { input, negated } => Expr::IsNull {
                input: Box::new(input.remap_columns(map)?),
                negated: *negated,
            },
            Expr::InList {
                input,
                list,
                negated,
            } => Expr::InList {
                input: Box::new(input.remap_columns(map)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::Between { input, low, high } => Expr::Between {
                input: Box::new(input.remap_columns(map)?),
                low: Box::new(low.remap_columns(map)?),
                high: Box::new(high.remap_columns(map)?),
            },
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Some((c.remap_columns(map)?, v.remap_columns(map)?)))
                    .collect::<Option<Vec<_>>>()?,
                otherwise: match otherwise {
                    Some(e) => Some(Box::new(e.remap_columns(map)?)),
                    None => None,
                },
            },
            Expr::Cast { input, to } => Expr::Cast {
                input: Box::new(input.remap_columns(map)?),
                to: *to,
            },
        })
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> DbResult<Value> {
        match self {
            Expr::Column { index, name } => row.get(*index).cloned().ok_or_else(|| {
                DbError::Execution(format!(
                    "column {name} (index {index}) out of bounds for row of arity {}",
                    row.len()
                ))
            }),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                // Short-circuit Kleene logic for AND/OR.
                if matches!(op, BinOp::And | BinOp::Or) {
                    return eval_logic(*op, left, right, row);
                }
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                eval_binary(*op, &l, &r)
            }
            Expr::Unary { op, input } => {
                let v = input.eval(row)?;
                match (op, v) {
                    (_, Value::Null) => Ok(Value::Null),
                    (UnOp::Neg, Value::Integer(i)) => Ok(Value::Integer(-i)),
                    (UnOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                    (UnOp::Not, Value::Boolean(b)) => Ok(Value::Boolean(!b)),
                    (op, v) => Err(DbError::Execution(format!("cannot apply {op:?} to {v}"))),
                }
            }
            Expr::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(a.eval(row)?);
                }
                eval_func(*func, &vals)
            }
            Expr::IsNull { input, negated } => {
                let v = input.eval(row)?;
                Ok(Value::Boolean(v.is_null() != *negated))
            }
            Expr::InList {
                input,
                list,
                negated,
            } => {
                let v = input.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let found = list.iter().any(|x| x == &v);
                Ok(Value::Boolean(found != *negated))
            }
            Expr::Between { input, low, high } => {
                let v = input.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Boolean(v >= lo && v <= hi))
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (cond, val) in branches {
                    if cond.eval(row)?.is_true() {
                        return val.eval(row);
                    }
                }
                match otherwise {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
            Expr::Cast { input, to } => cast_value(input.eval(row)?, *to),
        }
    }

    /// True if the predicate accepts the row (NULL → false).
    pub fn matches(&self, row: &[Value]) -> DbResult<bool> {
        Ok(self.eval(row)?.is_true())
    }
}

fn eval_logic(op: BinOp, left: &Expr, right: &Expr, row: &[Value]) -> DbResult<Value> {
    let l = left.eval(row)?;
    match (op, &l) {
        (BinOp::And, Value::Boolean(false)) => return Ok(Value::Boolean(false)),
        (BinOp::Or, Value::Boolean(true)) => return Ok(Value::Boolean(true)),
        _ => {}
    }
    let r = right.eval(row)?;
    Ok(match op {
        BinOp::And => match (bool3(&l)?, bool3(&r)?) {
            (Some(false), _) | (_, Some(false)) => Value::Boolean(false),
            (Some(true), Some(true)) => Value::Boolean(true),
            _ => Value::Null,
        },
        BinOp::Or => match (bool3(&l)?, bool3(&r)?) {
            (Some(true), _) | (_, Some(true)) => Value::Boolean(true),
            (Some(false), Some(false)) => Value::Boolean(false),
            _ => Value::Null,
        },
        _ => unreachable!(),
    })
}

fn bool3(v: &Value) -> DbResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Boolean(b) => Ok(Some(*b)),
        other => Err(DbError::TypeMismatch {
            expected: "BOOLEAN".into(),
            found: other.to_string(),
        }),
    }
}

/// Evaluate a non-logical binary operator with SQL NULL propagation.
pub fn eval_binary(op: BinOp, l: &Value, r: &Value) -> DbResult<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    if op.is_comparison() {
        let ord = l.cmp(r);
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::Ne => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::Le => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Value::Boolean(b));
    }
    // Arithmetic. Integer op integer stays integer (except division by zero
    // errors); anything involving a float is float.
    match (l, r) {
        (Value::Integer(a), Value::Integer(b)) => {
            let v = match op {
                BinOp::Add => a.wrapping_add(*b),
                BinOp::Sub => a.wrapping_sub(*b),
                BinOp::Mul => a.wrapping_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(DbError::Execution("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(DbError::Execution("division by zero".into()));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Integer(v))
        }
        (Value::Varchar(a), Value::Varchar(b)) if op == BinOp::Add => {
            Ok(Value::Varchar(format!("{a}{b}")))
        }
        (Value::Timestamp(a), Value::Integer(b)) if matches!(op, BinOp::Add | BinOp::Sub) => {
            Ok(Value::Timestamp(if op == BinOp::Add {
                a + b
            } else {
                a - b
            }))
        }
        _ => {
            let (a, b) = match (l.as_f64(), r.as_f64()) {
                (Some(a), Some(b)) => (a, b),
                _ => {
                    return Err(DbError::TypeMismatch {
                        expected: "numeric operands".into(),
                        found: format!("{l} {} {r}", op.sql_symbol()),
                    })
                }
            };
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(DbError::Execution("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(v))
        }
    }
}

/// Evaluate a scalar function call over already-evaluated arguments. Public
/// so the vectorized expression engine can share the scalar kernels without
/// materializing rows.
pub fn eval_func(func: Func, args: &[Value]) -> DbResult<Value> {
    let arg_err = |want: &str| {
        Err(DbError::Execution(format!(
            "{} expects {want}, got {} args",
            func.name(),
            args.len()
        )))
    };
    match func {
        Func::Hash => {
            // Combine the hashes of all arguments, as HASH(col1..coln).
            let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
            for a in args {
                h = h
                    .rotate_left(27)
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
                    .wrapping_add(a.hash64());
            }
            // Segmentation treats the hash as an unsigned 64-bit ring
            // position (0 ≤ expr < CMAX = 2^64, §3.6); we surface the full
            // 64 bits reinterpreted as i64 so the whole ring is reachable.
            Ok(Value::Integer(h as i64))
        }
        Func::ExtractYear | Func::ExtractMonth | Func::ExtractDay | Func::YearMonth => {
            if args.len() != 1 {
                return arg_err("1 timestamp arg");
            }
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Timestamp(ts) | Value::Integer(ts) => Ok(Value::Integer(match func {
                    Func::ExtractYear => date::year(*ts),
                    Func::ExtractMonth => date::month(*ts),
                    Func::ExtractDay => date::day(*ts),
                    Func::YearMonth => date::year_month(*ts),
                    _ => unreachable!(),
                })),
                other => Err(DbError::TypeMismatch {
                    expected: "TIMESTAMP".into(),
                    found: other.to_string(),
                }),
            }
        }
        Func::Abs => {
            if args.len() != 1 {
                return arg_err("1 numeric arg");
            }
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Integer(v) => Ok(Value::Integer(v.abs())),
                Value::Float(v) => Ok(Value::Float(v.abs())),
                other => Err(DbError::TypeMismatch {
                    expected: "numeric".into(),
                    found: other.to_string(),
                }),
            }
        }
        Func::Length => match args {
            [Value::Null] => Ok(Value::Null),
            [Value::Varchar(s)] => Ok(Value::Integer(s.chars().count() as i64)),
            _ => arg_err("1 varchar arg"),
        },
        Func::Lower => match args {
            [Value::Null] => Ok(Value::Null),
            [Value::Varchar(s)] => Ok(Value::Varchar(s.to_lowercase())),
            _ => arg_err("1 varchar arg"),
        },
        Func::Upper => match args {
            [Value::Null] => Ok(Value::Null),
            [Value::Varchar(s)] => Ok(Value::Varchar(s.to_uppercase())),
            _ => arg_err("1 varchar arg"),
        },
        Func::Least | Func::Greatest => {
            if args.is_empty() {
                return arg_err(">=1 arg");
            }
            if args.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let mut best = args[0].clone();
            for a in &args[1..] {
                let take = if func == Func::Least {
                    *a < best
                } else {
                    *a > best
                };
                if take {
                    best = a.clone();
                }
            }
            Ok(best)
        }
    }
}

/// SQL CAST semantics for one value (NULL casts to NULL). Public for the
/// vectorized expression engine.
pub fn cast_value(v: Value, to: DataType) -> DbResult<Value> {
    if v.is_null() {
        return Ok(Value::Null);
    }
    let fail = |v: &Value| DbError::TypeMismatch {
        expected: to.to_string(),
        found: v.to_string(),
    };
    Ok(match (to, &v) {
        (DataType::Integer, Value::Integer(_)) => v,
        (DataType::Integer, Value::Float(f)) => Value::Integer(*f as i64),
        (DataType::Integer, Value::Timestamp(t)) => Value::Integer(*t),
        (DataType::Integer, Value::Boolean(b)) => Value::Integer(i64::from(*b)),
        (DataType::Integer, Value::Varchar(s)) => {
            Value::Integer(s.trim().parse().map_err(|_| fail(&v))?)
        }
        (DataType::Float, _) => Value::Float(v.as_f64().ok_or_else(|| fail(&v))?),
        (DataType::Varchar, _) => Value::Varchar(v.to_string()),
        (DataType::Boolean, Value::Boolean(_)) => v,
        (DataType::Boolean, Value::Integer(i)) => Value::Boolean(*i != 0),
        (DataType::Timestamp, Value::Timestamp(_)) => v,
        (DataType::Timestamp, Value::Integer(i)) => Value::Timestamp(*i),
        (DataType::Timestamp, Value::Varchar(s)) => {
            Value::Timestamp(date::parse_timestamp(s).ok_or_else(|| fail(&v))?)
        }
        _ => return Err(fail(&v)),
    })
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { name, .. } => write!(f, "{name}"),
            Expr::Literal(v) => match v {
                Value::Varchar(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql_symbol())
            }
            Expr::Unary { op, input } => match op {
                UnOp::Neg => write!(f, "(-{input})"),
                UnOp::Not => write!(f, "(NOT {input})"),
            },
            Expr::Call { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::IsNull { input, negated } => {
                write!(f, "({input} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList {
                input,
                list,
                negated,
            } => {
                write!(f, "({input} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::Between { input, low, high } => {
                write!(f, "({input} BETWEEN {low} AND {high})")
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = otherwise {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { input, to } => write!(f, "CAST({input} AS {to})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Integer(10),
            Value::Varchar("bob".into()),
            Value::Float(2.5),
            Value::Null,
            Value::Timestamp(date::timestamp_from_civil(2012, 5, 17, 0, 0, 0)),
        ]
    }

    #[test]
    fn arithmetic_and_comparison() {
        let r = row();
        let e = Expr::binary(BinOp::Add, Expr::col(0, "a"), Expr::int(5));
        assert_eq!(e.eval(&r).unwrap(), Value::Integer(15));
        let e = Expr::binary(BinOp::Mul, Expr::col(2, "f"), Expr::int(4));
        assert_eq!(e.eval(&r).unwrap(), Value::Float(10.0));
        let e = Expr::binary(BinOp::Gt, Expr::col(0, "a"), Expr::int(9));
        assert_eq!(e.eval(&r).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn null_propagation_three_valued() {
        let r = row();
        let cmp = Expr::eq(Expr::col(3, "n"), Expr::int(1));
        assert_eq!(cmp.eval(&r).unwrap(), Value::Null);
        assert!(!cmp.matches(&r).unwrap(), "NULL comparison is not true");
        // NULL OR true = true; NULL AND false = false (Kleene)
        let or = Expr::binary(
            BinOp::Or,
            Expr::eq(Expr::col(3, "n"), Expr::int(1)),
            Expr::lit(Value::Boolean(true)),
        );
        assert_eq!(or.eval(&r).unwrap(), Value::Boolean(true));
        let and = Expr::binary(
            BinOp::And,
            Expr::eq(Expr::col(3, "n"), Expr::int(1)),
            Expr::lit(Value::Boolean(false)),
        );
        assert_eq!(and.eval(&r).unwrap(), Value::Boolean(false));
    }

    #[test]
    fn is_null_and_in_list() {
        let r = row();
        let e = Expr::IsNull {
            input: Box::new(Expr::col(3, "n")),
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Boolean(true));
        let e = Expr::InList {
            input: Box::new(Expr::col(0, "a")),
            list: vec![Value::Integer(9), Value::Integer(10)],
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn extract_functions_for_partitioning() {
        let r = row();
        let ym = Expr::call(Func::YearMonth, vec![Expr::col(4, "ts")]);
        assert_eq!(ym.eval(&r).unwrap(), Value::Integer(201_205));
        let y = Expr::call(Func::ExtractYear, vec![Expr::col(4, "ts")]);
        assert_eq!(y.eval(&r).unwrap(), Value::Integer(2012));
    }

    #[test]
    fn hash_is_stable_for_segmentation() {
        let r = row();
        let h = Expr::call(Func::Hash, vec![Expr::col(0, "a"), Expr::col(1, "b")]);
        let v1 = h.eval(&r).unwrap();
        let v2 = h.eval(&r).unwrap();
        assert_eq!(v1, v2);
        // Different inputs land elsewhere on the ring.
        let h2 = Expr::call(Func::Hash, vec![Expr::col(1, "b")]);
        assert_ne!(h2.eval(&r).unwrap(), v1);
    }

    #[test]
    fn split_and_conjoin() {
        let p = Expr::and(
            Expr::eq(Expr::col(0, "a"), Expr::int(1)),
            Expr::and(
                Expr::eq(Expr::col(1, "b"), Expr::int(2)),
                Expr::eq(Expr::col(2, "c"), Expr::int(3)),
            ),
        );
        let parts = p.clone().split_conjuncts();
        assert_eq!(parts.len(), 3);
        let back = Expr::conjunction(parts).unwrap();
        // Same set of conjuncts (associativity may change shape).
        assert_eq!(back.split_conjuncts().len(), 3);
        assert_eq!(p.referenced_columns(), vec![0, 1, 2]);
    }

    #[test]
    fn remap_columns() {
        let e = Expr::binary(BinOp::Add, Expr::col(2, "x"), Expr::col(5, "y"));
        let mapped = e
            .remap_columns(&|i| if i == 2 { Some(0) } else { Some(1) })
            .unwrap();
        assert_eq!(mapped.referenced_columns(), vec![0, 1]);
        assert!(e.remap_columns(&|_| None).is_none());
    }

    #[test]
    fn case_and_cast() {
        let r = row();
        let e = Expr::Case {
            branches: vec![(
                Expr::binary(BinOp::Gt, Expr::col(0, "a"), Expr::int(5)),
                Expr::lit(Value::Varchar("big".into())),
            )],
            otherwise: Some(Box::new(Expr::lit(Value::Varchar("small".into())))),
        };
        assert_eq!(e.eval(&r).unwrap(), Value::Varchar("big".into()));
        let c = Expr::Cast {
            input: Box::new(Expr::lit(Value::Varchar("42".into()))),
            to: DataType::Integer,
        };
        assert_eq!(c.eval(&[]).unwrap(), Value::Integer(42));
    }

    #[test]
    fn division_by_zero_errors() {
        let e = Expr::binary(BinOp::Div, Expr::int(1), Expr::int(0));
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn between() {
        let e = Expr::Between {
            input: Box::new(Expr::int(5)),
            low: Box::new(Expr::int(1)),
            high: Box::new(Expr::int(5)),
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Boolean(true));
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::and(
            Expr::binary(BinOp::Ge, Expr::col(0, "price"), Expr::int(10)),
            Expr::call(Func::ExtractMonth, vec![Expr::col(1, "date")]),
        );
        assert_eq!(e.to_string(), "((price >= 10) AND MONTH(date))");
    }
}
