//! Small newtype identifiers used across the system.

use std::fmt;

/// Logical commit timestamp (§5 of the paper).
///
/// Every tuple is stamped with the epoch of the transaction that committed
/// it; every delete marker carries the epoch it was deleted at. An epoch
/// boundary is a globally consistent snapshot, so snapshot reads need no
/// locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(pub u64);

impl Epoch {
    /// The epoch before any user transaction; bulk-loaded initial data
    /// commits at `Epoch(1)`.
    pub const ZERO: Epoch = Epoch(0);

    /// Successor epoch.
    #[must_use]
    pub fn next(self) -> Epoch {
        Epoch(self.0 + 1)
    }

    /// Predecessor epoch, saturating at zero. Under READ COMMITTED a query
    /// targets `current_epoch.prev()` — "the latest epoch" in paper terms.
    #[must_use]
    pub fn prev(self) -> Epoch {
        Epoch(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifies a node in the shared-nothing cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies a transaction within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_ordering_and_arithmetic() {
        assert!(Epoch(1) < Epoch(2));
        assert_eq!(Epoch(1).next(), Epoch(2));
        assert_eq!(Epoch(2).prev(), Epoch(1));
        assert_eq!(Epoch::ZERO.prev(), Epoch::ZERO, "prev saturates at zero");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Epoch(7).to_string(), "e7");
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(TxnId(42).to_string(), "txn42");
    }
}
