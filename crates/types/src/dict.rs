//! String dictionaries shared by dictionary-coded column vectors.
//!
//! The execution engine keeps `VARCHAR` columns dictionary-coded (§6.1:
//! operators "operate directly on encoded data"): a batch column is a
//! `Vec<u32>` of codes plus an immutable [`StringDictionary`]. Comparisons
//! against a literal then cost one dictionary probe per *distinct* value
//! instead of one string compare per row, and copying a column copies no
//! string bytes.

use std::collections::HashMap;

/// An append-only string interner: code ↔ string in insertion order.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct StringDictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringDictionary {
    pub fn new() -> StringDictionary {
        StringDictionary::default()
    }

    /// Build from a list of (not necessarily distinct) entries; codes follow
    /// first-occurrence order.
    pub fn from_entries(entries: impl IntoIterator<Item = String>) -> StringDictionary {
        let mut d = StringDictionary::new();
        for e in entries {
            d.intern_owned(e);
        }
        d
    }

    /// Code for `s`, inserting it if unseen.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        self.intern_owned(s.to_string())
    }

    /// Like [`StringDictionary::intern`] but takes ownership (no copy on
    /// first occurrence).
    pub fn intern_owned(&mut self, s: String) -> u32 {
        if let Some(&code) = self.index.get(&s) {
            return code;
        }
        let code = self.values.len() as u32;
        self.index.insert(s.clone(), code);
        self.values.push(s);
        code
    }

    /// Code for `s` if already present.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// String for a code (panics on an out-of-range code, which indicates
    /// a corrupted vector).
    pub fn get(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Entries in code order.
    pub fn entries(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trips() {
        let mut d = StringDictionary::new();
        let a = d.intern("apple");
        let b = d.intern("banana");
        assert_eq!(d.intern("apple"), a, "re-intern returns the same code");
        assert_ne!(a, b);
        assert_eq!(d.get(a), "apple");
        assert_eq!(d.lookup("banana"), Some(b));
        assert_eq!(d.lookup("cherry"), None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn from_entries_dedups_in_first_occurrence_order() {
        let d = StringDictionary::from_entries(["b", "a", "b", "c"].into_iter().map(String::from));
        assert_eq!(d.entries(), ["b", "a", "c"]);
        assert_eq!(d.lookup("b"), Some(0));
    }
}
