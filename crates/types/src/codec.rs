//! Hand-rolled binary serialization used by every on-disk format.
//!
//! The paper's storage formats are explicit (per-column data files, position
//! index files with per-block metadata, delete vectors), so we control the
//! byte layout directly rather than going through a generic serializer: the
//! compression experiments of §8.2 measure exactly these bytes.
//!
//! Integers use LEB128 varints with zig-zag for signed values — the natural
//! fit for delta-encoded columns.

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Value};

/// Append-only byte sink with primitive put operations.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Unsigned LEB128 varint.
    pub fn put_uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zig-zag signed varint.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_uvarint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Raw bytes without length prefix (caller knows the length).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Tagged value: 1 type byte + payload. NULL is tag 0.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Integer(i) => {
                self.put_u8(1);
                self.put_ivarint(*i);
            }
            Value::Float(f) => {
                self.put_u8(2);
                self.put_f64(*f);
            }
            Value::Varchar(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
            Value::Boolean(b) => {
                self.put_u8(4);
                self.put_u8(u8::from(*b));
            }
            Value::Timestamp(t) => {
                self.put_u8(5);
                self.put_ivarint(*t);
            }
        }
    }

    pub fn put_data_type(&mut self, ty: DataType) {
        self.put_u8(match ty {
            DataType::Integer => 1,
            DataType::Float => 2,
            DataType::Varchar => 3,
            DataType::Boolean => 4,
            DataType::Timestamp => 5,
        });
    }
}

/// Cursor over a byte slice with primitive get operations; every read is
/// bounds-checked and surfaces [`DbError::Corrupt`] on truncation.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DbError::Corrupt(format!(
                "unexpected end of buffer: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn get_f64(&mut self) -> DbResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub fn get_uvarint(&mut self) -> DbResult<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 {
                return Err(DbError::Corrupt("varint overflow".into()));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub fn get_ivarint(&mut self) -> DbResult<i64> {
        let u = self.get_uvarint()?;
        Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
    }

    pub fn get_bytes(&mut self) -> DbResult<&'a [u8]> {
        let n = self.get_uvarint()? as usize;
        self.take(n)
    }

    pub fn get_str(&mut self) -> DbResult<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| DbError::Corrupt("invalid utf8".into()))
    }

    pub fn get_raw(&mut self, n: usize) -> DbResult<&'a [u8]> {
        self.take(n)
    }

    pub fn get_value(&mut self) -> DbResult<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Integer(self.get_ivarint()?)),
            2 => Ok(Value::Float(self.get_f64()?)),
            3 => Ok(Value::Varchar(self.get_str()?)),
            4 => Ok(Value::Boolean(self.get_u8()? != 0)),
            5 => Ok(Value::Timestamp(self.get_ivarint()?)),
            t => Err(DbError::Corrupt(format!("unknown value tag {t}"))),
        }
    }

    pub fn get_data_type(&mut self) -> DbResult<DataType> {
        match self.get_u8()? {
            1 => Ok(DataType::Integer),
            2 => Ok(DataType::Float),
            3 => Ok(DataType::Varchar),
            4 => Ok(DataType::Boolean),
            5 => Ok(DataType::Timestamp),
            t => Err(DbError::Corrupt(format!("unknown data type tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_f64(2.5);
        w.put_str("hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert_eq!(r.get_str().unwrap(), "hello");
        assert!(r.is_empty());
    }

    #[test]
    fn varint_edge_cases() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut w = Writer::new();
            w.put_uvarint(v);
            let bytes = w.into_bytes();
            assert_eq!(Reader::new(&bytes).get_uvarint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300, 300] {
            let mut w = Writer::new();
            w.put_ivarint(v);
            let bytes = w.into_bytes();
            assert_eq!(Reader::new(&bytes).get_ivarint().unwrap(), v);
        }
    }

    #[test]
    fn small_varints_are_small() {
        let mut w = Writer::new();
        w.put_uvarint(100);
        assert_eq!(w.len(), 1);
        let mut w = Writer::new();
        w.put_ivarint(-3);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn value_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Integer(-42),
            Value::Float(1.25),
            Value::Varchar("abc".into()),
            Value::Boolean(true),
            Value::Timestamp(1_000_000),
        ];
        let mut w = Writer::new();
        for v in &vals {
            w.put_value(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &vals {
            assert_eq!(&r.get_value().unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let mut w = Writer::new();
        w.put_str("hello world");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(r.get_str(), Err(DbError::Corrupt(_))));
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        let bytes = [0xff; 11];
        let mut r = Reader::new(&bytes);
        assert!(matches!(r.get_uvarint(), Err(DbError::Corrupt(_))));
    }
}
