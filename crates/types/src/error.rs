//! Unified error type for the whole database.

use std::fmt;

/// Convenience result alias used across all `vdb-*` crates.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by any layer of the database.
///
/// A single error enum (rather than per-crate errors) keeps the public facade
/// simple: everything a user sees out of `vdb_core::Database` is a `DbError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text failed to lex or parse.
    Parse(String),
    /// Valid SQL that references unknown tables/columns or is semantically
    /// invalid (binder errors).
    Binder(String),
    /// The optimizer could not produce a plan (e.g. no live projection covers
    /// the query after node failures).
    Plan(String),
    /// Runtime execution failure.
    Execution(String),
    /// A catalog object (table, projection, node) was not found.
    NotFound(String),
    /// A catalog object already exists.
    AlreadyExists(String),
    /// Type mismatch during expression evaluation or load.
    TypeMismatch { expected: String, found: String },
    /// On-disk or in-memory serialized data failed to decode.
    Corrupt(String),
    /// Lock request could not be granted (conflict with a held mode).
    LockConflict {
        table: String,
        requested: String,
        held: String,
    },
    /// The cluster lost quorum or the operation would violate K-safety.
    Cluster(String),
    /// Transaction-level error (e.g. commit of an aborted transaction).
    Txn(String),
    /// Underlying I/O error (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// Constraint violation such as loading a row that fails the schema.
    Constraint(String),
}

impl DbError {
    /// Helper for I/O conversions that keeps call sites terse.
    pub fn io(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Binder(m) => write!(f, "binder error: {m}"),
            DbError::Plan(m) => write!(f, "planning error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::NotFound(m) => write!(f, "not found: {m}"),
            DbError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DbError::LockConflict {
                table,
                requested,
                held,
            } => write!(
                f,
                "lock conflict on table {table}: requested {requested}, held {held}"
            ),
            DbError::Cluster(m) => write!(f, "cluster error: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DbError::LockConflict {
            table: "sales".into(),
            requested: "X".into(),
            held: "I".into(),
        };
        assert_eq!(
            e.to_string(),
            "lock conflict on table sales: requested X, held I"
        );
        assert_eq!(
            DbError::Parse("unexpected token".into()).to_string(),
            "parse error: unexpected token"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DbError = io.into();
        assert!(matches!(e, DbError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DbError::Parse("x".into()), DbError::Parse("x".into()));
        assert_ne!(DbError::Parse("x".into()), DbError::Binder("x".into()));
    }
}
