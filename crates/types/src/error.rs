//! Unified error type for the whole database.

use std::fmt;

/// Convenience result alias used across all `vdb-*` crates.
pub type DbResult<T> = Result<T, DbError>;

/// Errors surfaced by any layer of the database.
///
/// A single error enum (rather than per-crate errors) keeps the public facade
/// simple: everything a user sees out of `vdb_core::Database` is a `DbError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// SQL text failed to lex or parse.
    Parse(String),
    /// Valid SQL that references unknown tables/columns or is semantically
    /// invalid (binder errors).
    Binder(String),
    /// The optimizer could not produce a plan (e.g. no live projection covers
    /// the query after node failures).
    Plan(String),
    /// Runtime execution failure.
    Execution(String),
    /// A catalog object (table, projection, node) was not found.
    NotFound(String),
    /// A catalog object already exists.
    AlreadyExists(String),
    /// Type mismatch during expression evaluation or load.
    TypeMismatch { expected: String, found: String },
    /// On-disk or in-memory serialized data failed to decode.
    Corrupt(String),
    /// Lock request could not be granted (conflict with a held mode).
    LockConflict {
        table: String,
        requested: String,
        held: String,
    },
    /// The cluster lost quorum or the operation would violate K-safety.
    Cluster(String),
    /// Transaction-level error (e.g. commit of an aborted transaction).
    Txn(String),
    /// Underlying I/O error (message-only so the error stays `Clone + Eq`).
    Io(String),
    /// Constraint violation such as loading a row that fails the schema.
    Constraint(String),
    /// Admission control rejected the statement outright: the wait queue is
    /// at capacity. Transient — retry once in-flight statements drain.
    AdmissionQueueFull { running: usize, waiting: usize },
    /// The statement waited its full admission-queue timeout without an
    /// execution slot freeing up. Transient.
    AdmissionTimeout { waited_ms: u64 },
    /// The statement exceeded its per-query deadline (it may still complete
    /// in the background; its slot releases when it truly finishes).
    QueryTimeout { deadline_ms: u64 },
    /// A store mutation failed mid-flight and the in-memory state can no
    /// longer be trusted: the database must be reopened from disk. Fatal
    /// for this process instance — retrying without a reopen cannot help.
    NeedsReopen(String),
    /// A specific node died (or was declared dead) while serving this
    /// operation. Transient: buddy projections can cover the ring position
    /// once the cluster reroutes, so the operation is safe to retry.
    NodeDown { node: usize, detail: String },
    /// The cluster cannot serve the operation right now (quorum or
    /// K-safety data coverage lost). Transient if nodes recover.
    Unavailable(String),
    /// Node recovery itself failed (no live buddy source, replay error).
    RecoveryFailed(String),
}

impl DbError {
    /// Helper for I/O conversions that keeps call sites terse.
    pub fn io(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }

    /// Whether retrying the same operation can plausibly succeed without
    /// operator intervention: admission pressure drains, lock conflicts
    /// resolve, dead nodes get rerouted around or recovered. Errors like
    /// parse/plan/corrupt/needs-reopen are deterministic — retrying the
    /// identical call cannot change the outcome.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DbError::AdmissionQueueFull { .. }
                | DbError::AdmissionTimeout { .. }
                | DbError::LockConflict { .. }
                | DbError::NodeDown { .. }
                | DbError::Unavailable(_)
        )
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Binder(m) => write!(f, "binder error: {m}"),
            DbError::Plan(m) => write!(f, "planning error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::NotFound(m) => write!(f, "not found: {m}"),
            DbError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DbError::LockConflict {
                table,
                requested,
                held,
            } => write!(
                f,
                "lock conflict on table {table}: requested {requested}, held {held}"
            ),
            DbError::Cluster(m) => write!(f, "cluster error: {m}"),
            DbError::Txn(m) => write!(f, "transaction error: {m}"),
            DbError::Io(m) => write!(f, "io error: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::AdmissionQueueFull { running, waiting } => write!(
                f,
                "admission queue full: {running} running, {waiting} waiting"
            ),
            DbError::AdmissionTimeout { waited_ms } => write!(
                f,
                "admission timed out after {waited_ms}ms waiting for a query slot"
            ),
            DbError::QueryTimeout { deadline_ms } => write!(
                f,
                "query timed out after {deadline_ms}ms (still completing in the background)"
            ),
            DbError::NeedsReopen(m) => write!(f, "store needs reopen: {m}"),
            DbError::NodeDown { node, detail } => {
                write!(f, "node {node} is down: {detail}")
            }
            DbError::Unavailable(m) => write!(f, "cluster unavailable: {m}"),
            DbError::RecoveryFailed(m) => write!(f, "recovery failed: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = DbError::LockConflict {
            table: "sales".into(),
            requested: "X".into(),
            held: "I".into(),
        };
        assert_eq!(
            e.to_string(),
            "lock conflict on table sales: requested X, held I"
        );
        assert_eq!(
            DbError::Parse("unexpected token".into()).to_string(),
            "parse error: unexpected token"
        );
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DbError = io.into();
        assert!(matches!(e, DbError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(DbError::Parse("x".into()), DbError::Parse("x".into()));
        assert_ne!(DbError::Parse("x".into()), DbError::Binder("x".into()));
    }

    #[test]
    fn retryability_separates_transient_from_fatal() {
        let transient = [
            DbError::AdmissionQueueFull {
                running: 4,
                waiting: 16,
            },
            DbError::AdmissionTimeout { waited_ms: 250 },
            DbError::NodeDown {
                node: 2,
                detail: "killed mid-query".into(),
            },
            DbError::Unavailable("quorum lost".into()),
            DbError::LockConflict {
                table: "t".into(),
                requested: "X".into(),
                held: "S".into(),
            },
        ];
        for e in &transient {
            assert!(e.is_retryable(), "{e} should be retryable");
        }
        let fatal = [
            DbError::NeedsReopen("poisoned mid-moveout".into()),
            DbError::QueryTimeout { deadline_ms: 100 },
            DbError::RecoveryFailed("no live buddy".into()),
            DbError::Parse("nope".into()),
            DbError::Corrupt("bad block".into()),
            DbError::Execution("divide by zero".into()),
        ];
        for e in &fatal {
            assert!(!e.is_retryable(), "{e} should not be retryable");
        }
    }
}
