//! Logical values and data types.
//!
//! The engine is value-generic: batches and rows carry [`Value`]s, while the
//! encoding layer (`vdb-encoding`) specializes on the underlying
//! [`DataType`] to produce compact byte representations. Vertica's original
//! C-Store prototype supported only 32-bit integers; §8.1 of the paper lists
//! "multiple data types such as FLOAT and VARCHAR" and "processing SQL
//! NULLs" among the product features Vertica added — this module implements
//! exactly that widened model (64-bit integral types included).

use crate::error::{DbError, DbResult};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A row is simply a vector of values, one per column of some schema.
pub type Row = Vec<Value>;

/// Logical column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit IEEE-754 float.
    Float,
    /// Variable-length UTF-8 string.
    Varchar,
    /// Boolean.
    Boolean,
    /// Seconds since the Unix epoch (see [`crate::date`] for calendar math).
    Timestamp,
}

impl DataType {
    /// Parse a SQL type name (`INT`, `INTEGER`, `FLOAT`, `DOUBLE`,
    /// `VARCHAR`, `BOOLEAN`, `TIMESTAMP`, `DATE`).
    pub fn parse_sql(name: &str) -> DbResult<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Ok(DataType::Integer),
            "FLOAT" | "DOUBLE" | "REAL" | "NUMERIC" => Ok(DataType::Float),
            "VARCHAR" | "TEXT" | "CHAR" | "STRING" => Ok(DataType::Varchar),
            "BOOLEAN" | "BOOL" => Ok(DataType::Boolean),
            "TIMESTAMP" | "DATE" | "DATETIME" => Ok(DataType::Timestamp),
            other => Err(DbError::Parse(format!("unknown type name {other}"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format!("{self:?}").to_ascii_uppercase())
    }
}

/// A single typed value, including SQL NULL.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (untyped; compatible with any column type).
    Null,
    Integer(i64),
    Float(f64),
    Varchar(String),
    Boolean(bool),
    /// Seconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Integer(_) => Some(DataType::Integer),
            Value::Float(_) => Some(DataType::Float),
            Value::Varchar(_) => Some(DataType::Varchar),
            Value::Boolean(_) => Some(DataType::Boolean),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integral view used by segmentation and integer encodings. Timestamps
    /// and booleans are integral; floats are not.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Integer(v) | Value::Timestamp(v) => Some(*v),
            Value::Boolean(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Numeric view: integers widen to floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Integer(v) | Value::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Varchar(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Truthiness under SQL three-valued logic: NULL is not true.
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Boolean(true))
    }

    /// 64-bit deterministic hash used by `SEGMENTED BY HASH(...)` and by the
    /// execution engine's hash tables. FNV-1a over a type tag plus the
    /// canonical byte representation, so equal values hash equally across
    /// nodes and across process restarts (required for the ring mapping of
    /// §3.6 to be stable).
    pub fn hash64(&self) -> u64 {
        match self {
            Value::Null => Value::hash64_null(),
            // Integers and timestamps share a representation so that a
            // prejoin between INT and TIMESTAMP keys co-locates.
            Value::Integer(v) | Value::Timestamp(v) => Value::hash64_of_i64(*v),
            Value::Float(v) => Value::hash64_of_f64(*v),
            Value::Varchar(s) => Value::hash64_of_str(s),
            Value::Boolean(b) => Value::hash64_of_i64(i64::from(*b)),
        }
    }

    /// [`Value::hash64`] of NULL without constructing a `Value`.
    pub fn hash64_null() -> u64 {
        hash_feed(HASH_OFFSET, &[0])
    }

    /// [`Value::hash64`] of an integral value (`Integer`, `Timestamp`, or
    /// `Boolean` as 0/1) without constructing a `Value` — the typed-vector
    /// hot path for SIP filters and hash keys.
    pub fn hash64_of_i64(v: i64) -> u64 {
        hash_feed(hash_feed(HASH_OFFSET, &[1]), &v.to_le_bytes())
    }

    /// [`Value::hash64`] of a float without constructing a `Value`.
    /// Hashes by the integral value when exact so that 1.0 and 1 co-locate;
    /// otherwise by bits.
    pub fn hash64_of_f64(v: f64) -> u64 {
        if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 {
            Value::hash64_of_i64(v as i64)
        } else {
            hash_feed(hash_feed(HASH_OFFSET, &[2]), &v.to_bits().to_le_bytes())
        }
    }

    /// [`Value::hash64`] of a string without constructing a `Value`.
    pub fn hash64_of_str(s: &str) -> u64 {
        hash_feed(hash_feed(HASH_OFFSET, &[3]), s.as_bytes())
    }

    /// Parse a textual field (as found in CSV bulk loads) into a value of
    /// the given type. Empty strings load as NULL, matching the bulk loader
    /// semantics described in §7 ("Bulk Loading and Rejected Records").
    pub fn parse_typed(text: &str, ty: DataType) -> DbResult<Value> {
        if text.is_empty() || text.eq_ignore_ascii_case("null") {
            return Ok(Value::Null);
        }
        let err = |found: &str| DbError::TypeMismatch {
            expected: ty.to_string(),
            found: found.to_string(),
        };
        match ty {
            DataType::Integer => text
                .parse::<i64>()
                .map(Value::Integer)
                .map_err(|_| err(text)),
            DataType::Float => text.parse::<f64>().map(Value::Float).map_err(|_| err(text)),
            DataType::Varchar => Ok(Value::Varchar(text.to_string())),
            DataType::Boolean => match text.to_ascii_lowercase().as_str() {
                "t" | "true" | "1" => Ok(Value::Boolean(true)),
                "f" | "false" | "0" => Ok(Value::Boolean(false)),
                _ => Err(err(text)),
            },
            DataType::Timestamp => {
                // Accept either raw seconds or `YYYY-MM-DD[ hh:mm:ss]`.
                if let Ok(secs) = text.parse::<i64>() {
                    return Ok(Value::Timestamp(secs));
                }
                crate::date::parse_timestamp(text)
                    .map(Value::Timestamp)
                    .ok_or_else(|| err(text))
            }
        }
    }

    /// Render the value as a CSV field (inverse of [`Value::parse_typed`]
    /// for non-string types).
    pub fn to_csv_field(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Integer(v) | Value::Timestamp(v) => v.to_string(),
            Value::Float(v) => format!("{v}"),
            Value::Varchar(s) => s.clone(),
            Value::Boolean(b) => if *b { "true" } else { "false" }.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Integer(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Varchar(s) => write!(f, "{s}"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Timestamp(v) => {
                let (y, m, d, hh, mm, ss) = crate::date::to_civil(*v);
                write!(f, "{y:04}-{m:02}-{d:02} {hh:02}:{mm:02}:{ss:02}")
            }
        }
    }
}

/// Equality treats NULL == NULL as true. This is *storage* equality (used by
/// sorting, RLE, dictionaries and group-by keys), not SQL `=` semantics —
/// SQL three-valued comparison lives in `expr::BinOp::eval`.
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Total order used by projection sort orders, merge joins and external
/// sorts: NULL sorts first; numeric types compare by numeric value (so an
/// Integer column can be compared against Float literals); floats use IEEE
/// total order for NaN stability.
impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Integer(a), Integer(b)) | (Timestamp(a), Timestamp(b)) => a.cmp(b),
            (Integer(a), Timestamp(b)) | (Timestamp(a), Integer(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Integer(a) | Timestamp(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Integer(b) | Timestamp(b)) => a.total_cmp(&(*b as f64)),
            (Varchar(a), Varchar(b)) => a.cmp(b),
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Boolean(a), Integer(b)) => i64::from(*a).cmp(b),
            (Integer(a), Boolean(b)) => a.cmp(&i64::from(*b)),
            // Heterogeneous comparisons outside the numeric family order by
            // a fixed type rank so the total order stays consistent.
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }
}

const HASH_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const HASH_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a inner loop shared by [`Value::hash64`] and the typed no-`Value`
/// variants.
fn hash_feed(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(HASH_PRIME);
    }
    h
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Boolean(_) => 1,
        Value::Integer(_) => 2,
        Value::Timestamp(_) => 3,
        Value::Float(_) => 4,
        Value::Varchar(_) => 5,
    }
}

/// Hash agrees with `Eq` (delegates to [`Value::hash64`]).
impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vals = [
            Value::Integer(3),
            Value::Null,
            Value::Integer(-1),
            Value::Null,
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Null);
        assert_eq!(vals[2], Value::Integer(-1));
    }

    #[test]
    fn numeric_cross_type_ordering() {
        assert_eq!(Value::Integer(2).cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Integer(2).cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Timestamp(100).cmp(&Value::Integer(99)),
            Ordering::Greater
        );
    }

    #[test]
    fn hash_is_deterministic_and_discriminates() {
        assert_eq!(Value::Integer(42).hash64(), Value::Integer(42).hash64());
        assert_ne!(Value::Integer(42).hash64(), Value::Integer(43).hash64());
        assert_ne!(
            Value::Varchar("a".into()).hash64(),
            Value::Varchar("b".into()).hash64()
        );
        // ints and equal-valued floats co-locate (prejoin key stability)
        assert_eq!(Value::Integer(7).hash64(), Value::Float(7.0).hash64());
    }

    #[test]
    fn native_hash_helpers_agree_with_value_hash() {
        assert_eq!(Value::hash64_of_i64(42), Value::Integer(42).hash64());
        assert_eq!(Value::hash64_of_i64(42), Value::Timestamp(42).hash64());
        assert_eq!(Value::hash64_of_i64(1), Value::Boolean(true).hash64());
        assert_eq!(Value::hash64_of_f64(2.5), Value::Float(2.5).hash64());
        assert_eq!(Value::hash64_of_f64(7.0), Value::Integer(7).hash64());
        assert_eq!(
            Value::hash64_of_str("x"),
            Value::Varchar("x".into()).hash64()
        );
        assert_eq!(Value::hash64_null(), Value::Null.hash64());
    }

    #[test]
    fn parse_typed_round_trips() {
        assert_eq!(
            Value::parse_typed("123", DataType::Integer).unwrap(),
            Value::Integer(123)
        );
        assert_eq!(
            Value::parse_typed("1.5", DataType::Float).unwrap(),
            Value::Float(1.5)
        );
        assert_eq!(
            Value::parse_typed("", DataType::Integer).unwrap(),
            Value::Null
        );
        assert_eq!(
            Value::parse_typed("true", DataType::Boolean).unwrap(),
            Value::Boolean(true)
        );
        assert!(Value::parse_typed("abc", DataType::Integer).is_err());
    }

    #[test]
    fn parse_timestamp_date_form() {
        let v = Value::parse_typed("2012-03-15", DataType::Timestamp).unwrap();
        assert_eq!(v.to_string(), "2012-03-15 00:00:00");
    }

    #[test]
    fn data_type_parse_sql() {
        assert_eq!(DataType::parse_sql("int").unwrap(), DataType::Integer);
        assert_eq!(DataType::parse_sql("VARCHAR").unwrap(), DataType::Varchar);
        assert!(DataType::parse_sql("blob").is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Boolean(true).is_true());
        assert!(!Value::Boolean(false).is_true());
        assert!(!Value::Null.is_true(), "NULL is not true (3VL)");
    }
}
