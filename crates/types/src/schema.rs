//! Logical table schemas.
//!
//! Vertica "models user data as tables of columns (attributes), though the
//! data is not physically arranged in this manner" (§3). The physical
//! arrangement — projections — lives in `vdb-storage`; this module is purely
//! the logical layer that SQL binds against.

use crate::error::{DbError, DbResult};
use crate::value::{DataType, Row, Value};
use std::fmt;

/// One column of a logical table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    /// NOT NULL constraint, enforced at load/insert time.
    pub not_null: bool,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, data_type: DataType) -> ColumnDef {
        ColumnDef {
            name: name.into(),
            data_type,
            not_null: false,
        }
    }

    #[must_use]
    pub fn not_null(mut self) -> ColumnDef {
        self.not_null = true;
        self
    }
}

/// Sort direction within a projection sort order or ORDER BY clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDirection {
    Asc,
    Desc,
}

/// One key of a sort order: a column index plus direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    pub column: usize,
    pub direction: SortDirection,
}

impl SortKey {
    pub fn asc(column: usize) -> SortKey {
        SortKey {
            column,
            direction: SortDirection::Asc,
        }
    }

    pub fn desc(column: usize) -> SortKey {
        SortKey {
            column,
            direction: SortDirection::Desc,
        }
    }
}

/// Compare two rows under a compound sort order.
pub fn compare_rows(a: &[Value], b: &[Value], keys: &[SortKey]) -> std::cmp::Ordering {
    for k in keys {
        let ord = a[k.column].cmp(&b[k.column]);
        let ord = match k.direction {
            SortDirection::Asc => ord,
            SortDirection::Desc => ord.reverse(),
        };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// A logical table schema: ordered, named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> TableSchema {
        TableSchema {
            name: name.into(),
            columns,
        }
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn column(&self, index: usize) -> &ColumnDef {
        &self.columns[index]
    }

    /// Validate a row against the schema: arity, types (NULL passes unless
    /// NOT NULL), with integer→float widening applied in place.
    pub fn validate_row(&self, row: &mut Row) -> DbResult<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::Constraint(format!(
                "table {} expects {} columns, row has {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (v, col) in row.iter_mut().zip(&self.columns) {
            if v.is_null() {
                if col.not_null {
                    return Err(DbError::Constraint(format!(
                        "column {} is NOT NULL",
                        col.name
                    )));
                }
                continue;
            }
            // Integer literals are accepted for float and timestamp columns.
            match (col.data_type, v.data_type().unwrap()) {
                (a, b) if a == b => {}
                (DataType::Float, DataType::Integer) => {
                    *v = Value::Float(v.as_i64().unwrap() as f64);
                }
                (DataType::Timestamp, DataType::Integer) => {
                    *v = Value::Timestamp(v.as_i64().unwrap());
                }
                (DataType::Integer, DataType::Timestamp) => {
                    *v = Value::Integer(v.as_i64().unwrap());
                }
                (expected, found) => {
                    return Err(DbError::TypeMismatch {
                        expected: format!("{expected} for column {}", col.name),
                        found: found.to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if c.not_null {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sales() -> TableSchema {
        TableSchema::new(
            "sales",
            vec![
                ColumnDef::new("sale_id", DataType::Integer).not_null(),
                ColumnDef::new("cust", DataType::Varchar),
                ColumnDef::new("price", DataType::Float),
                ColumnDef::new("date", DataType::Timestamp),
            ],
        )
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = sales();
        assert_eq!(s.column_index("CUST"), Some(1));
        assert_eq!(s.column_index("missing"), None);
    }

    #[test]
    fn validate_accepts_and_widens() {
        let s = sales();
        let mut row = vec![
            Value::Integer(1),
            Value::Varchar("bob".into()),
            Value::Integer(10), // int literal into float column
            Value::Integer(1_000_000),
        ];
        s.validate_row(&mut row).unwrap();
        assert_eq!(row[2], Value::Float(10.0));
        assert_eq!(row[3], Value::Timestamp(1_000_000));
    }

    #[test]
    fn validate_rejects_bad_arity_and_types() {
        let s = sales();
        let mut short = vec![Value::Integer(1)];
        assert!(matches!(
            s.validate_row(&mut short),
            Err(DbError::Constraint(_))
        ));
        let mut bad = vec![
            Value::Integer(1),
            Value::Integer(2), // int into varchar
            Value::Float(1.0),
            Value::Timestamp(0),
        ];
        assert!(matches!(
            s.validate_row(&mut bad),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validate_enforces_not_null() {
        let s = sales();
        let mut row = vec![Value::Null, Value::Null, Value::Null, Value::Null];
        assert!(matches!(
            s.validate_row(&mut row),
            Err(DbError::Constraint(_))
        ));
    }

    #[test]
    fn compare_rows_compound() {
        let keys = [SortKey::asc(0), SortKey::desc(1)];
        let a = vec![Value::Integer(1), Value::Integer(5)];
        let b = vec![Value::Integer(1), Value::Integer(3)];
        assert_eq!(compare_rows(&a, &b, &keys), std::cmp::Ordering::Less);
        let c = vec![Value::Integer(0), Value::Integer(9)];
        assert_eq!(compare_rows(&a, &c, &keys), std::cmp::Ordering::Greater);
    }

    #[test]
    fn display_schema() {
        assert_eq!(
            sales().to_string(),
            "sales(sale_id INTEGER NOT NULL, cust VARCHAR, price FLOAT, date TIMESTAMP)"
        );
    }
}
