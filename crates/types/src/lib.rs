//! `vdb-types` — foundation types shared by every crate in the workspace.
//!
//! This crate defines the logical data model of the system described in
//! *"The Vertica Analytic Database: C-Store 7 Years Later"* (Lamb et al.,
//! VLDB 2012): typed [`Value`]s, table [`schema`]s, bound scalar
//! [`expr::Expr`]essions, the hand-rolled binary [`codec`] used by the on-disk
//! formats, calendar [`date`] arithmetic for `PARTITION BY` expressions, and
//! the shared [`error::DbError`] type.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod codec;
pub mod date;
pub mod dict;
pub mod error;
pub mod expr;
pub mod ids;
pub mod schema;
pub mod value;

pub use dict::StringDictionary;
pub use error::{DbError, DbResult};
pub use expr::{BinOp, Expr, Func, UnOp};
pub use ids::{Epoch, NodeId, TxnId};
pub use schema::{ColumnDef, SortKey, TableSchema};
pub use value::{DataType, Row, Value};
