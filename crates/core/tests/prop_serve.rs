//! Property test for the serving layer: N concurrent sessions hammering
//! one [`vdb_core::serve::Server`] must produce exactly the answers a
//! single serial session produces, across shared-pool sizes {1, 2, 7}
//! (DoP-1 inline fast path, small pool, oversubscribed pool), with the
//! plan cache and admission gate in the loop.

use proptest::prelude::*;
use std::sync::Arc;
use vdb_core::{Engine, Row, Value};

/// `(g, v)` rows; low-cardinality `g` gives group-by queries real groups.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec(((0i64..5), (-50i64..50)), 1..120)
}

fn build_db(rows: &[(i64, i64)]) -> Engine {
    let db = Engine::builder().open().unwrap();
    db.execute("CREATE TABLE t (g INT, v INT)").unwrap();
    db.execute(
        "CREATE PROJECTION t_super AS SELECT g, v FROM t ORDER BY v \
         SEGMENTED BY HASH(v) ALL NODES",
    )
    .unwrap();
    let table: Vec<Row> = rows
        .iter()
        .map(|(g, v)| vec![Value::Integer(*g), Value::Integer(*v)])
        .collect();
    db.load("t", &table).unwrap();
    db
}

/// Deterministic query mix: aggregates, filters and sorts, fully ordered
/// so results compare row-for-row. Literals vary with `k` so the plan
/// cache sees both repeats (hits) and fresh statements (misses).
fn query_mix(cutoffs: &[i64]) -> Vec<String> {
    let mut queries = vec![
        "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g ORDER BY g".to_string(),
        "SELECT COUNT(*) FROM t".to_string(),
        "SELECT g, v FROM t ORDER BY v, g LIMIT 20".to_string(),
    ];
    for k in cutoffs {
        queries.push(format!("SELECT v FROM t WHERE v < {k} ORDER BY v"));
        queries.push(format!(
            "SELECT g, MIN(v), MAX(v) FROM t WHERE v <> {k} GROUP BY g ORDER BY g"
        ));
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn concurrent_sessions_match_serial(
        rows in arb_rows(),
        cutoffs in prop::collection::vec(-40i64..40, 1..4),
    ) {
        let db = build_db(&rows);
        let queries = Arc::new(query_mix(&cutoffs));

        // Serial ground truth straight through the Database (no cache, no
        // admission, no pool contention beyond one query at a time).
        let expected: Arc<Vec<Vec<Row>>> = Arc::new(
            queries.iter().map(|q| db.query(q).unwrap()).collect(),
        );

        let pool = vdb_exec::pool::shared();
        let original_workers = pool.workers();
        for pool_size in [1usize, 2, 7] {
            pool.resize(pool_size);
            let server = db.server().clone();
            const SESSIONS: usize = 4;
            std::thread::scope(|scope| {
                for s in 0..SESSIONS {
                    let server = server.clone();
                    let queries = queries.clone();
                    let expected = expected.clone();
                    scope.spawn(move || {
                        let mut session = server.session();
                        // Each session walks the mix at a different phase so
                        // distinct plans are in flight simultaneously.
                        for i in 0..queries.len() {
                            let qi = (i + s) % queries.len();
                            let got = session.query(&queries[qi]).unwrap();
                            assert_eq!(
                                got, expected[qi],
                                "pool={pool_size} session={s} query={:?}",
                                queries[qi]
                            );
                        }
                        // Prepared path: same statement, parameterized.
                        session
                            .prepare("cut", "SELECT v FROM t WHERE v < ? ORDER BY v")
                            .unwrap();
                        for k in [-10i64, 0, 25] {
                            let got = session
                                .execute_prepared("cut", &[Value::Integer(k)])
                                .unwrap()
                                .rows;
                            let want = server
                                .database()
                                .query(&format!("SELECT v FROM t WHERE v < {k} ORDER BY v"))
                                .unwrap();
                            assert_eq!(got, want, "pool={pool_size} session={s} cut={k}");
                        }
                    });
                }
            });
            let stats = server.stats();
            // 4 sessions × same mix: all but the first execution of each
            // statement must hit the cache.
            prop_assert!(
                stats.cache_hits > 0,
                "pool={pool_size}: expected cache hits, got {stats:?}"
            );
            prop_assert_eq!(stats.queue_rejections, 0);
            prop_assert_eq!(stats.queue_timeouts, 0);
        }
        pool.resize(original_workers);
    }
}
