//! Bulk CSV loader with rejected-record handling (§7).
//!
//! "Handling input data from the bulk loader that did not conform to the
//! defined schema in a large distributed system turned out to be important
//! and complex to implement" — malformed rows are collected with their line
//! numbers and reasons, never aborting the load.

use crate::database::Database;
use vdb_types::{DbResult, Row, Value};

/// Outcome of a CSV bulk load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    pub loaded: usize,
    /// (1-based line number, error message) of rejected records.
    pub rejected: Vec<(usize, String)>,
}

/// Parse comma-separated text against the table schema and bulk load the
/// conforming rows straight to the ROS. Empty fields load as NULL.
pub fn load_csv(db: &Database, table: &str, csv: &str) -> DbResult<LoadReport> {
    let schema = db
        .cluster()
        .table_schema(table)
        .ok_or_else(|| vdb_types::DbError::NotFound(format!("table {table}")))?;
    let mut rows: Vec<Row> = Vec::new();
    let mut rejected = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != schema.arity() {
            rejected.push((
                lineno,
                format!("expected {} fields, found {}", schema.arity(), fields.len()),
            ));
            continue;
        }
        let mut row: Row = Vec::with_capacity(fields.len());
        let mut ok = true;
        for (f, col) in fields.iter().zip(&schema.columns) {
            match Value::parse_typed(f.trim(), col.data_type) {
                Ok(v) => row.push(v),
                Err(e) => {
                    rejected.push((lineno, format!("column {}: {e}", col.name)));
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        // NOT NULL and type validation happen in the storage layer; catch
        // constraint rejections per row rather than failing the batch.
        let mut validated = row.clone();
        match schema.validate_row(&mut validated) {
            Ok(()) => rows.push(validated),
            Err(e) => rejected.push((lineno, e.to_string())),
        }
    }
    let loaded = rows.len();
    if !rows.is_empty() {
        db.load(table, &rows)?;
    }
    Ok(LoadReport { loaded, rejected })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> crate::Engine {
        let db = crate::Engine::builder().open().unwrap();
        db.execute("CREATE TABLE t (id INT NOT NULL, name VARCHAR, amt FLOAT)")
            .unwrap();
        db.execute(
            "CREATE PROJECTION t_super AS SELECT id, name, amt FROM t ORDER BY id \
             SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
        db
    }

    #[test]
    fn loads_conforming_rows() {
        let db = db();
        let report = load_csv(&db, "t", "1,ann,2.5\n2,bob,3.5\n").unwrap();
        assert_eq!(report.loaded, 2);
        assert!(report.rejected.is_empty());
        assert_eq!(db.query("SELECT id FROM t").unwrap().len(), 2);
    }

    #[test]
    fn rejects_malformed_rows_without_aborting() {
        let db = db();
        let csv = "1,ann,2.5\n\
                   not_a_number,bob,3.5\n\
                   3,carl\n\
                   ,dora,1.0\n\
                   5,eve,oops\n\
                   6,frank,6.5\n";
        let report = load_csv(&db, "t", csv).unwrap();
        assert_eq!(report.loaded, 2, "rows 1 and 6");
        assert_eq!(report.rejected.len(), 4);
        let lines: Vec<usize> = report.rejected.iter().map(|(l, _)| *l).collect();
        assert_eq!(lines, vec![2, 3, 4, 5]);
        // Line 4 violates NOT NULL (empty id field).
        assert!(report.rejected[2].1.contains("NOT NULL"));
        assert_eq!(db.query("SELECT id FROM t").unwrap().len(), 2);
    }

    #[test]
    fn empty_input_is_fine() {
        let db = db();
        let report = load_csv(&db, "t", "\n\n").unwrap();
        assert_eq!(report.loaded, 0);
        assert!(report.rejected.is_empty());
    }
}
