//! One front door for every deployment shape.
//!
//! `Engine::builder()` replaces the constructor zoo that grew around
//! [`Database`] (`single_node`, `single_node_with_threads`, `cluster_of`,
//! `open`, `open_with_config`) and [`Server`] (`new`, `with_defaults`):
//! the builder assembles the cluster topology, the executor budget, and
//! the serving layer in one place, and the resulting [`Engine`] exposes
//! the whole stack — direct statements through [`Database`] methods (the
//! engine derefs to its database) plus admission-controlled [`Session`]s
//! from the embedded [`Server`].
//!
//! ```
//! use vdb_core::{Engine, Value};
//!
//! let engine = Engine::builder().open().unwrap();
//! engine.execute("CREATE TABLE t (id INT, name VARCHAR)").unwrap();
//! engine
//!     .execute("CREATE PROJECTION t_super AS SELECT id, name FROM t ORDER BY id")
//!     .unwrap();
//! engine.execute("INSERT INTO t VALUES (1, 'ada')").unwrap();
//! let rows = engine.query("SELECT name FROM t WHERE id = 1").unwrap();
//! assert_eq!(rows, vec![vec![Value::Varchar("ada".into())]]);
//! ```
//!
//! A K-safe multi-node cluster with durable storage and a bounded
//! admission queue:
//!
//! ```no_run
//! use vdb_core::{Engine, ServeConfig};
//!
//! let engine = Engine::builder()
//!     .nodes(4)
//!     .k_safety(1)
//!     .data_dir("/var/lib/vdb")
//!     .threads(8)
//!     .serve(ServeConfig::default())
//!     .open()
//!     .unwrap();
//! let session = engine.session();
//! ```

use crate::database::{Database, DatabaseConfig};
use crate::serve::{ServeConfig, Server, Session};
use std::path::PathBuf;
use std::sync::Arc;
use vdb_cluster::ClusterConfig;
use vdb_exec::parallel::ExecOptions;
use vdb_types::{DbError, DbResult};

/// The assembled stack: a [`Database`] (cluster + SQL glue) plus the
/// serving layer over it. Cheap to clone (two `Arc`s); derefs to
/// [`Database`], so every database method is available directly.
#[derive(Clone)]
pub struct Engine {
    db: Arc<Database>,
    server: Arc<Server>,
}

impl Engine {
    /// Start configuring an engine. Defaults: one in-memory node, no
    /// K-safety, host-sized executor budget, default serving limits.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// The shared database handle (for APIs that want an `Arc<Database>`).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The serving layer: admission gate, plan cache, session factory.
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Open an admission-controlled session (one per client/thread).
    pub fn session(&self) -> Session {
        self.server.session()
    }
}

impl std::ops::Deref for Engine {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

/// Builder for [`Engine`]. Every knob is optional; `open()` validates the
/// combination and assembles the stack.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    nodes: Option<usize>,
    k_safety: Option<usize>,
    local_segments: Option<u32>,
    data_dir: Option<PathBuf>,
    threads: Option<usize>,
    serve: Option<ServeConfig>,
    wos_budget: Option<usize>,
}

impl EngineBuilder {
    /// Number of logical nodes in the in-process cluster (default 1).
    pub fn nodes(mut self, n: usize) -> EngineBuilder {
        self.nodes = Some(n);
        self
    }

    /// K-safety: segmented projections keep K+1 buddy replicas. Defaults
    /// to 1 for multi-node clusters, 0 for a single node. Must be less
    /// than the node count.
    pub fn k_safety(mut self, k: usize) -> EngineBuilder {
        self.k_safety = Some(k);
        self
    }

    /// Local segments per node (defaults: 1 single-node, 3 multi-node).
    pub fn local_segments(mut self, segments: u32) -> EngineBuilder {
        self.local_segments = Some(segments);
        self
    }

    /// Root directory for durable storage. First open creates it;
    /// subsequent opens recover (DDL replay, WOS redo logs, epoch
    /// truncation past the last durable commit marker). Without this the
    /// engine is in-memory.
    pub fn data_dir(mut self, root: impl Into<PathBuf>) -> EngineBuilder {
        self.data_dir = Some(root.into());
        self
    }

    /// Executor thread budget per query (overrides `VDB_EXEC_THREADS` /
    /// host parallelism).
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = Some(threads);
        self
    }

    /// Serving limits (admission concurrency/queue, plan cache size,
    /// query deadline). Defaults to [`ServeConfig::default`].
    pub fn serve(mut self, config: ServeConfig) -> EngineBuilder {
        self.serve = Some(config);
        self
    }

    /// Per-node WOS memory budget in bytes (§3.7 back-pressure): a
    /// WOS-path commit that leaves any node's total WOS footprint above
    /// this triggers an immediate forced moveout on that node. Default:
    /// unbounded (the periodic tuple-mover tick is the only drain).
    pub fn wos_budget(mut self, bytes: usize) -> EngineBuilder {
        self.wos_budget = Some(bytes);
        self
    }

    /// Validate the configuration and assemble the stack.
    pub fn open(self) -> DbResult<Engine> {
        let nodes = self.nodes.unwrap_or(1);
        if nodes == 0 {
            return Err(DbError::Cluster("engine needs at least one node".into()));
        }
        let k_safety = self.k_safety.unwrap_or(usize::from(nodes > 1));
        if k_safety >= nodes {
            return Err(DbError::Cluster(format!(
                "k_safety {k_safety} needs at least {} nodes, have {nodes}",
                k_safety + 1
            )));
        }
        let n_local_segments = self.local_segments.unwrap_or(if nodes == 1 {
            1
        } else {
            ClusterConfig::default().n_local_segments
        });
        let config = DatabaseConfig {
            cluster: ClusterConfig {
                n_nodes: nodes,
                k_safety,
                n_local_segments,
                wos_budget_bytes: self.wos_budget,
                ..Default::default()
            },
            exec: match self.threads {
                Some(t) => ExecOptions::with_threads(t),
                None => ExecOptions::default(),
            },
        };
        let db = Arc::new(match self.data_dir {
            Some(root) => Database::open_at(root, config)?,
            None => Database::new(config),
        });
        let server = Server::build(db.clone(), self.serve.unwrap_or_default());
        Ok(Engine { db, server })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_types::Value;

    #[test]
    fn default_builder_is_one_memory_node() {
        let engine = Engine::builder().open().unwrap();
        assert_eq!(engine.cluster().n_nodes(), 1);
        assert_eq!(engine.cluster().config.k_safety, 0);
        engine.execute("CREATE TABLE t (a INT)").unwrap();
        engine
            .execute("CREATE PROJECTION t_s AS SELECT a FROM t ORDER BY a")
            .unwrap();
        engine.execute("INSERT INTO t VALUES (7)").unwrap();
        assert_eq!(
            engine.query("SELECT a FROM t").unwrap(),
            vec![vec![Value::Integer(7)]]
        );
    }

    #[test]
    fn multi_node_defaults_to_k_safe() {
        let engine = Engine::builder().nodes(3).open().unwrap();
        assert_eq!(engine.cluster().n_nodes(), 3);
        assert_eq!(engine.cluster().config.k_safety, 1);
    }

    #[test]
    fn invalid_topologies_rejected() {
        assert!(matches!(
            Engine::builder().nodes(0).open(),
            Err(DbError::Cluster(_))
        ));
        assert!(matches!(
            Engine::builder().nodes(2).k_safety(2).open(),
            Err(DbError::Cluster(_))
        ));
    }

    #[test]
    fn sessions_share_the_database() {
        let engine = Engine::builder().open().unwrap();
        let s = engine.session();
        s.execute("CREATE TABLE t (a INT)").unwrap();
        s.execute("CREATE PROJECTION t_s AS SELECT a FROM t ORDER BY a")
            .unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        // Visible both through another session and the direct path.
        assert_eq!(engine.session().query("SELECT a FROM t").unwrap().len(), 1);
        assert_eq!(engine.query("SELECT a FROM t").unwrap().len(), 1);
    }

    #[test]
    fn durable_engine_reopens() {
        let root = std::env::temp_dir().join(format!("vdb_engine_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        {
            let engine = Engine::builder().data_dir(&root).open().unwrap();
            engine.execute("CREATE TABLE t (a INT)").unwrap();
            engine
                .execute("CREATE PROJECTION t_s AS SELECT a FROM t ORDER BY a")
                .unwrap();
            engine.execute("INSERT INTO t VALUES (42)").unwrap();
        }
        let engine = Engine::builder().data_dir(&root).open().unwrap();
        assert_eq!(
            engine.query("SELECT a FROM t").unwrap(),
            vec![vec![Value::Integer(42)]]
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
