//! Query-trace ring: the workload log the Database Designer designs from.
//!
//! Every SELECT the database executes — through [`crate::Database`]
//! directly or through the serving layer's sessions — is recorded here as
//! a [`TraceEntry`]: canonical SQL text, the columns its predicates /
//! GROUP BY / joins touch, and how many rows it returned. Identical
//! statements fold into one entry with a hit count, so the ring holds the
//! workload's *shape* (distinct statements weighted by frequency), not a
//! raw event stream. The ring is bounded: when `capacity` distinct
//! statements are exceeded, the least-recently-seen entry is evicted.
//!
//! Durable databases also spill the trace to `query_trace.log` under the
//! data root, so a reopened database remembers its workload and
//! [`crate::Database::auto_design`] can run before any new traffic
//! arrives. The spill is append-only and self-compacting: when it grows
//! past a rotation threshold it is rewritten from the in-memory ring.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use vdb_optimizer::BoundQuery;
use vdb_types::TableSchema;

/// Default number of distinct statements the ring retains.
pub const DEFAULT_TRACE_CAPACITY: usize = 512;

/// Rewrite the spill file from the ring once it grows past this.
const SPILL_ROTATE_BYTES: u64 = 1 << 20;

/// One distinct traced statement.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Canonical executable SQL (whitespace-normalized, literals inlined);
    /// re-compiling this against the current catalog reproduces the bound
    /// query.
    pub sql: String,
    /// Tables the FROM clause references.
    pub tables: Vec<String>,
    /// `table.column` names restricted by single-table predicates.
    pub predicate_columns: Vec<String>,
    /// `table.column` names grouped by.
    pub group_by_columns: Vec<String>,
    /// `table.column` names used as join keys.
    pub join_columns: Vec<String>,
    /// Rows returned by the most recent execution.
    pub result_rows: u64,
    /// How many times this statement ran.
    pub hits: u64,
}

/// Workload features of one bound query, resolved to column names at
/// capture time (the trace must stay meaningful across later DDL).
#[derive(Debug, Clone, Default)]
pub struct TraceFeatures {
    pub tables: Vec<String>,
    pub predicate_columns: Vec<String>,
    pub group_by_columns: Vec<String>,
    pub join_columns: Vec<String>,
}

impl TraceFeatures {
    /// Extract features from a bound query. `schema_of` resolves table
    /// names (column indexes in the query are schema-relative).
    pub fn of(q: &BoundQuery, schema_of: &dyn Fn(&str) -> Option<TableSchema>) -> TraceFeatures {
        let mut f = TraceFeatures::default();
        let schemas: Vec<Option<TableSchema>> = q
            .tables
            .iter()
            .map(|t| {
                f.tables.push(t.table.clone());
                schema_of(&t.table)
            })
            .collect();
        let name_of = |t: usize, c: usize| -> Option<String> {
            let schema = schemas.get(t)?.as_ref()?;
            let col = schema.columns.get(c)?;
            Some(format!("{}.{}", q.tables[t].table, col.name))
        };
        // Global column offsets (select/group-by expressions index the
        // concatenation of all FROM schemas).
        let mut offsets = Vec::with_capacity(schemas.len());
        let mut acc = 0usize;
        for s in &schemas {
            offsets.push(acc);
            acc += s.as_ref().map_or(0, |s| s.arity());
        }
        let locate = |g: usize| -> Option<(usize, usize)> {
            let t = offsets.iter().rposition(|&o| o <= g)?;
            Some((t, g - offsets[t]))
        };
        for (t, filter) in q.table_filters.iter().enumerate() {
            if let Some(filter) = filter {
                for c in filter.referenced_columns() {
                    f.predicate_columns.extend(name_of(t, c));
                }
            }
        }
        for g in &q.group_by {
            for gc in g.referenced_columns() {
                if let Some((t, c)) = locate(gc) {
                    f.group_by_columns.extend(name_of(t, c));
                }
            }
        }
        for e in &q.joins {
            for &c in &e.left_columns {
                f.join_columns.extend(name_of(e.left_table, c));
            }
            for &c in &e.right_columns {
                f.join_columns.extend(name_of(e.right_table, c));
            }
        }
        for v in [
            &mut f.predicate_columns,
            &mut f.group_by_columns,
            &mut f.join_columns,
        ] {
            let mut seen = std::collections::BTreeSet::new();
            v.retain(|c| seen.insert(c.clone()));
        }
        f
    }
}

/// Bounded ring of distinct traced statements (see the module docs).
pub struct QueryTrace {
    entries: Mutex<VecDeque<TraceEntry>>,
    capacity: usize,
    spill: Option<PathBuf>,
}

impl QueryTrace {
    /// Create a trace ring; with a spill path, any existing spill file is
    /// replayed into the ring first.
    pub fn new(capacity: usize, spill: Option<PathBuf>) -> QueryTrace {
        let trace = QueryTrace {
            entries: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            spill,
        };
        trace.replay_spill();
        trace
    }

    /// Record one execution of `sql`. A statement already in the ring
    /// folds into its entry (hit count + freshest row count + any features
    /// it was missing); a new statement may evict the least-recently-seen.
    pub fn record(&self, sql: &str, features: TraceFeatures, result_rows: u64) {
        self.record_inner(sql, Some(features), result_rows, 1, true);
    }

    /// Record a repeat execution where the bound query is no longer at
    /// hand (e.g. a plan-cache hit): bumps the existing entry, or inserts
    /// a feature-less one — `auto_design` re-compiles the SQL anyway.
    pub fn record_hit(&self, sql: &str, result_rows: u64) {
        self.record_inner(sql, None, result_rows, 1, true);
    }

    fn record_inner(
        &self,
        sql: &str,
        features: Option<TraceFeatures>,
        result_rows: u64,
        hits: u64,
        spill: bool,
    ) {
        let mut entries = self.entries.lock();
        if let Some(pos) = entries.iter().position(|e| e.sql == sql) {
            let mut e = entries.remove(pos).expect("position just found");
            e.hits += hits;
            e.result_rows = result_rows;
            if let Some(f) = features {
                if e.tables.is_empty() {
                    e.tables = f.tables;
                    e.predicate_columns = f.predicate_columns;
                    e.group_by_columns = f.group_by_columns;
                    e.join_columns = f.join_columns;
                }
            }
            entries.push_back(e);
        } else {
            let f = features.unwrap_or_default();
            entries.push_back(TraceEntry {
                sql: sql.to_string(),
                tables: f.tables,
                predicate_columns: f.predicate_columns,
                group_by_columns: f.group_by_columns,
                join_columns: f.join_columns,
                result_rows,
                hits,
            });
            if entries.len() > self.capacity {
                entries.pop_front();
            }
        }
        if spill {
            self.spill_line(&entries, sql, result_rows, hits);
        }
    }

    /// Current ring contents, least-recently-seen first.
    pub fn snapshot(&self) -> Vec<TraceEntry> {
        self.entries.lock().iter().cloned().collect()
    }

    /// Number of distinct statements currently held.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }

    /// Drop every entry (e.g. after a design round, to trace afresh).
    pub fn clear(&self) {
        self.entries.lock().clear();
        if let Some(path) = &self.spill {
            let _ = std::fs::remove_file(path);
        }
    }

    // -- durable spill ----------------------------------------------------

    /// Append one record; rotate (rewrite from the ring) when the file has
    /// grown past the threshold. Spill I/O is best-effort: losing trace
    /// history must never fail a query.
    fn spill_line(&self, entries: &VecDeque<TraceEntry>, sql: &str, rows: u64, hits: u64) {
        let Some(path) = &self.spill else { return };
        let rotate = std::fs::metadata(path).is_ok_and(|m| m.len() > SPILL_ROTATE_BYTES);
        if rotate {
            let mut text = String::new();
            for e in entries {
                text.push_str(&format!(
                    "{}\t{}\t{}\n",
                    e.hits,
                    e.result_rows,
                    escape(&e.sql)
                ));
            }
            let _ = std::fs::write(path, text);
            return;
        }
        let line = format!("{hits}\t{rows}\t{}\n", escape(sql));
        let _ = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
    }

    /// Rebuild the ring from the spill file (features are not spilled —
    /// they are re-derived when the SQL is re-compiled at design time).
    fn replay_spill(&self) {
        let Some(path) = &self.spill else { return };
        let Ok(text) = std::fs::read_to_string(path) else {
            return;
        };
        for line in text.lines() {
            let mut parts = line.splitn(3, '\t');
            let (Some(hits), Some(rows), Some(sql)) = (parts.next(), parts.next(), parts.next())
            else {
                continue; // torn tail
            };
            let (Ok(hits), Ok(rows)) = (hits.parse::<u64>(), rows.parse::<u64>()) else {
                continue;
            };
            self.record_inner(&unescape(sql), None, rows, hits, false);
        }
    }
}

fn escape(sql: &str) -> String {
    sql.replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\t', "\\t")
}

fn unescape(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(trace: &QueryTrace, sql: &str) -> TraceEntry {
        trace
            .snapshot()
            .into_iter()
            .find(|e| e.sql == sql)
            .expect("entry present")
    }

    #[test]
    fn folds_repeats_and_evicts_oldest() {
        let t = QueryTrace::new(2, None);
        t.record("SELECT 1", TraceFeatures::default(), 1);
        t.record("SELECT 1", TraceFeatures::default(), 1);
        t.record_hit("SELECT 1", 1);
        assert_eq!(entry(&t, "SELECT 1").hits, 3);
        t.record("SELECT 2", TraceFeatures::default(), 2);
        t.record("SELECT 3", TraceFeatures::default(), 3);
        assert_eq!(t.len(), 2, "capacity 2");
        let sqls: Vec<String> = t.snapshot().into_iter().map(|e| e.sql).collect();
        assert_eq!(sqls, vec!["SELECT 2", "SELECT 3"], "oldest evicted");
    }

    #[test]
    fn repeat_refreshes_recency() {
        let t = QueryTrace::new(2, None);
        t.record("a", TraceFeatures::default(), 0);
        t.record("b", TraceFeatures::default(), 0);
        t.record_hit("a", 0); // a is now the most recent
        t.record("c", TraceFeatures::default(), 0);
        let sqls: Vec<String> = t.snapshot().into_iter().map(|e| e.sql).collect();
        assert_eq!(sqls, vec!["a", "c"], "b (least recent) evicted");
    }

    #[test]
    fn spill_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("vdb_trace_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("query_trace.log");
        {
            let t = QueryTrace::new(8, Some(path.clone()));
            t.record("SELECT a\nFROM t", TraceFeatures::default(), 7);
            t.record_hit("SELECT a\nFROM t", 7);
        }
        let t = QueryTrace::new(8, Some(path));
        let e = entry(&t, "SELECT a\nFROM t");
        assert_eq!((e.hits, e.result_rows), (2, 7));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
