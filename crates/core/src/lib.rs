//! `vdb-core` — the Vertica-style analytic database facade.
//!
//! [`Database`] glues the stack together: SQL text goes through `vdb-sql`,
//! SELECTs are planned by `vdb-optimizer` against a statistics catalog
//! sampled from live storage, plans execute on the `vdb-cluster` simulation
//! (with `vdb-exec` pipelines per node over `vdb-storage` projections), and
//! DML runs under `vdb-txn` epochs and locks. The bulk loader implements
//! the §7 "rejected records" behaviour: malformed CSV rows are collected,
//! not fatal.

#![deny(rustdoc::broken_intra_doc_links)]

pub mod database;
pub mod engine;
pub mod loader;
pub mod serve;
pub mod trace;

pub use database::{AutoDesignInstall, AutoDesignReport, Database, DatabaseConfig, QueryResult};
pub use engine::{Engine, EngineBuilder};
pub use loader::{load_csv, LoadReport};
pub use serve::{ServeConfig, Server, ServerStats, Session};
pub use trace::{QueryTrace, TraceEntry};
pub use vdb_designer::DesignPolicy;

// Re-exports for example/bench ergonomics.
pub use vdb_cluster::{Cluster, ClusterConfig};
pub use vdb_exec::parallel::ExecOptions;
pub use vdb_types::{DataType, DbError, DbResult, Row, Value};
