//! Multi-session serving layer: sessions, prepared statements, a plan
//! cache, and admission control in front of one [`Database`].
//!
//! The paper's Vertica serves thousands of concurrent sessions against one
//! cluster; this module is that front end for the reproduction:
//!
//! ```text
//!   Session ── execute/prepare ──► Server
//!        │  normalize (vdb_sql::normalize: canonical text + params)
//!        │  admission gate (bounded slots + bounded queue + timeouts)
//!        │  plan cache (normalized key → Arc<PlannedQuery>, LRU,
//!        │              DDL-version stamped)
//!        └► Database ── morsel task sets ──► shared worker pool
//! ```
//!
//! * **Sessions** are cheap handles onto one shared [`Server`]; each holds
//!   its own named prepared statements. All sessions' queries multiplex
//!   the process-wide worker pool (`vdb_exec::pool`) — concurrency is
//!   bounded by the admission gate, not by thread explosion.
//! * **Plan cache.** SELECTs are canonicalized ([`vdb_sql::normalize()`]);
//!   the cache key is the canonical template *plus* its literal values
//!   (plans embed constants). Each entry is stamped with the
//!   [`Database::ddl_version`] read *before* planning and revalidated
//!   against the current version on every hit, so any DDL (dropping or
//!   creating a projection, designer installs) atomically invalidates
//!   every stale plan — see `plan_cache_survives_dml_but_not_ddl`. The
//!   cache is bypassed entirely while cluster nodes are down
//!   ([`Database::can_cache_plans`]): degraded plans are never cached and
//!   healthy plans are never served degraded.
//! * **Admission control.** A bounded number of statements run at once;
//!   the overflow waits in a bounded queue with a deadline. Queue-full,
//!   queue-timeout, and query-timeout all return real
//!   [`DbError::Execution`] errors — a session never hangs. A query
//!   timeout detaches the statement to a helper thread that carries the
//!   admission slot with it, so the slot frees when the work actually
//!   finishes, not when the caller gives up.

use crate::database::{Database, QueryResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use vdb_optimizer::PlannedQuery;
use vdb_sql::{normalize, NormalizedSql};
use vdb_types::{DbError, DbResult, Row, Value};

/// Serving-layer tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Statements allowed to execute concurrently (admission slots).
    pub max_concurrent: usize,
    /// Statements allowed to wait for a slot before new arrivals are
    /// rejected outright with "admission queue full".
    pub max_queue: usize,
    /// How long a statement may wait in the admission queue before it
    /// fails with a queue-timeout error.
    pub queue_timeout: Duration,
    /// Per-statement execution deadline. `None` (the default) runs
    /// inline with no deadline; `Some` detaches the statement to a helper
    /// thread and returns an error to the caller on expiry (the statement
    /// still runs to completion in the background — mid-plan cancellation
    /// is future work — but its admission slot is released only when it
    /// truly finishes).
    pub query_timeout: Option<Duration>,
    /// Cached plans kept before LRU eviction. `0` disables the cache.
    pub plan_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_concurrent: 64,
            max_queue: 1024,
            queue_timeout: Duration::from_secs(10),
            query_timeout: None,
            plan_cache_capacity: 256,
        }
    }
}

/// Cumulative serving counters (see [`Server::stats`]).
#[derive(Debug, Default)]
struct ServerCounters {
    admitted: AtomicU64,
    queue_rejections: AtomicU64,
    queue_timeouts: AtomicU64,
    query_timeouts: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Entries found but stamped with a stale DDL version (dropped).
    cache_invalidations: AtomicU64,
    /// Statements that skipped the cache (non-SELECT, cache disabled, or
    /// the cluster was degraded).
    cache_bypass: AtomicU64,
}

/// Snapshot of the server's cumulative counters for benchmarks and gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    pub admitted: u64,
    pub queue_rejections: u64,
    pub queue_timeouts: u64,
    pub query_timeouts: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_invalidations: u64,
    pub cache_bypass: u64,
}

impl ServerStats {
    /// Hits over cache-eligible statements (hits + misses).
    pub fn cache_hit_rate(&self) -> f64 {
        let eligible = self.cache_hits + self.cache_misses;
        if eligible == 0 {
            0.0
        } else {
            self.cache_hits as f64 / eligible as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Admission gate
// ---------------------------------------------------------------------------

struct GateState {
    running: usize,
    waiting: usize,
}

/// Bounded concurrent-statement slots with a bounded, deadline-checked
/// wait queue. Pure std sync (the vendored `parking_lot` shim has no
/// `Condvar`).
pub(crate) struct AdmissionGate {
    state: Mutex<GateState>,
    freed: Condvar,
    max_concurrent: usize,
    max_queue: usize,
    queue_timeout: Duration,
}

/// An occupied admission slot; releases on drop.
pub(crate) struct AdmissionGuard {
    gate: Arc<AdmissionGate>,
}

impl std::fmt::Debug for AdmissionGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdmissionGuard")
    }
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut s = self.gate.state.lock().expect("admission gate poisoned");
        s.running -= 1;
        drop(s);
        self.gate.freed.notify_one();
    }
}

impl AdmissionGate {
    fn new(max_concurrent: usize, max_queue: usize, queue_timeout: Duration) -> AdmissionGate {
        AdmissionGate {
            state: Mutex::new(GateState {
                running: 0,
                waiting: 0,
            }),
            freed: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            max_queue,
            queue_timeout,
        }
    }

    fn acquire(self: &Arc<Self>, counters: &ServerCounters) -> DbResult<AdmissionGuard> {
        let mut s = self.state.lock().expect("admission gate poisoned");
        if s.running < self.max_concurrent {
            s.running += 1;
            counters.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(AdmissionGuard { gate: self.clone() });
        }
        if s.waiting >= self.max_queue {
            counters.queue_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(DbError::AdmissionQueueFull {
                running: s.running,
                waiting: s.waiting,
            });
        }
        s.waiting += 1;
        let deadline = Instant::now() + self.queue_timeout;
        loop {
            if s.running < self.max_concurrent {
                s.waiting -= 1;
                s.running += 1;
                counters.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(AdmissionGuard { gate: self.clone() });
            }
            let now = Instant::now();
            if now >= deadline {
                s.waiting -= 1;
                counters.queue_timeouts.fetch_add(1, Ordering::Relaxed);
                return Err(DbError::AdmissionTimeout {
                    waited_ms: self.queue_timeout.as_millis() as u64,
                });
            }
            let (guard, _) = self
                .freed
                .wait_timeout(s, deadline - now)
                .expect("admission gate poisoned");
            s = guard;
        }
    }
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

struct CacheEntry {
    plan: Arc<PlannedQuery>,
    /// [`Database::ddl_version`] read before this plan was built.
    ddl_version: u64,
    /// Recency tick for LRU eviction.
    last_used: u64,
}

/// LRU cache of physical plans keyed by normalized SQL + literal values.
struct PlanCache {
    entries: Mutex<HashMap<String, CacheEntry>>,
    tick: AtomicU64,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> PlanCache {
        PlanCache {
            entries: Mutex::new(HashMap::new()),
            tick: AtomicU64::new(0),
            capacity,
        }
    }

    /// Look up a plan; a hit whose DDL-version stamp is stale is removed
    /// and reported as an invalidation, not a hit.
    fn get(
        &self,
        key: &str,
        current_ddl: u64,
        counters: &ServerCounters,
    ) -> Option<Arc<PlannedQuery>> {
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        match entries.get_mut(key) {
            Some(e) if e.ddl_version == current_ddl => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
                counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                Some(e.plan.clone())
            }
            Some(_) => {
                entries.remove(key);
                counters.cache_invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        }
    }

    fn insert(&self, key: String, plan: Arc<PlannedQuery>, ddl_version: u64) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self.entries.lock().expect("plan cache poisoned");
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        entries.insert(
            key,
            CacheEntry {
                plan,
                ddl_version,
                last_used,
            },
        );
        while entries.len() > self.capacity {
            // O(capacity) eviction scan — capacities are small (hundreds).
            let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            entries.remove(&oldest);
        }
    }

    fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }
}

// ---------------------------------------------------------------------------
// Server + sessions
// ---------------------------------------------------------------------------

/// The serving front end over one shared [`Database`]. Cheap to share;
/// spawn [`Session`]s from it (one per client/thread).
pub struct Server {
    db: Arc<Database>,
    config: ServeConfig,
    gate: Arc<AdmissionGate>,
    cache: PlanCache,
    counters: ServerCounters,
}

impl Server {
    /// Assemble the serving layer (the engine builder's serve path).
    pub(crate) fn build(db: Arc<Database>, config: ServeConfig) -> Arc<Server> {
        let gate = Arc::new(AdmissionGate::new(
            config.max_concurrent,
            config.max_queue,
            config.queue_timeout,
        ));
        Arc::new(Server {
            cache: PlanCache::new(config.plan_cache_capacity),
            gate,
            counters: ServerCounters::default(),
            config,
            db,
        })
    }

    #[deprecated(since = "0.2.0", note = "use Engine::builder().serve(config).open()")]
    pub fn new(db: Arc<Database>, config: ServeConfig) -> Arc<Server> {
        Server::build(db, config)
    }

    /// Serving defaults over a fresh handle to `db`.
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().open() and engine.server()"
    )]
    pub fn with_defaults(db: Arc<Database>) -> Arc<Server> {
        Server::build(db, ServeConfig::default())
    }

    /// Open a new session. Sessions are independent: each carries its own
    /// prepared statements, and all share this server's admission gate,
    /// plan cache, and database.
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            server: self.clone(),
            prepared: HashMap::new(),
        }
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    pub fn stats(&self) -> ServerStats {
        let c = &self.counters;
        ServerStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            queue_rejections: c.queue_rejections.load(Ordering::Relaxed),
            queue_timeouts: c.queue_timeouts.load(Ordering::Relaxed),
            query_timeouts: c.query_timeouts.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            cache_misses: c.cache_misses.load(Ordering::Relaxed),
            cache_invalidations: c.cache_invalidations.load(Ordering::Relaxed),
            cache_bypass: c.cache_bypass.load(Ordering::Relaxed),
        }
    }

    /// Cached plans currently resident (tests / introspection).
    pub fn plan_cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Admit, then run the statement under the configured query deadline.
    fn admit_and_run(self: &Arc<Self>, work: Statement) -> DbResult<QueryResult> {
        let guard = self.gate.acquire(&self.counters)?;
        match self.config.query_timeout {
            None => {
                let result = run_statement(self, work);
                drop(guard);
                result
            }
            Some(deadline) => {
                let server = self.clone();
                let outcome = run_with_deadline(deadline, move || {
                    let result = run_statement(&server, work);
                    // The slot rides with the work: it frees on true
                    // completion even if the caller timed out and left.
                    drop(guard);
                    result
                });
                if outcome.is_none() {
                    self.counters.query_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                outcome.unwrap_or(Err(DbError::QueryTimeout {
                    deadline_ms: deadline.as_millis() as u64,
                }))
            }
        }
    }
}

/// One normalized statement plus its bound parameter values.
struct Statement {
    normalized: NormalizedSql,
    /// Original text (used verbatim for the non-cacheable path when there
    /// are no placeholders to substitute).
    sql: String,
    params: Vec<Value>,
}

/// Run `work` on a helper thread with a deadline. `Some(result)` if it
/// finished in time, `None` on deadline expiry (work keeps running).
fn run_with_deadline<F>(deadline: Duration, work: F) -> Option<DbResult<QueryResult>>
where
    F: FnOnce() -> DbResult<QueryResult> + Send + 'static,
{
    struct Slot {
        result: Mutex<Option<DbResult<QueryResult>>>,
        done: Condvar,
    }
    let slot = Arc::new(Slot {
        result: Mutex::new(None),
        done: Condvar::new(),
    });
    let thread_slot = slot.clone();
    let spawned = std::thread::Builder::new()
        .name("vdb-serve-deadline".into())
        .spawn(move || {
            let result = work();
            if let Ok(mut r) = thread_slot.result.lock() {
                *r = Some(result);
            }
            thread_slot.done.notify_all();
        });
    if spawned.is_err() {
        return Some(Err(DbError::Execution(
            "could not spawn deadline helper thread".into(),
        )));
    }
    let mut r = slot.result.lock().expect("deadline slot poisoned");
    let end = Instant::now() + deadline;
    while r.is_none() {
        let now = Instant::now();
        if now >= end {
            return None;
        }
        let (guard, _) = slot
            .done
            .wait_timeout(r, end - now)
            .expect("deadline slot poisoned");
        r = guard;
    }
    r.take()
}

/// The statement pipeline behind the gate: plan-cache lookup for SELECTs,
/// plain execution for everything else.
fn run_statement(server: &Arc<Server>, work: Statement) -> DbResult<QueryResult> {
    let Statement {
        normalized,
        sql,
        params,
    } = work;
    let db = &server.db;
    let cacheable = server.config.plan_cache_capacity > 0
        && normalized.leading_word() == "select"
        && db.can_cache_plans();
    if !cacheable {
        server.counters.cache_bypass.fetch_add(1, Ordering::Relaxed);
        let text = if normalized.placeholder_count() > 0 {
            normalized.render(&params)?
        } else if params.is_empty() {
            sql
        } else {
            return Err(DbError::Binder(format!(
                "statement has no parameter placeholders, got {} value(s)",
                params.len()
            )));
        };
        return db.execute(&text);
    }
    let key = normalized.cache_key(&params)?;
    let current_ddl = db.ddl_version();
    if let Some(plan) = server.cache.get(&key, current_ddl, &server.counters) {
        let result = db.execute_planned(&plan)?;
        db.record_traced_hit(&normalized.render(&params)?, result.rows.len() as u64);
        return Ok(result);
    }
    server.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    // Stamp BEFORE compiling/planning: if DDL lands while we plan, the
    // stamp is already stale and the entry self-invalidates on next use.
    let stamp = db.ddl_version();
    let text = normalized.render(&params)?;
    match db.compile(&text)? {
        vdb_sql::BoundStatement::Select(q) => {
            let plan = Arc::new(db.plan_select(&q)?);
            let result = db.execute_planned(&plan);
            if let Ok(result) = &result {
                server.cache.insert(key, plan, stamp);
                db.record_traced_select(&text, &q, result.rows.len() as u64);
            }
            result
        }
        // `leading_word() == "select"` should guarantee a SELECT, but fall
        // back gracefully rather than asserting on dialect drift.
        other => db.execute_bound(other),
    }
}

/// A client connection: prepared statements + the shared server.
///
/// # Examples
///
/// ```
/// use vdb_core::{Engine, Value};
///
/// let engine = Engine::builder().open().unwrap();
/// engine.execute("CREATE TABLE t (id INT, v INT)").unwrap();
/// engine.execute("CREATE PROJECTION t_super AS SELECT id, v FROM t ORDER BY id").unwrap();
/// engine.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
///
/// let server = engine.server();
/// let mut session = server.session();
/// session.prepare("get", "SELECT v FROM t WHERE id = ?").unwrap();
/// let rows = session
///     .execute_prepared("get", &[Value::Integer(2)])
///     .unwrap()
///     .rows;
/// assert_eq!(rows, vec![vec![Value::Integer(20)]]);
/// // Same statement, same binding — served from the plan cache.
/// // (A different binding would be a fresh plan: plans embed constants.)
/// session.execute_prepared("get", &[Value::Integer(2)]).unwrap();
/// assert!(server.stats().cache_hits >= 1);
/// ```
pub struct Session {
    server: Arc<Server>,
    prepared: HashMap<String, NormalizedSql>,
}

impl Session {
    /// Execute one SQL statement (no parameters).
    pub fn execute(&self, sql: &str) -> DbResult<QueryResult> {
        let normalized = normalize(sql)?;
        if normalized.placeholder_count() > 0 {
            return Err(DbError::Binder(
                "statement has parameter placeholders; use prepare/execute_prepared".into(),
            ));
        }
        self.server.admit_and_run(Statement {
            normalized,
            sql: sql.to_string(),
            params: Vec::new(),
        })
    }

    /// Convenience: run a SELECT and return its rows.
    pub fn query(&self, sql: &str) -> DbResult<Vec<Row>> {
        Ok(self.execute(sql)?.rows)
    }

    /// Register a named prepared statement. `?` marks parameter slots.
    /// Re-preparing a name replaces it.
    pub fn prepare(&mut self, name: &str, sql: &str) -> DbResult<()> {
        let normalized = normalize(sql)?;
        self.prepared.insert(name.to_string(), normalized);
        Ok(())
    }

    /// Execute a prepared statement with `params` bound to its `?` slots
    /// in order.
    pub fn execute_prepared(&self, name: &str, params: &[Value]) -> DbResult<QueryResult> {
        let normalized = self
            .prepared
            .get(name)
            .ok_or_else(|| DbError::NotFound(format!("prepared statement {name}")))?
            .clone();
        let sql = normalized.render(params)?;
        self.server.admit_and_run(Statement {
            normalized,
            sql,
            params: params.to_vec(),
        })
    }

    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served_db() -> Arc<Database> {
        let db = crate::Engine::builder().open().unwrap().database().clone();
        db.execute("CREATE TABLE t (g INT, v INT)").unwrap();
        db.execute(
            "CREATE PROJECTION t_super AS SELECT g, v FROM t ORDER BY v \
             SEGMENTED BY HASH(v) ALL NODES",
        )
        .unwrap();
        let rows: Vec<Row> = (0..1000)
            .map(|i| vec![Value::Integer(i % 7), Value::Integer(i)])
            .collect();
        db.load("t", &rows).unwrap();
        db
    }

    #[test]
    fn sessions_share_the_plan_cache() {
        let server = Server::build(served_db(), ServeConfig::default());
        let s1 = server.session();
        let s2 = server.session();
        let sql = "SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g";
        let first = s1.query(sql).unwrap();
        // Different formatting, same canonical statement → cache hit.
        let second = s2
            .query("select G, count(*) from T group by g order by g")
            .unwrap();
        assert_eq!(first, second);
        let stats = server.stats();
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(server.plan_cache_len(), 1);
    }

    #[test]
    fn different_literals_do_not_share_plans() {
        let server = Server::build(served_db(), ServeConfig::default());
        let s = server.session();
        assert_eq!(s.query("SELECT v FROM t WHERE v = 3").unwrap().len(), 1);
        assert_eq!(s.query("SELECT v FROM t WHERE v = 4").unwrap().len(), 1);
        let stats = server.stats();
        assert_eq!(stats.cache_misses, 2, "distinct literals, distinct plans");
        // And re-running one of them hits.
        assert_eq!(
            s.query("SELECT v FROM t WHERE v = 3").unwrap(),
            vec![vec![Value::Integer(3)]]
        );
        assert_eq!(server.stats().cache_hits, 1);
    }

    #[test]
    fn plan_cache_survives_dml_but_not_ddl() {
        let server = Server::build(served_db(), ServeConfig::default());
        let s = server.session();
        let sql = "SELECT COUNT(*) FROM t";
        assert_eq!(
            s.execute(sql).unwrap().scalar(),
            Some(&Value::Integer(1000))
        );
        // DML: the cached plan template stays valid and sees the new rows.
        s.execute("INSERT INTO t VALUES (1, 5000)").unwrap();
        assert_eq!(
            s.execute(sql).unwrap().scalar(),
            Some(&Value::Integer(1001))
        );
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 1, "DML must not invalidate plans");
        assert_eq!(stats.cache_invalidations, 0);
        // DDL: a projection with a different sort order replaces the one
        // the cached plan scans; the stale plan must be discarded and the
        // query replanned, not answered from the dropped projection.
        s.execute(
            "CREATE PROJECTION t_by_g AS SELECT g, v FROM t ORDER BY g \
             SEGMENTED BY HASH(g) ALL NODES",
        )
        .unwrap();
        s.execute("DROP PROJECTION t_super").unwrap();
        assert_eq!(
            s.execute(sql).unwrap().scalar(),
            Some(&Value::Integer(1001)),
            "replanned query must run against the surviving projection"
        );
        let stats = server.stats();
        assert!(
            stats.cache_invalidations >= 1,
            "DDL must invalidate the stamped entry: {stats:?}"
        );
    }

    #[test]
    fn auto_design_ddl_invalidates_cached_plans() {
        // Regression: an online CREATE PROJECTION issued by auto_design
        // must bump ddl_version so plans that bound the old projection set
        // are discarded — a stale cached plan would keep scanning the old
        // superprojection and never exploit the designed one.
        let db = served_db();
        let server = Server::build(db.clone(), ServeConfig::default());
        let s = server.session();
        // Filter on g: the existing superprojection (sorted by v) cannot
        // prune this, so the designer has a win available.
        let hot = "SELECT COUNT(*) FROM t WHERE g = 3";
        for _ in 0..10 {
            s.execute(hot).unwrap(); // miss, then 9 cache hits
        }
        let stamp_before = db.ddl_version();
        let report = db
            .auto_design(vdb_designer::DesignPolicy::QueryOptimized)
            .unwrap();
        assert!(
            !report.installed.is_empty(),
            "session traffic must reach the trace: {report:?}"
        );
        assert!(
            db.ddl_version() > stamp_before,
            "auto_design DDL must bump ddl_version"
        );
        let hits_before = server.stats().cache_hits;
        assert_eq!(
            s.execute(hot).unwrap().scalar(),
            Some(&Value::Integer(143)), // i % 7 == 3 for i in 0..1000
            "replanned query answers identically"
        );
        let stats = server.stats();
        assert_eq!(
            stats.cache_hits, hits_before,
            "stale plan must not be served from the cache"
        );
        assert!(
            stats.cache_invalidations >= 1,
            "stamped entry must self-invalidate: {stats:?}"
        );
        // The replanned query uses an auto-designed projection.
        let explain = db.execute(&format!("EXPLAIN {hot}")).unwrap();
        let text: String = explain.rows.iter().map(|r| format!("{:?}", r[0])).collect();
        assert!(
            report.installed.iter().any(|i| text.contains(&i.name)),
            "EXPLAIN must pick an auto-designed projection: {text}"
        );
    }

    #[test]
    fn prepared_statements_bind_params_and_hit_the_cache() {
        let server = Server::build(served_db(), ServeConfig::default());
        let mut s = server.session();
        s.prepare("by_v", "SELECT g FROM t WHERE v = ?").unwrap();
        assert_eq!(
            s.execute_prepared("by_v", &[Value::Integer(14)])
                .unwrap()
                .rows,
            vec![vec![Value::Integer(0)]]
        );
        // Same parameter → plan-cache hit; different parameter → miss
        // (plans embed their constants).
        s.execute_prepared("by_v", &[Value::Integer(14)]).unwrap();
        let stats = server.stats();
        assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
        s.execute_prepared("by_v", &[Value::Integer(15)]).unwrap();
        assert_eq!(server.stats().cache_misses, 2);
        // Wrong arity and unknown names are real errors.
        assert!(s.execute_prepared("by_v", &[]).is_err());
        assert!(matches!(
            s.execute_prepared("nope", &[]),
            Err(DbError::NotFound(_))
        ));
        // Bare execute of parameterized text is rejected.
        assert!(s.execute("SELECT g FROM t WHERE v = ?").is_err());
    }

    #[test]
    fn admission_gate_rejects_and_times_out_deterministically() {
        let counters = ServerCounters::default();
        let gate = Arc::new(AdmissionGate::new(1, 0, Duration::from_millis(10)));
        let held = gate.acquire(&counters).unwrap();
        // max_queue = 0: no waiting allowed — immediate rejection.
        match gate.acquire(&counters) {
            Err(e @ DbError::AdmissionQueueFull { running: 1, .. }) => {
                assert!(e.is_retryable(), "queue pressure is transient: {e}");
            }
            other => panic!("expected queue-full error, got {other:?}"),
        }
        drop(held);
        // Slot freed: admission works again.
        let _held = gate.acquire(&counters).unwrap();

        // max_queue = 1: the waiter times out with a real error.
        let gate = Arc::new(AdmissionGate::new(1, 1, Duration::from_millis(20)));
        let _held = gate.acquire(&counters).unwrap();
        let started = Instant::now();
        match gate.acquire(&counters) {
            Err(e @ DbError::AdmissionTimeout { waited_ms: 20 }) => {
                assert!(e.is_retryable(), "queue timeout is transient: {e}");
                assert!(started.elapsed() >= Duration::from_millis(20));
            }
            other => panic!("expected queue-timeout error, got {other:?}"),
        }
        assert_eq!(counters.queue_timeouts.load(Ordering::Relaxed), 1);
        assert_eq!(counters.queue_rejections.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn queued_statement_proceeds_when_a_slot_frees() {
        let counters = Arc::new(ServerCounters::default());
        let gate = Arc::new(AdmissionGate::new(1, 4, Duration::from_secs(30)));
        let held = gate.acquire(&counters).unwrap();
        let waiter_gate = gate.clone();
        let waiter_counters = counters.clone();
        let waiter = std::thread::spawn(move || waiter_gate.acquire(&waiter_counters).map(|_| ()));
        // Give the waiter time to enqueue, then free the slot.
        std::thread::sleep(Duration::from_millis(30));
        drop(held);
        assert!(waiter.join().unwrap().is_ok());
        assert_eq!(counters.admitted.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn deadline_helper_times_out_and_still_finishes_the_work() {
        let finished = Arc::new(AtomicU64::new(0));
        let f = finished.clone();
        let outcome = run_with_deadline(Duration::from_millis(10), move || {
            std::thread::sleep(Duration::from_millis(80));
            f.store(1, Ordering::SeqCst);
            Ok(QueryResult {
                columns: vec![],
                rows: vec![],
                tag: "SLOW".into(),
            })
        });
        assert!(outcome.is_none(), "deadline must expire");
        // The detached work still completes (slot-release semantics).
        let waited = Instant::now();
        while finished.load(Ordering::SeqCst) == 0 {
            assert!(
                waited.elapsed() < Duration::from_secs(5),
                "work never finished"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        // And a fast closure beats the deadline.
        let outcome = run_with_deadline(Duration::from_secs(5), || {
            Ok(QueryResult {
                columns: vec![],
                rows: vec![],
                tag: "FAST".into(),
            })
        });
        assert_eq!(outcome.unwrap().unwrap().tag, "FAST");
    }

    #[test]
    fn query_timeout_surfaces_as_an_error_not_a_hang() {
        let db = served_db();
        let server = Server::build(
            db,
            ServeConfig {
                query_timeout: Some(Duration::from_secs(30)),
                ..ServeConfig::default()
            },
        );
        // A normal query under a generous deadline just works.
        let s = server.session();
        assert_eq!(
            s.execute("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(1000))
        );
        assert_eq!(server.stats().query_timeouts, 0);
    }

    #[test]
    fn lru_evicts_the_coldest_plan() {
        let db = served_db();
        let server = Server::build(
            db,
            ServeConfig {
                plan_cache_capacity: 2,
                ..ServeConfig::default()
            },
        );
        let s = server.session();
        s.query("SELECT v FROM t WHERE v = 1").unwrap();
        s.query("SELECT v FROM t WHERE v = 2").unwrap();
        s.query("SELECT v FROM t WHERE v = 1").unwrap(); // refresh #1
        s.query("SELECT v FROM t WHERE v = 3").unwrap(); // evicts #2
        assert_eq!(server.plan_cache_len(), 2);
        s.query("SELECT v FROM t WHERE v = 1").unwrap();
        let hits_before = server.stats().cache_hits;
        s.query("SELECT v FROM t WHERE v = 2").unwrap(); // must be a miss
        let stats = server.stats();
        assert_eq!(stats.cache_hits, hits_before);
        assert_eq!(stats.cache_misses, 4);
    }

    #[test]
    fn non_selects_bypass_the_cache() {
        let server = Server::build(served_db(), ServeConfig::default());
        let s = server.session();
        s.execute("INSERT INTO t VALUES (1, 2000)").unwrap();
        s.execute("EXPLAIN SELECT COUNT(*) FROM t").unwrap();
        let stats = server.stats();
        assert_eq!(stats.cache_bypass, 2);
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }

    #[test]
    fn degraded_cluster_bypasses_the_plan_cache() {
        let db = crate::Engine::builder()
            .nodes(3)
            .open()
            .unwrap()
            .database()
            .clone();
        db.execute("CREATE TABLE t (id INT, v INT)").unwrap();
        db.execute(
            "CREATE PROJECTION t_super AS SELECT id, v FROM t ORDER BY id \
             SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
        let rows: Vec<Row> = (0..100)
            .map(|i| vec![Value::Integer(i), Value::Integer(i % 5)])
            .collect();
        db.load("t", &rows).unwrap();
        let server = Server::build(db.clone(), ServeConfig::default());
        let s = server.session();
        let sql = "SELECT COUNT(*) FROM t";
        assert_eq!(s.execute(sql).unwrap().scalar(), Some(&Value::Integer(100)));
        db.cluster().fail_node(1);
        // Degraded: correct answer, no cache involvement.
        assert_eq!(s.execute(sql).unwrap().scalar(), Some(&Value::Integer(100)));
        let stats = server.stats();
        assert_eq!(stats.cache_bypass, 1);
        assert_eq!(stats.cache_hits, 0);
        db.cluster().recover_node(1).unwrap();
        // Healthy again: the cache resumes (original entry still valid —
        // node failure is not DDL).
        assert_eq!(s.execute(sql).unwrap().scalar(), Some(&Value::Integer(100)));
        assert_eq!(server.stats().cache_hits, 1);
    }
}
