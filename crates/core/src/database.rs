//! The `Database` facade: SQL in, rows out.
//!
//! This is the executor's *row-pivot edge*: plans run columnar end to end
//! (typed vectors, selection vectors, vectorized expression evaluation —
//! see `vdb_exec::expr_vec`), and batches are expanded into `Vec<Row>`
//! results only when they leave the engine here, via
//! `vdb_exec::collect_rows` / `Batch::into_rows`.

use crate::trace::{QueryTrace, TraceFeatures, DEFAULT_TRACE_CAPACITY};
use parking_lot::RwLock;
use std::collections::HashSet;
use vdb_cluster::{Cluster, ClusterConfig};
use vdb_exec::parallel::ExecOptions;
use vdb_optimizer::OptimizerCatalog;
use vdb_sql::{BoundStatement, SchemaProvider};
use vdb_types::{DbError, DbResult, Epoch, Row, TableSchema, Value};

/// Database construction parameters (wraps the cluster config).
#[derive(Debug, Clone, Default)]
pub struct DatabaseConfig {
    pub cluster: ClusterConfig,
    /// Executor thread budget per query (morsel-driven parallel scans).
    /// Defaults to `VDB_EXEC_THREADS` or the host's available
    /// parallelism; the planner clamps per scan to the projection's
    /// container-morsel count.
    pub exec: ExecOptions,
}

/// Result of a statement: column names plus rows (empty for DDL/DML, which
/// report a tag instead).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
    /// Human-readable command tag ("CREATE TABLE", "INSERT 3", ...).
    pub tag: String,
}

impl QueryResult {
    fn tag(tag: impl Into<String>) -> QueryResult {
        QueryResult {
            columns: vec![],
            rows: vec![],
            tag: tag.into(),
        }
    }

    /// Single-column convenience accessor.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }
}

/// The database: a cluster plus SQL/plan caching glue. Construct one
/// through [`crate::Engine::builder`] (the engine derefs to its database);
/// [`Database::new`] remains the low-level explicit-config entry point.
///
/// # Examples
///
/// Create a table, insert through the WOS, and query — the whole
/// SQL→optimizer→executor→storage pipeline on one node:
///
/// ```
/// use vdb_core::{Engine, Value};
///
/// let db = Engine::builder().open().unwrap();
/// db.execute("CREATE TABLE t (id INT, name VARCHAR)").unwrap();
/// db.execute("CREATE PROJECTION t_super AS SELECT id, name FROM t ORDER BY id")
///     .unwrap();
/// db.execute("INSERT INTO t VALUES (1, 'ada')").unwrap();
/// db.execute("INSERT INTO t VALUES (2, 'grace')").unwrap();
///
/// let rows = db.query("SELECT name FROM t WHERE id = 2").unwrap();
/// assert_eq!(rows, vec![vec![Value::Varchar("grace".into())]]);
///
/// let count = db.execute("SELECT COUNT(*) FROM t").unwrap();
/// assert_eq!(count.scalar(), Some(&Value::Integer(2)));
/// ```
pub struct Database {
    cluster: Cluster,
    /// Executor thread budget handed to the planner per query.
    exec: ExecOptions,
    /// Catalog cache keyed by the epoch it was built at.
    catalog: RwLock<Option<(Epoch, OptimizerCatalog)>>,
    /// Monotone counter bumped by every DDL-shaped catalog change
    /// (CREATE/DROP TABLE/PROJECTION, designer installs). Cached physical
    /// plans stamp the version they were planned under and are discarded
    /// when it moves — unlike the epoch-keyed catalog cache above, plain
    /// DML does NOT bump this, so plans survive inserts/deletes (they are
    /// templates; every execution re-snapshots its containers).
    ddl_version: std::sync::atomic::AtomicU64,
    /// Durable databases append every successful DDL statement here so
    /// reopen can rebuild the catalog before reattaching storage.
    ddl_log: Option<std::path::PathBuf>,
    /// Workload capture for the Database Designer: every SELECT executed
    /// here or through the serving layer folds into this bounded ring
    /// (durable databases spill it next to the DDL log).
    trace: QueryTrace,
}

impl Database {
    pub fn new(config: DatabaseConfig) -> Database {
        Database {
            cluster: Cluster::new(config.cluster),
            exec: config.exec,
            catalog: RwLock::new(None),
            ddl_version: std::sync::atomic::AtomicU64::new(0),
            ddl_log: None,
            trace: QueryTrace::new(DEFAULT_TRACE_CAPACITY, None),
        }
    }

    /// Open (or create) a durable single-node database rooted at `root`.
    ///
    /// First open creates the directory; subsequent opens **recover**: the
    /// DDL log is replayed to rebuild tables and projections (projection
    /// stores reattach to their on-disk manifests, replaying each WOS redo
    /// log), the epoch clock restarts one past the last durable commit
    /// marker, and any effects stamped after that marker — writes applied
    /// by a transaction that crashed before its marker — are truncated
    /// away. See `ARCHITECTURE.md` ("Durability and crash recovery").
    #[deprecated(since = "0.2.0", note = "use Engine::builder().data_dir(root).open()")]
    pub fn open(root: impl AsRef<std::path::Path>) -> DbResult<Database> {
        Database::open_at(
            root,
            DatabaseConfig {
                cluster: ClusterConfig {
                    n_nodes: 1,
                    k_safety: 0,
                    n_local_segments: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    }

    /// Durable open with explicit cluster/executor configuration.
    /// `config.cluster.data_root` is overwritten with `root`.
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().data_dir(root) with topology knobs"
    )]
    pub fn open_with_config(
        root: impl AsRef<std::path::Path>,
        config: DatabaseConfig,
    ) -> DbResult<Database> {
        Database::open_at(root, config)
    }

    /// [`Database::new`] rooted at `root` for durability (the engine
    /// builder's durable path; `config.cluster.data_root` is overwritten).
    pub(crate) fn open_at(
        root: impl AsRef<std::path::Path>,
        mut config: DatabaseConfig,
    ) -> DbResult<Database> {
        let root = root.as_ref();
        std::fs::create_dir_all(root)
            .map_err(|e| DbError::Io(format!("create data root {}: {e}", root.display())))?;
        config.cluster.data_root = Some(root.to_path_buf());
        let ddl_path = root.join("ddl.log");
        let existing_ddl = match std::fs::read_to_string(&ddl_path) {
            Ok(text) => Some(text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(DbError::Io(format!("read ddl.log: {e}"))),
        };
        let db = Database {
            cluster: Cluster::try_new(config.cluster)?,
            exec: config.exec,
            catalog: RwLock::new(None),
            ddl_version: std::sync::atomic::AtomicU64::new(0),
            ddl_log: Some(ddl_path),
            trace: QueryTrace::new(DEFAULT_TRACE_CAPACITY, Some(root.join("query_trace.log"))),
        };
        if let Some(text) = existing_ddl {
            db.replay_ddl(&text)?;
            let marker = db.cluster.last_durable_epoch();
            db.cluster.epochs.restore_current(marker.next());
            db.cluster.truncate_all_after(marker)?;
        }
        Ok(db)
    }

    /// Rebuild the catalog from logged DDL. Statements are applied through
    /// the cluster directly — NOT [`Database::execute_bound`] — because
    /// `CREATE PROJECTION` must not re-run its populate-from-table refresh:
    /// the projection stores attach to their manifests with data already
    /// present.
    fn replay_ddl(&self, text: &str) -> DbResult<()> {
        let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
        for (i, line) in lines.iter().enumerate() {
            let sql = unescape_ddl(line);
            let stmt = match vdb_sql::compile(
                &sql,
                &Schemas {
                    cluster: &self.cluster,
                },
            ) {
                Ok(stmt) => stmt,
                // An unparseable, unterminated *final* line is debris from
                // a crash mid-append (the log is write-ahead); everything
                // before it already replayed, so recovery proceeds without
                // it — `append_ddl` truncates it before the next write.
                // Anywhere else it's genuine corruption.
                Err(_) if i + 1 == lines.len() && !text.ends_with('\n') => break,
                Err(e) => return Err(DbError::Corrupt(format!("ddl.log line {}: {e}", i + 1))),
            };
            let applied = match stmt {
                BoundStatement::CreateTable {
                    schema,
                    partition_by,
                } => self.cluster.create_table(schema, partition_by),
                BoundStatement::CreateProjection { def } => self.cluster.create_projection(def),
                BoundStatement::DropTable(name) => self.cluster.drop_table(&name),
                BoundStatement::DropProjection(name) => self.cluster.drop_projection(&name),
                _ => {
                    return Err(DbError::Corrupt(format!(
                        "non-DDL statement in ddl.log: {sql}"
                    )))
                }
            };
            if let Err(e) = applied {
                match e {
                    // The log is written ahead of the statement's effects,
                    // so a deterministic statement-level rejection
                    // (duplicate name, missing object, bad definition)
                    // just means the original execution failed after
                    // logging — it left nothing behind to recover.
                    DbError::AlreadyExists(_) | DbError::NotFound(_) | DbError::Plan(_) => {}
                    other => return Err(other),
                }
            }
        }
        Ok(())
    }

    /// Durably append one DDL statement to the log. Called *before* the
    /// statement executes (write-ahead): a crash between log and effects
    /// replays the statement on reopen instead of stranding orphaned
    /// on-disk state the vanished statement created. No-op in-memory.
    fn append_ddl(&self, sql: &str) -> DbResult<()> {
        let Some(path) = &self.ddl_log else {
            return Ok(());
        };
        use std::io::{Read, Seek, SeekFrom, Write};
        let io = |e: std::io::Error| DbError::Io(format!("append ddl.log: {e}"));
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)
            .map_err(io)?;
        // A crash mid-append strands an unterminated final line; replay
        // skipped it, so drop it here — appending after it would weld the
        // new statement onto the debris.
        let mut contents = Vec::new();
        f.read_to_end(&mut contents).map_err(io)?;
        let keep = if contents.is_empty() || contents.ends_with(b"\n") {
            contents.len()
        } else {
            contents
                .iter()
                .rposition(|&b| b == b'\n')
                .map(|i| i + 1)
                .unwrap_or(0)
        };
        if keep != contents.len() {
            f.set_len(keep as u64).map_err(io)?;
        }
        f.seek(SeekFrom::Start(keep as u64)).map_err(io)?;
        writeln!(f, "{}", escape_ddl(sql)).map_err(io)?;
        f.sync_all().map_err(io)
    }

    /// Single-node, no-buddy database (laptop mode; what the Table 3 and
    /// Table 4 experiments use).
    #[deprecated(since = "0.2.0", note = "use Engine::builder().open()")]
    pub fn single_node() -> Database {
        Database::new(DatabaseConfig {
            cluster: ClusterConfig {
                n_nodes: 1,
                k_safety: 0,
                n_local_segments: 1,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    /// A K-safe multi-node cluster.
    #[deprecated(
        since = "0.2.0",
        note = "use Engine::builder().nodes(n).k_safety(k).open()"
    )]
    pub fn cluster_of(n_nodes: usize, k_safety: usize) -> Database {
        Database::new(DatabaseConfig {
            cluster: ClusterConfig {
                n_nodes,
                k_safety,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    /// Single-node database with an explicit executor thread budget
    /// (overrides `VDB_EXEC_THREADS` / host parallelism).
    #[deprecated(since = "0.2.0", note = "use Engine::builder().threads(t).open()")]
    pub fn single_node_with_threads(threads: usize) -> Database {
        Database::new(DatabaseConfig {
            cluster: ClusterConfig {
                n_nodes: 1,
                k_safety: 0,
                n_local_segments: 1,
                ..Default::default()
            },
            exec: ExecOptions::with_threads(threads),
        })
    }

    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The executor thread budget every query is planned with (the planner
    /// clamps per scan — and per parallel-join side — to the projection's
    /// container-morsel count).
    pub fn exec_options(&self) -> ExecOptions {
        self.exec
    }

    fn invalidate_catalog(&self) {
        *self.catalog.write() = None;
    }

    /// Record a DDL-shaped catalog change (see the `ddl_version` field).
    /// Called *after* the cluster mutation lands, so a plan stamped before
    /// the bump can never have observed the new catalog.
    fn bump_ddl_version(&self) {
        self.ddl_version
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    /// Current DDL/catalog version for plan-cache revalidation: a cached
    /// plan is valid iff the version it was stamped with (read *before*
    /// planning) still equals this.
    pub fn ddl_version(&self) -> u64 {
        self.ddl_version.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// May physical plans be cached right now? Plans bake in a projection
    /// choice; with nodes down the planner restricts itself to projections
    /// that are still fully live, so those degraded plans must not be
    /// cached (nor should cached healthy plans be served — the caller
    /// bypasses the cache entirely while degraded).
    pub fn can_cache_plans(&self) -> bool {
        self.cluster.up_nodes().len() == self.cluster.n_nodes()
    }

    /// Parse + bind one statement against the current catalog (the serving
    /// layer's entry point; [`Database::execute`] composes this with
    /// [`Database::execute_bound`]).
    pub fn compile(&self, sql: &str) -> DbResult<BoundStatement> {
        vdb_sql::compile(
            sql,
            &Schemas {
                cluster: &self.cluster,
            },
        )
    }

    /// Plan a bound SELECT into a reusable physical-plan template. The
    /// plan holds no epoch or container state — every
    /// [`Database::execute_planned`] re-snapshots — so it stays valid
    /// across DML; DDL invalidation is the caller's job via
    /// [`Database::ddl_version`] stamping.
    pub fn plan_select(
        &self,
        q: &vdb_optimizer::BoundQuery,
    ) -> DbResult<vdb_optimizer::PlannedQuery> {
        let catalog = self.optimizer_catalog()?;
        let live = self.live_projections();
        vdb_optimizer::plan(&catalog, q, live.as_ref(), &self.exec)
    }

    /// Execute a previously planned SELECT at a fresh read-committed
    /// snapshot.
    pub fn execute_planned(&self, planned: &vdb_optimizer::PlannedQuery) -> DbResult<QueryResult> {
        let snapshot = self.cluster.epochs.read_committed_snapshot();
        let rows = self.cluster.execute(planned, snapshot)?;
        Ok(QueryResult {
            columns: planned.output_names.clone(),
            tag: format!("SELECT {}", rows.len()),
            rows,
        })
    }

    /// Current optimizer catalog (rebuilt when the epoch moved).
    pub fn optimizer_catalog(&self) -> DbResult<OptimizerCatalog> {
        let epoch = self.cluster.epochs.current();
        if let Some((e, cat)) = self.catalog.read().as_ref() {
            if *e == epoch {
                return Ok(cat.clone());
            }
        }
        let cat = self.cluster.catalog()?;
        *self.catalog.write() = Some((epoch, cat.clone()));
        Ok(cat)
    }

    /// Execute one SQL statement.
    pub fn execute(&self, sql: &str) -> DbResult<QueryResult> {
        let stmt = self.compile(sql)?;
        let is_ddl = matches!(
            stmt,
            BoundStatement::CreateTable { .. }
                | BoundStatement::CreateProjection { .. }
                | BoundStatement::DropTable(_)
                | BoundStatement::DropProjection(_)
        );
        if is_ddl {
            self.append_ddl(sql)?;
        }
        let features = match &stmt {
            BoundStatement::Select(q) => Some(self.trace_features(q)),
            _ => None,
        };
        let result = self.execute_bound(stmt)?;
        if let Some(f) = features {
            self.trace
                .record(&canonical_sql(sql), f, result.rows.len() as u64);
        }
        Ok(result)
    }

    /// Convenience: run a SELECT and return its rows.
    pub fn query(&self, sql: &str) -> DbResult<Vec<Row>> {
        Ok(self.execute(sql)?.rows)
    }

    pub fn execute_bound(&self, stmt: BoundStatement) -> DbResult<QueryResult> {
        match stmt {
            BoundStatement::CreateTable {
                schema,
                partition_by,
            } => {
                self.cluster.create_table(schema, partition_by)?;
                self.invalidate_catalog();
                self.bump_ddl_version();
                Ok(QueryResult::tag("CREATE TABLE"))
            }
            BoundStatement::CreateProjection { def } => {
                self.cluster.create_projection(def.clone())?;
                // Populate from existing data if the table already has rows
                // (refresh, §5.2). The refresh's table lock conflicts with
                // in-flight DML and the lock manager rejects rather than
                // queues, so contention retries until an ingest window
                // opens; a terminal failure unregisters the projection
                // again — an empty replica the planner could route
                // queries to must never survive.
                if self
                    .cluster
                    .table_rows_excluding(
                        &def.anchor_table,
                        self.cluster.epochs.read_committed_snapshot(),
                        Some(&def.name),
                    )
                    .map(|r| !r.is_empty())
                    .unwrap_or(false)
                {
                    let mut attempts = 0;
                    let refreshed = loop {
                        match self.cluster.refresh_projection(&def.name) {
                            Ok(n) => break Ok(n),
                            Err(DbError::LockConflict { .. }) if attempts < 2000 => {
                                attempts += 1;
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                            Err(e) => break Err(e),
                        }
                    };
                    if let Err(e) = refreshed {
                        let _ = self.cluster.drop_projection(&def.name);
                        return Err(e);
                    }
                }
                self.invalidate_catalog();
                self.bump_ddl_version();
                Ok(QueryResult::tag("CREATE PROJECTION"))
            }
            BoundStatement::DropTable(name) => {
                self.cluster.drop_table(&name)?;
                self.invalidate_catalog();
                self.bump_ddl_version();
                Ok(QueryResult::tag("DROP TABLE"))
            }
            BoundStatement::DropProjection(name) => {
                self.cluster.drop_projection(&name)?;
                self.invalidate_catalog();
                self.bump_ddl_version();
                Ok(QueryResult::tag("DROP PROJECTION"))
            }
            BoundStatement::Insert { table, rows } => {
                let n = rows.len();
                // Trickle inserts land in the WOS (§3.7); bulk loads should
                // use Database::load / COPY which target the ROS directly.
                self.cluster.load(&table, &rows, false)?;
                self.invalidate_catalog();
                Ok(QueryResult::tag(format!("INSERT {n}")))
            }
            BoundStatement::Delete { table, predicate } => {
                let (_, n) = self.cluster.delete(&table, predicate.as_ref())?;
                self.invalidate_catalog();
                Ok(QueryResult::tag(format!("DELETE {n}")))
            }
            BoundStatement::Update {
                table,
                sets,
                predicate,
            } => {
                let (_, n) = self.cluster.update(&table, &sets, predicate.as_ref())?;
                self.invalidate_catalog();
                Ok(QueryResult::tag(format!("UPDATE {n}")))
            }
            BoundStatement::DropPartition { table, key } => {
                let n = self.cluster.drop_partition(&table, &key)?;
                self.invalidate_catalog();
                Ok(QueryResult::tag(format!("DROP PARTITION {n}")))
            }
            BoundStatement::Select(q) => Ok(self.run_select(&q)?.1),
            BoundStatement::Explain(q) => {
                let catalog = self.optimizer_catalog()?;
                let live = self.live_projections();
                let planned = vdb_optimizer::plan(&catalog, &q, live.as_ref(), &self.exec)?;
                let mut text = vdb_exec::plan::explain(&planned.local);
                // Distribution section: where each table's rows come from,
                // which nodes run the local plan, and how partials merge.
                let cluster = self.cluster();
                let up = cluster.up_nodes().len();
                let n = cluster.n_nodes();
                if planned.single_node {
                    text.push_str(&format!(
                        "-- single node (all projections replicated), initiator of {up}/{n} up\n"
                    ));
                } else {
                    text.push_str(&format!(
                        "-- distributed over {up}/{n} up nodes, k-safety={}\n",
                        cluster.config.k_safety
                    ));
                }
                for (proj, access) in &planned.table_access {
                    let how = match access {
                        vdb_optimizer::TableAccess::Local => {
                            "local segments (buddy-aware)".to_string()
                        }
                        vdb_optimizer::TableAccess::Broadcast => {
                            "gather + broadcast to all nodes".to_string()
                        }
                        vdb_optimizer::TableAccess::Resegment { keys } => {
                            format!("resegment through exchange on hash(cols {keys:?}) -> ring")
                        }
                    };
                    text.push_str(&format!("--   {proj}: {how}\n"));
                }
                text.push_str(&format!(
                    "-- merge at initiator: {}\n",
                    match &planned.merge {
                        // Top-k pushdown (ORDER BY + LIMIT): each node ships
                        // only its first limit+offset sorted rows; the
                        // initiator re-sorts the union and applies the
                        // real limit/offset.
                        vdb_optimizer::MergeSpec::Concat {
                            order_by,
                            limit: Some((n, offset)),
                        } if !order_by.is_empty() => format!(
                            "concat, re-sort, limit {n} (per-node top-{} pushdown)",
                            n + offset
                        ),
                        vdb_optimizer::MergeSpec::Concat { .. } => "concat".to_string(),
                        vdb_optimizer::MergeSpec::ReAggregate { .. } =>
                            "re-aggregate partials".to_string(),
                        vdb_optimizer::MergeSpec::WindowThenProject { .. } =>
                            "apply windows".to_string(),
                    },
                ));
                Ok(QueryResult {
                    columns: vec!["QUERY PLAN".into()],
                    rows: text
                        .lines()
                        .map(|l| vec![Value::Varchar(l.to_string())])
                        .collect(),
                    tag: "EXPLAIN".into(),
                })
            }
            // Session transaction syntax: DML here autocommits (each
            // statement is its own transaction under READ COMMITTED, §5);
            // BEGIN/COMMIT are accepted for compatibility.
            BoundStatement::Begin => Ok(QueryResult::tag("BEGIN")),
            BoundStatement::Commit => Ok(QueryResult::tag("COMMIT")),
            BoundStatement::Rollback => Ok(QueryResult::tag("ROLLBACK")),
        }
    }

    /// Run a SELECT and also report the epoch snapshot it executed at —
    /// what concurrent-correctness harnesses need to check snapshot
    /// isolation (the result must equal the committed state AT that epoch,
    /// no matter what commits raced the query).
    pub fn query_snapshot(&self, sql: &str) -> DbResult<(Epoch, QueryResult)> {
        let stmt = vdb_sql::compile(
            sql,
            &Schemas {
                cluster: &self.cluster,
            },
        )?;
        match stmt {
            BoundStatement::Select(q) => {
                let (epoch, result) = self.run_select(&q)?;
                self.trace.record(
                    &canonical_sql(sql),
                    self.trace_features(&q),
                    result.rows.len() as u64,
                );
                Ok((epoch, result))
            }
            _ => Err(DbError::Binder("query_snapshot requires a SELECT".into())),
        }
    }

    fn run_select(&self, q: &vdb_optimizer::BoundQuery) -> DbResult<(Epoch, QueryResult)> {
        let catalog = self.optimizer_catalog()?;
        let live = self.live_projections();
        let planned = vdb_optimizer::plan(&catalog, q, live.as_ref(), &self.exec)?;
        let snapshot = self.cluster.epochs.read_committed_snapshot();
        let rows = self.cluster.execute(&planned, snapshot)?;
        Ok((
            snapshot,
            QueryResult {
                columns: planned.output_names.clone(),
                tag: format!("SELECT {}", rows.len()),
                rows,
            },
        ))
    }

    /// Which projection families are currently usable (None = all up).
    fn live_projections(&self) -> Option<HashSet<String>> {
        if self.cluster.up_nodes().len() == self.cluster.n_nodes() {
            None
        } else {
            Some(self.cluster.live_projections())
        }
    }

    /// Bulk load rows through the direct-ROS path (§7: bulk loads bypass
    /// the WOS). Returns the commit epoch.
    pub fn load(&self, table: &str, rows: &[Row]) -> DbResult<Epoch> {
        let e = self.cluster.load(table, rows, true)?;
        self.invalidate_catalog();
        Ok(e)
    }

    /// Trickle load into the WOS.
    pub fn load_wos(&self, table: &str, rows: &[Row]) -> DbResult<Epoch> {
        let e = self.cluster.load(table, rows, false)?;
        self.invalidate_catalog();
        Ok(e)
    }

    /// Run the Database Designer (§6.3) over sample data + workload SQL and
    /// install the proposed projections. Returns their rationales.
    ///
    /// Durability caveat: designer-installed projections are not recorded
    /// in the DDL log (they have no SQL text), so they do not survive a
    /// reopen — re-run the designer or issue `CREATE PROJECTION` instead.
    pub fn run_designer(
        &self,
        table: &str,
        sample: &[Row],
        total_rows: u64,
        workload_sql: &[&str],
        policy: vdb_designer::DesignPolicy,
    ) -> DbResult<Vec<String>> {
        let schema = self
            .cluster
            .table_schema(table)
            .ok_or_else(|| DbError::NotFound(format!("table {table}")))?;
        let mut workload = Vec::new();
        for sql in workload_sql {
            match vdb_sql::compile(
                sql,
                &Schemas {
                    cluster: &self.cluster,
                },
            )? {
                BoundStatement::Select(q) => workload.push(q),
                _ => {
                    return Err(DbError::Binder(
                        "designer workload must be SELECT statements".into(),
                    ))
                }
            }
        }
        let designs = vdb_designer::design_table(&schema, sample, total_rows, &workload, policy)?;
        let mut rationales = Vec::new();
        for d in designs {
            self.cluster.create_projection(d.def.clone())?;
            if !sample.is_empty() {
                // Populate from existing table data if any.
                let _ = self.cluster.refresh_projection(&d.def.name);
            }
            rationales.push(format!("{}: {}", d.def.name, d.rationale));
        }
        self.invalidate_catalog();
        self.bump_ddl_version();
        Ok(rationales)
    }

    // -- automatic physical design (trace → enumerate → cost → deploy) ----

    /// The query-trace ring feeding [`Database::auto_design`].
    pub fn query_trace(&self) -> &QueryTrace {
        &self.trace
    }

    /// Extract trace features for a bound query against the live schemas.
    fn trace_features(&self, q: &vdb_optimizer::BoundQuery) -> TraceFeatures {
        TraceFeatures::of(q, &|t| self.cluster.table_schema(t))
    }

    /// Serving-layer capture hook: a SELECT that was planned outside
    /// [`Database::execute`] (plan-cache miss path).
    pub(crate) fn record_traced_select(
        &self,
        canonical_sql: &str,
        q: &vdb_optimizer::BoundQuery,
        result_rows: u64,
    ) {
        self.trace
            .record(canonical_sql, self.trace_features(q), result_rows);
    }

    /// Serving-layer capture hook: a plan-cache hit (no bound query at
    /// hand; folds into the entry recorded at plan time).
    pub(crate) fn record_traced_hit(&self, canonical_sql: &str, result_rows: u64) {
        self.trace.record_hit(canonical_sql, result_rows);
    }

    /// Close the workload → projection → optimizer loop (§6.3, automated):
    /// design projections from the traced workload and install them online.
    ///
    /// 1. Every distinct traced SELECT is re-compiled against the current
    ///    catalog (statements over dropped tables fall out naturally).
    /// 2. Per referenced table, `vdb_designer::design_from_trace`
    ///    enumerates candidates — sort orders from hot predicates and
    ///    group-bys, segmentation keys from join columns, encodings from
    ///    empirical trials seeded by the catalog's observed codec stats —
    ///    and scores them with the *planner's own* projection-choice cost
    ///    model ([`vdb_optimizer::query_scan_cost`]).
    /// 3. Accepted candidates are emitted as `CREATE PROJECTION` DDL and
    ///    executed through [`Database::execute`]: the statement is
    ///    write-ahead logged (the design survives reopen), the projection
    ///    backfills online from committed data (refresh, §5.2) while
    ///    concurrent queries keep answering from the old projections, and
    ///    the DDL version bump invalidates the serving layer's cached
    ///    plans so the planner starts choosing the new projection
    ///    immediately.
    ///
    /// A tuple-mover pass runs afterwards so any WOS tail written during
    /// the backfill moves into sorted, encoded ROS for the new projections.
    pub fn auto_design(&self, policy: vdb_designer::DesignPolicy) -> DbResult<AutoDesignReport> {
        const AUTO_DESIGN_SAMPLE: usize = 2048;
        let entries = self.trace.snapshot();
        let mut report = AutoDesignReport {
            traced_statements: entries.len(),
            installed: Vec::new(),
        };
        let mut workload: Vec<(vdb_optimizer::BoundQuery, u64)> = Vec::new();
        let mut tables: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for e in &entries {
            // Statements that no longer compile (dropped tables/columns)
            // describe a workload that can no longer occur: skip them.
            let Ok(BoundStatement::Select(q)) = self.compile(&e.sql) else {
                continue;
            };
            tables.extend(q.tables.iter().map(|t| t.table.clone()));
            workload.push((q, e.hits));
        }
        if workload.is_empty() {
            return Ok(report);
        }
        let catalog = self.optimizer_catalog()?;
        for table in tables {
            let snapshot = self.cluster.epochs.read_committed_snapshot();
            let mut sample = self
                .cluster
                .table_rows_excluding(&table, snapshot, None)
                .unwrap_or_default();
            sample.truncate(AUTO_DESIGN_SAMPLE);
            let designs =
                vdb_designer::design_from_trace(&catalog, &table, &sample, &workload, policy)?;
            for d in designs {
                // Deployment under concurrent DML: execute() already rides
                // out refresh-lock contention internally, so a conflict
                // surfacing here means the whole statement lost its window
                // — retry a few times before giving up.
                let mut attempts = 0;
                loop {
                    match self.execute(&d.ddl) {
                        Ok(_) => break,
                        Err(DbError::LockConflict { .. }) if attempts < 50 => {
                            attempts += 1;
                            std::thread::sleep(std::time::Duration::from_millis(2));
                        }
                        Err(e) => return Err(e),
                    }
                }
                report.installed.push(AutoDesignInstall {
                    table: table.clone(),
                    name: d.def.name.clone(),
                    ddl: d.ddl.clone(),
                    rationale: d.rationale.clone(),
                    predicted_speedup: d.predicted_speedup(),
                });
            }
        }
        if !report.installed.is_empty() {
            self.cluster.tuple_mover_tick(false)?;
        }
        Ok(report)
    }

    /// Total logical ROS bytes (disk space reporting for Table 3).
    pub fn disk_bytes(&self) -> u64 {
        self.cluster.logical_ros_bytes()
    }

    /// Run the tuple mover across the cluster.
    pub fn tuple_mover_tick(&self) -> DbResult<()> {
        self.cluster.tuple_mover_tick(true)
    }
}

/// One projection installed by [`Database::auto_design`].
#[derive(Debug, Clone)]
pub struct AutoDesignInstall {
    pub table: String,
    pub name: String,
    /// The executed `CREATE PROJECTION` statement (also in the DDL log).
    pub ddl: String,
    pub rationale: String,
    /// Traced-workload scan-cost ratio (before / after) predicted by the
    /// optimizer's cost model when the candidate was accepted.
    pub predicted_speedup: f64,
}

/// Outcome of one [`Database::auto_design`] round.
#[derive(Debug, Clone, Default)]
pub struct AutoDesignReport {
    /// Distinct statements in the trace when the round started.
    pub traced_statements: usize,
    pub installed: Vec<AutoDesignInstall>,
}

/// Canonical trace key for a statement: literals inlined into the
/// whitespace/keyword-normalized template, so the same query folds into
/// one trace entry whether it arrived through [`Database::execute`] or a
/// serving-layer session. Statements the normalizer rejects keep their
/// raw text (they will fail to re-compile at design time and be skipped).
fn canonical_sql(sql: &str) -> String {
    vdb_sql::normalize(sql)
        .and_then(|n| n.render(&[]))
        .unwrap_or_else(|_| sql.to_string())
}

/// One DDL statement per log line: escape backslashes and newlines.
fn escape_ddl(sql: &str) -> String {
    sql.replace('\\', "\\\\").replace('\n', "\\n")
}

fn unescape_ddl(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

struct Schemas<'a> {
    cluster: &'a Cluster,
}

impl SchemaProvider for Schemas<'_> {
    fn table_schema(&self, name: &str) -> Option<TableSchema> {
        self.cluster.table_schema(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_with_sales() -> crate::Engine {
        let db = crate::Engine::builder().open().unwrap();
        db.execute("CREATE TABLE sales (id INT, region VARCHAR, amt FLOAT, ts TIMESTAMP)")
            .unwrap();
        db.execute(
            "CREATE PROJECTION sales_super AS SELECT id, region, amt, ts FROM sales \
             ORDER BY ts SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_sql_round_trip() {
        let db = db_with_sales();
        db.execute(
            "INSERT INTO sales VALUES \
             (1, 'east', 10.0, 1000), (2, 'west', 20.0, 2000), \
             (3, 'east', 30.0, 3000), (4, 'west', 40.0, 4000)",
        )
        .unwrap();
        let r = db
            .execute("SELECT region, COUNT(*), SUM(amt) FROM sales GROUP BY region ORDER BY region")
            .unwrap();
        assert_eq!(r.columns, vec!["region", "count", "sum"]);
        assert_eq!(
            r.rows,
            vec![
                vec![
                    Value::Varchar("east".into()),
                    Value::Integer(2),
                    Value::Float(40.0)
                ],
                vec![
                    Value::Varchar("west".into()),
                    Value::Integer(2),
                    Value::Float(60.0)
                ],
            ]
        );
    }

    #[test]
    fn where_order_limit() {
        let db = db_with_sales();
        let rows: Vec<Row> = (0..100)
            .map(|i| {
                vec![
                    Value::Integer(i),
                    Value::Varchar(if i % 2 == 0 { "e" } else { "w" }.into()),
                    Value::Float(i as f64),
                    Value::Timestamp(i * 100),
                ]
            })
            .collect();
        db.load("sales", &rows).unwrap();
        let got = db
            .query("SELECT id FROM sales WHERE amt >= 90 ORDER BY id DESC LIMIT 3")
            .unwrap();
        assert_eq!(
            got,
            vec![
                vec![Value::Integer(99)],
                vec![Value::Integer(98)],
                vec![Value::Integer(97)]
            ]
        );
    }

    #[test]
    fn delete_update_and_snapshots() {
        let db = db_with_sales();
        db.execute("INSERT INTO sales VALUES (1, 'e', 1.0, 10), (2, 'w', 2.0, 20)")
            .unwrap();
        let r = db.execute("DELETE FROM sales WHERE id = 1").unwrap();
        assert_eq!(r.tag, "DELETE 1");
        assert_eq!(db.query("SELECT id FROM sales").unwrap().len(), 1);
        db.execute("UPDATE sales SET amt = 9.5 WHERE id = 2")
            .unwrap();
        let got = db.query("SELECT amt FROM sales WHERE id = 2").unwrap();
        assert_eq!(got[0][0], Value::Float(9.5));
    }

    #[test]
    fn explain_mentions_scan_and_merge() {
        let db = db_with_sales();
        db.execute("INSERT INTO sales VALUES (1, 'e', 1.0, 10)")
            .unwrap();
        let r = db
            .execute("EXPLAIN SELECT region, COUNT(*) FROM sales GROUP BY region")
            .unwrap();
        let text: String = r.rows.iter().map(|row| format!("{}\n", row[0])).collect();
        assert!(text.contains("Scan sales_super"), "{text}");
        assert!(text.contains("re-aggregate"), "{text}");
    }

    #[test]
    fn joins_across_tables() {
        let db = db_with_sales();
        db.execute("CREATE TABLE region_names (code VARCHAR, full_name VARCHAR)")
            .unwrap();
        db.execute(
            "CREATE PROJECTION region_super AS SELECT code, full_name FROM region_names \
             ORDER BY code UNSEGMENTED ALL NODES",
        )
        .unwrap();
        db.execute("INSERT INTO region_names VALUES ('e', 'East Coast'), ('w', 'West Coast')")
            .unwrap();
        db.execute(
            "INSERT INTO sales VALUES (1, 'e', 10.0, 1), (2, 'w', 20.0, 2), (3, 'e', 30.0, 3)",
        )
        .unwrap();
        let rows = db
            .query(
                "SELECT full_name, COUNT(*) FROM sales JOIN region_names \
                 ON sales.region = region_names.code GROUP BY full_name ORDER BY full_name",
            )
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Varchar("East Coast".into()), Value::Integer(2)],
                vec![Value::Varchar("West Coast".into()), Value::Integer(1)],
            ]
        );
    }

    #[test]
    fn multinode_query_with_failure_and_recovery() {
        let db = crate::Engine::builder().nodes(3).open().unwrap();
        db.execute("CREATE TABLE t (id INT, v INT)").unwrap();
        db.execute(
            "CREATE PROJECTION t_super AS SELECT id, v FROM t ORDER BY id \
             SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
        let rows: Vec<Row> = (0..500)
            .map(|i| vec![Value::Integer(i), Value::Integer(i % 7)])
            .collect();
        db.load("t", &rows).unwrap();
        let sum = |db: &Database| -> i64 {
            db.query("SELECT v, COUNT(*) FROM t GROUP BY v ORDER BY v")
                .unwrap()
                .iter()
                .map(|r| r[1].as_i64().unwrap())
                .sum()
        };
        assert_eq!(sum(&db), 500);
        db.cluster().fail_node(1);
        assert_eq!(sum(&db), 500, "buddy-sourced reads after failure");
        db.load("t", &[vec![Value::Integer(999), Value::Integer(0)]])
            .unwrap();
        db.cluster().recover_node(1).unwrap();
        assert_eq!(sum(&db), 501);
    }

    #[test]
    fn projection_created_after_load_is_refreshed() {
        let db = db_with_sales();
        db.execute("INSERT INTO sales VALUES (1, 'e', 1.0, 10), (2, 'w', 2.0, 20)")
            .unwrap();
        db.execute(
            "CREATE PROJECTION sales_by_region AS SELECT region, amt FROM sales \
             ORDER BY region UNSEGMENTED ALL NODES",
        )
        .unwrap();
        // The new projection serves queries immediately.
        let rows = db
            .query("SELECT region, SUM(amt) FROM sales GROUP BY region ORDER BY region")
            .unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn window_functions_via_sql() {
        let db = db_with_sales();
        db.execute(
            "INSERT INTO sales VALUES \
             (1, 'e', 10.0, 100), (2, 'e', 20.0, 200), (3, 'w', 5.0, 300)",
        )
        .unwrap();
        let rows = db
            .query(
                "SELECT id, SUM(amt) OVER (PARTITION BY region ORDER BY ts) AS running \
                 FROM sales ORDER BY id",
            )
            .unwrap();
        assert_eq!(rows[0][1], Value::Float(10.0));
        assert_eq!(rows[1][1], Value::Float(30.0));
        assert_eq!(rows[2][1], Value::Float(5.0));
    }

    #[test]
    fn partition_pruning_and_drop_partition() {
        let db = crate::Engine::builder().open().unwrap();
        db.execute("CREATE TABLE events (id INT, ts TIMESTAMP) PARTITION BY YEAR_MONTH(ts)")
            .unwrap();
        db.execute(
            "CREATE PROJECTION events_super AS SELECT id, ts FROM events ORDER BY ts \
             SEGMENTED BY HASH(id) ALL NODES",
        )
        .unwrap();
        let mar = vdb_types::date::timestamp_from_civil(2012, 3, 5, 0, 0, 0);
        let apr = vdb_types::date::timestamp_from_civil(2012, 4, 5, 0, 0, 0);
        let rows: Vec<Row> = (0..20)
            .map(|i| {
                vec![
                    Value::Integer(i),
                    Value::Timestamp(if i % 2 == 0 { mar } else { apr }),
                ]
            })
            .collect();
        db.load("events", &rows).unwrap();
        let r = db
            .execute("ALTER TABLE events DROP PARTITION 201203")
            .unwrap();
        assert!(r.tag.starts_with("DROP PARTITION"));
        assert_eq!(db.query("SELECT id FROM events").unwrap().len(), 10);
    }

    #[test]
    fn designer_installs_projections() {
        let db = crate::Engine::builder().open().unwrap();
        db.execute("CREATE TABLE m (metric INT, meter INT, ts TIMESTAMP, value FLOAT)")
            .unwrap();
        let sample: Vec<Row> = (0..500)
            .map(|i| {
                vec![
                    Value::Integer(i % 5),
                    Value::Integer(i % 50),
                    Value::Timestamp(1000 + i * 300),
                    Value::Float((i % 9) as f64),
                ]
            })
            .collect();
        let rationales = db
            .run_designer(
                "m",
                &sample,
                1_000_000,
                &["SELECT meter, SUM(value) FROM m WHERE metric = 3 GROUP BY meter"],
                vdb_designer::DesignPolicy::Balanced,
            )
            .unwrap();
        assert!(!rationales.is_empty());
        db.load("m", &sample).unwrap();
        let rows = db
            .query("SELECT meter, SUM(value) FROM m WHERE metric = 3 GROUP BY meter")
            .unwrap();
        // metric = 3 ⇔ i ≡ 3 (mod 5); those i values hit 10 distinct meters.
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn auto_design_closes_the_loop() {
        let db = crate::Engine::builder().open().unwrap();
        db.execute("CREATE TABLE m (metric INT, meter INT, ts TIMESTAMP, value FLOAT)")
            .unwrap();
        // Superprojection sorted by ts: useless for a metric filter.
        db.execute("CREATE PROJECTION m_super AS SELECT * FROM m ORDER BY ts")
            .unwrap();
        let rows: Vec<Row> = (0..3000)
            .map(|i| {
                vec![
                    Value::Integer(i % 10),
                    Value::Integer(i % 100),
                    Value::Timestamp(1000 + i * 300),
                    Value::Float((i % 9) as f64),
                ]
            })
            .collect();
        db.load("m", &rows).unwrap();
        let hot = "SELECT meter, value FROM m WHERE metric = 3";
        for _ in 0..20 {
            db.query(hot).unwrap();
        }
        let trace = db.query_trace().snapshot();
        assert_eq!(trace.len(), 1, "identical statements fold into one entry");
        assert_eq!(trace[0].hits, 20);
        assert_eq!(trace[0].predicate_columns, vec!["m.metric"]);
        assert_eq!(trace[0].result_rows, 300);

        let mut before = db.query(hot).unwrap();
        let report = db
            .auto_design(vdb_designer::DesignPolicy::QueryOptimized)
            .unwrap();
        assert!(
            !report.installed.is_empty(),
            "hot selective trace must install a projection"
        );
        assert!(report.installed[0].predicted_speedup > 1.0);
        // The planner now routes the traced query to the new projection…
        let explain = db.execute(&format!("EXPLAIN {hot}")).unwrap();
        let plan_text: String = explain.rows.iter().map(|r| format!("{:?}", r[0])).collect();
        assert!(
            plan_text.contains(&report.installed[0].name),
            "EXPLAIN must scan {}: {plan_text}",
            report.installed[0].name
        );
        // …and the answers are identical (order-insensitive: projection
        // choice changes physical row order).
        let mut after = db.query(hot).unwrap();
        before.sort();
        after.sort();
        assert_eq!(before, after);
    }

    #[test]
    fn parallel_scan_group_by_end_to_end() {
        // Several direct loads → several ROS containers → the planner
        // picks a morsel-parallel plan; results must match the serial DB.
        let parallel = crate::Engine::builder().threads(4).open().unwrap();
        let serial = crate::Engine::builder().threads(1).open().unwrap();
        for db in [&parallel, &serial] {
            db.execute("CREATE TABLE t (g INT, v INT)").unwrap();
            db.execute(
                "CREATE PROJECTION t_super AS SELECT g, v FROM t ORDER BY v \
                 SEGMENTED BY HASH(v) ALL NODES",
            )
            .unwrap();
            for chunk in 0..6 {
                let rows: Vec<Row> = (0..2000)
                    .map(|i| {
                        let i = chunk * 2000 + i;
                        vec![Value::Integer(i % 7), Value::Integer(i)]
                    })
                    .collect();
                db.load("t", &rows).unwrap();
            }
        }
        let sql = "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY g ORDER BY g";
        assert_eq!(parallel.query(sql).unwrap(), serial.query(sql).unwrap());
        let explain = parallel.execute(&format!("EXPLAIN {sql}")).unwrap();
        let text: String = explain.rows.iter().map(|r| format!("{}\n", r[0])).collect();
        assert!(text.contains("ParallelScan t_super"), "{text}");
        assert!(text.contains("partial GroupBy"), "{text}");
        // Plain selects parallelize as order-preserving collects.
        assert_eq!(
            parallel.query("SELECT v FROM t WHERE v >= 11990").unwrap(),
            serial.query("SELECT v FROM t WHERE v >= 11990").unwrap()
        );
    }

    #[test]
    fn parallel_hash_join_end_to_end() {
        // Multi-container fact + dim: the planner rewrites the join to the
        // morsel-parallel partitioned hash join; results must match the
        // serial database exactly, and the SIP coupling must survive.
        let parallel = crate::Engine::builder().threads(4).open().unwrap();
        let serial = crate::Engine::builder().threads(1).open().unwrap();
        assert_eq!(parallel.exec_options().threads, 4);
        for db in [&parallel, &serial] {
            db.execute("CREATE TABLE f (k INT, v INT)").unwrap();
            db.execute(
                "CREATE PROJECTION f_super AS SELECT k, v FROM f ORDER BY v \
                 SEGMENTED BY HASH(v) ALL NODES",
            )
            .unwrap();
            db.execute("CREATE TABLE d (k INT, w INT)").unwrap();
            db.execute(
                "CREATE PROJECTION d_super AS SELECT k, w FROM d ORDER BY k \
                 UNSEGMENTED ALL NODES",
            )
            .unwrap();
            for chunk in 0..5 {
                let rows: Vec<Row> = (0..2000)
                    .map(|i| {
                        let i = chunk * 2000 + i;
                        vec![Value::Integer(i % 97), Value::Integer(i)]
                    })
                    .collect();
                db.load("f", &rows).unwrap();
            }
            let dims: Vec<Row> = (0..50)
                .map(|i| vec![Value::Integer(i), Value::Integer(i * 10)])
                .collect();
            db.load("d", &dims).unwrap();
        }
        let sql = "SELECT d.w, COUNT(*), SUM(f.v) FROM f JOIN d ON f.k = d.k \
                   GROUP BY d.w ORDER BY d.w";
        assert_eq!(parallel.query(sql).unwrap(), serial.query(sql).unwrap());
        let explain = parallel.execute(&format!("EXPLAIN {sql}")).unwrap();
        let text: String = explain.rows.iter().map(|r| format!("{}\n", r[0])).collect();
        assert!(text.contains("ParallelHashJoin INNER"), "{text}");
        assert!(text.contains("[builds SIP]"), "{text}");
        assert!(text.contains("[SIP x1]"), "{text}");
    }

    #[test]
    fn vectorized_expressions_sql_end_to_end() {
        // Arithmetic + CASE in the select list and a disjunctive WHERE:
        // the whole pipeline runs through the vectorized expression engine
        // (row-wise eval only as error fallback); results must match a
        // hand computation.
        let db = db_with_sales();
        let rows: Vec<Row> = (0..200)
            .map(|i| {
                vec![
                    Value::Integer(i),
                    Value::Varchar(if i % 3 == 0 { "e" } else { "w" }.into()),
                    Value::Float(i as f64),
                    Value::Timestamp(i * 100),
                ]
            })
            .collect();
        db.load("sales", &rows).unwrap();
        let got = db
            .query(
                "SELECT id, id * 2 + 1, \
                 CASE WHEN amt >= 150 THEN 'hot' WHEN region = 'e' THEN 'east' ELSE 'cold' END \
                 FROM sales WHERE region = 'e' OR amt > 180 ORDER BY id",
            )
            .unwrap();
        let expect: Vec<Row> = (0..200)
            .filter(|&i| i % 3 == 0 || i as f64 > 180.0)
            .map(|i| {
                let label = if i >= 150 {
                    "hot"
                } else if i % 3 == 0 {
                    "east"
                } else {
                    "cold"
                };
                vec![
                    Value::Integer(i),
                    Value::Integer(i * 2 + 1),
                    Value::Varchar(label.into()),
                ]
            })
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn durable_open_recovers_committed_state() {
        let root = std::env::temp_dir().join(format!("vdb_open_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        {
            let db = crate::Engine::builder().data_dir(&root).open().unwrap();
            db.execute("CREATE TABLE t (id INT, v INT)").unwrap();
            db.execute(
                "CREATE PROJECTION t_super AS SELECT id, v FROM t ORDER BY id \
                 SEGMENTED BY HASH(id) ALL NODES",
            )
            .unwrap();
            // WOS inserts (redo-log durability) + a direct-ROS load
            // (manifest durability) + a delete (delete-vector / redo).
            db.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
            let bulk: Vec<Row> = (3..=4)
                .map(|i| vec![Value::Integer(i), Value::Integer(i * 10)])
                .collect();
            db.load("t", &bulk).unwrap();
            db.execute("DELETE FROM t WHERE id = 1").unwrap();
        }
        let db = crate::Engine::builder().data_dir(&root).open().unwrap();
        assert_eq!(
            db.query("SELECT id, v FROM t ORDER BY id").unwrap(),
            vec![
                vec![Value::Integer(2), Value::Integer(20)],
                vec![Value::Integer(3), Value::Integer(30)],
                vec![Value::Integer(4), Value::Integer(40)],
            ]
        );
        // The reopened database keeps working: epoch clock restored, new
        // commits land after the recovered ones.
        db.execute("INSERT INTO t VALUES (5, 50)").unwrap();
        assert_eq!(
            db.execute("SELECT COUNT(*) FROM t").unwrap().scalar(),
            Some(&Value::Integer(4))
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn ddl_log_tolerates_failed_and_torn_statements() {
        let root = std::env::temp_dir().join(format!("vdb_ddlwal_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        {
            let db = crate::Engine::builder().data_dir(&root).open().unwrap();
            db.execute("CREATE TABLE t (id INT, v INT)").unwrap();
            // Write-ahead logging records the statement even though it
            // fails (duplicate table); replay must skip it.
            assert!(db.execute("CREATE TABLE t (id INT, v INT)").is_err());
            db.execute(
                "CREATE PROJECTION t_super AS SELECT id, v FROM t ORDER BY id \
                 SEGMENTED BY HASH(id) ALL NODES",
            )
            .unwrap();
            db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
        }
        // A crash mid-append can strand a torn (unparseable) final line;
        // recovery must shrug it off.
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(root.join("ddl.log"))
                .unwrap();
            write!(f, "CREATE TAB").unwrap();
        }
        let db = crate::Engine::builder().data_dir(&root).open().unwrap();
        assert_eq!(
            db.query("SELECT id, v FROM t").unwrap(),
            vec![vec![Value::Integer(1), Value::Integer(10)]]
        );
        // The log stays usable: new DDL lands after the torn line and a
        // second reopen still skips only the debris.
        db.execute("CREATE TABLE u (x INT)").unwrap();
        drop(db);
        let db = crate::Engine::builder().data_dir(&root).open().unwrap();
        db.execute(
            "CREATE PROJECTION u_super AS SELECT x FROM u ORDER BY x \
             SEGMENTED BY HASH(x) ALL NODES",
        )
        .unwrap();
        db.execute("INSERT INTO u VALUES (7)").unwrap();
        assert_eq!(
            db.query("SELECT x FROM u").unwrap(),
            vec![vec![Value::Integer(7)]]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn ddl_escape_round_trip() {
        let sql = "CREATE TABLE t (\n  id INT, -- with \\ backslash\n  v INT)";
        assert_eq!(unescape_ddl(&escape_ddl(sql)), sql);
        assert!(!escape_ddl(sql).contains('\n'));
    }

    #[test]
    fn count_distinct_end_to_end() {
        let db = db_with_sales();
        db.execute(
            "INSERT INTO sales VALUES (1,'e',1.0,1),(2,'e',1.0,2),(3,'e',2.0,3),(4,'w',2.0,4)",
        )
        .unwrap();
        let rows = db
            .query("SELECT region, COUNT(DISTINCT amt) FROM sales GROUP BY region ORDER BY region")
            .unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Varchar("e".into()), Value::Integer(2)],
                vec![Value::Varchar("w".into()), Value::Integer(1)],
            ]
        );
    }
}
