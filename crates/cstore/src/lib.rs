//! `vdb-cstore` — an architectural reconstruction of the 2005 C-Store
//! research prototype, used as the baseline for Table 3.
//!
//! §8.1 of the paper explains what separated the prototype from Vertica;
//! this baseline faithfully reproduces those *architectural* gaps rather
//! than the original bits:
//!
//! * **single-threaded** — "the C-Store prototype is a single-threaded
//!   program and cannot take advantage of MPP hardware";
//! * **tuple-at-a-time** Volcano iterators instead of vectorized batches;
//! * **decode-before-process** — no direct execution on encoded data;
//! * **fewer, simpler encodings** — RLE and plain only (no delta
//!   dictionaries, no entropy coding: "more sophisticated compression
//!   algorithms" are one of the ways Vertica reclaimed performance);
//! * **join indexes** — projections store an explicit 64-bit row id per
//!   tuple (§3.2: "explicitly storing row ids consumed significant disk
//!   space for large tables"), which Vertica eliminated.
//!
//! The query surface is programmatic (scan / select / group / join
//! iterators); the Table 3 harness drives both engines through equivalent
//! physical plans.

#![deny(rustdoc::broken_intra_doc_links)]

use std::collections::HashMap;
use vdb_types::codec::{Reader, Writer};
use vdb_types::{DbError, DbResult, Expr, Row, TableSchema, Value};

/// Tuple-at-a-time Volcano iterator.
pub trait RowIter {
    fn next_row(&mut self) -> DbResult<Option<Row>>;
}

/// One stored projection: per-column encoded byte buffers plus the explicit
/// row-id column C-Store's join indexes require.
pub struct CStoreProjection {
    pub name: String,
    /// Encoded column buffers (RLE for the leading sort column when it
    /// helps, plain otherwise) — one buffer per column, whole column per
    /// buffer (no blocks, no position index: the prototype had B-trees but
    /// no SMA pruning).
    columns: Vec<Vec<u8>>,
    /// Explicit row ids (the join-index overhead).
    row_ids: Vec<u8>,
    pub row_count: usize,
    arity: usize,
}

/// The baseline engine: tables of sorted projections.
#[derive(Default)]
pub struct CStoreDb {
    tables: HashMap<String, (TableSchema, CStoreProjection)>,
}

impl CStoreDb {
    pub fn new() -> CStoreDb {
        CStoreDb::default()
    }

    /// Load a table as one projection sorted by `sort_columns`.
    pub fn load_table(
        &mut self,
        schema: TableSchema,
        mut rows: Vec<Row>,
        sort_columns: &[usize],
    ) -> DbResult<()> {
        let keys: Vec<vdb_types::SortKey> = sort_columns
            .iter()
            .map(|&c| vdb_types::SortKey::asc(c))
            .collect();
        rows.sort_by(|a, b| vdb_types::schema::compare_rows(a, b, &keys));
        let arity = schema.arity();
        let mut columns = Vec::with_capacity(arity);
        for c in 0..arity {
            let col: Vec<Value> = rows.iter().map(|r| r[c].clone()).collect();
            let mut w = Writer::new();
            // Prototype-era encoding choice: RLE if the column is sorted
            // and low-cardinality, else plain. (No delta/dictionary/entropy
            // schemes.)
            let sorted = col.windows(2).all(|w| w[0] <= w[1]);
            let runs = vdb_encoding::rle::to_runs(&col).len();
            if sorted && runs * 4 <= col.len().max(1) {
                w.put_u8(1);
                vdb_encoding::rle::encode(&col, &mut w);
            } else {
                w.put_u8(0);
                vdb_encoding::plain::encode(&col, &mut w);
            }
            columns.push(w.into_bytes());
        }
        // Explicit row ids, stored plainly (8 bytes each — the join-index
        // disk cost §3.2 describes).
        let mut w = Writer::new();
        for i in 0..rows.len() {
            w.put_u64(i as u64);
        }
        let projection = CStoreProjection {
            name: format!("{}_proj", schema.name),
            columns,
            row_ids: w.into_bytes(),
            row_count: rows.len(),
            arity,
        };
        self.tables
            .insert(schema.name.clone(), (schema, projection));
        Ok(())
    }

    pub fn table(&self, name: &str) -> DbResult<&CStoreProjection> {
        self.tables
            .get(name)
            .map(|(_, p)| p)
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))
    }

    /// Total stored bytes (columns + row ids) — the Table 3 disk metric.
    pub fn disk_bytes(&self) -> u64 {
        self.tables
            .values()
            .map(|(_, p)| {
                p.columns.iter().map(Vec::len).sum::<usize>() as u64 + p.row_ids.len() as u64
            })
            .sum()
    }

    /// Decode selected columns fully (decode-before-process), returning a
    /// tuple-at-a-time scan with an optional predicate.
    pub fn scan(
        &self,
        table: &str,
        columns: &[usize],
        predicate: Option<Expr>,
    ) -> DbResult<CStoreScan> {
        let p = self.table(table)?;
        let mut decoded = Vec::with_capacity(columns.len());
        for &c in columns {
            if c >= p.arity {
                return Err(DbError::Execution(format!("column {c} out of range")));
            }
            let bytes = &p.columns[c];
            let mut r = Reader::new(bytes);
            let tag = r.get_u8()?;
            let col = if tag == 1 {
                vdb_encoding::rle::decode(&mut r, p.row_count)?
            } else {
                vdb_encoding::plain::decode(&mut r, p.row_count)?
            };
            decoded.push(col);
        }
        Ok(CStoreScan {
            columns: decoded,
            predicate,
            pos: 0,
            len: p.row_count,
        })
    }
}

/// Tuple-at-a-time scan over decoded columns.
pub struct CStoreScan {
    columns: Vec<Vec<Value>>,
    predicate: Option<Expr>,
    pos: usize,
    len: usize,
}

impl RowIter for CStoreScan {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        while self.pos < self.len {
            let i = self.pos;
            self.pos += 1;
            let row: Row = self.columns.iter().map(|c| c[i].clone()).collect();
            match &self.predicate {
                Some(p) if !p.matches(&row)? => continue,
                _ => return Ok(Some(row)),
            }
        }
        Ok(None)
    }
}

/// Tuple-at-a-time hash GROUP BY (materializes everything, emits at end).
pub struct CStoreGroupBy {
    output: std::vec::IntoIter<Row>,
}

impl CStoreGroupBy {
    /// `group_cols`/`agg` operate on the input iterator's row layout.
    /// Aggregates: reuse the shared AggState machinery one value at a time.
    pub fn new(
        mut input: impl RowIter,
        group_cols: Vec<usize>,
        aggs: Vec<vdb_exec::aggregate::AggCall>,
    ) -> DbResult<CStoreGroupBy> {
        use vdb_exec::aggregate::{AggFunc, AggState};
        let mut table: HashMap<Vec<Value>, Vec<AggState>> = HashMap::new();
        while let Some(row) = input.next_row()? {
            let key: Vec<Value> = group_cols.iter().map(|&c| row[c].clone()).collect();
            let states = table
                .entry(key)
                .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
            for (a, s) in aggs.iter().zip(states.iter_mut()) {
                let v = if a.func == AggFunc::CountStar {
                    &Value::Null
                } else {
                    &row[a.input]
                };
                s.update(a.func, v)?;
            }
        }
        let mut rows: Vec<Row> = table
            .into_iter()
            .map(|(mut key, states)| {
                key.extend(states.into_iter().map(|s| s.finish()));
                key
            })
            .collect();
        rows.sort();
        Ok(CStoreGroupBy {
            output: rows.into_iter(),
        })
    }
}

impl RowIter for CStoreGroupBy {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        Ok(self.output.next())
    }
}

/// Tuple-at-a-time hash join (inner), building on the right.
pub struct CStoreHashJoin<L: RowIter> {
    left: L,
    table: HashMap<Value, Vec<Row>>,
    left_key: usize,
    pending: Vec<Row>,
}

impl<L: RowIter> CStoreHashJoin<L> {
    pub fn new(
        left: L,
        mut right: impl RowIter,
        left_key: usize,
        right_key: usize,
    ) -> DbResult<CStoreHashJoin<L>> {
        let mut table: HashMap<Value, Vec<Row>> = HashMap::new();
        while let Some(row) = right.next_row()? {
            let k = row[right_key].clone();
            if !k.is_null() {
                table.entry(k).or_default().push(row);
            }
        }
        Ok(CStoreHashJoin {
            left,
            table,
            left_key,
            pending: Vec::new(),
        })
    }
}

impl<L: RowIter> RowIter for CStoreHashJoin<L> {
    fn next_row(&mut self) -> DbResult<Option<Row>> {
        loop {
            if let Some(r) = self.pending.pop() {
                return Ok(Some(r));
            }
            let Some(row) = self.left.next_row()? else {
                return Ok(None);
            };
            let k = &row[self.left_key];
            if let Some(matches) = self.table.get(k) {
                for m in matches {
                    let mut out = row.clone();
                    out.extend(m.iter().cloned());
                    self.pending.push(out);
                }
            }
        }
    }
}

/// Drain an iterator (the harness's collect).
pub fn collect(mut it: impl RowIter) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(r) = it.next_row()? {
        out.push(r);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_exec::aggregate::{AggCall, AggFunc};
    use vdb_types::{BinOp, ColumnDef, DataType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("a", DataType::Integer),
                ColumnDef::new("b", DataType::Integer),
            ],
        )
    }

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Integer(i % 10), Value::Integer(i)])
            .collect()
    }

    #[test]
    fn scan_with_predicate() {
        let mut db = CStoreDb::new();
        db.load_table(schema(), rows(100), &[0]).unwrap();
        let scan = db
            .scan(
                "t",
                &[0, 1],
                Some(Expr::binary(BinOp::Eq, Expr::col(0, "a"), Expr::int(3))),
            )
            .unwrap();
        let got = collect(scan).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|r| r[0] == Value::Integer(3)));
    }

    #[test]
    fn group_by_matches_expected() {
        let mut db = CStoreDb::new();
        db.load_table(schema(), rows(100), &[0]).unwrap();
        let scan = db.scan("t", &[0, 1], None).unwrap();
        let gb = CStoreGroupBy::new(
            scan,
            vec![0],
            vec![AggCall::new(AggFunc::CountStar, 0, "cnt")],
        )
        .unwrap();
        let got = collect(gb).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|r| r[1] == Value::Integer(10)));
    }

    #[test]
    fn join_produces_matches() {
        let mut db = CStoreDb::new();
        db.load_table(schema(), rows(20), &[0]).unwrap();
        let dim_schema = TableSchema::new(
            "d",
            vec![
                ColumnDef::new("k", DataType::Integer),
                ColumnDef::new("v", DataType::Varchar),
            ],
        );
        db.load_table(
            dim_schema,
            vec![
                vec![Value::Integer(1), Value::Varchar("one".into())],
                vec![Value::Integer(2), Value::Varchar("two".into())],
            ],
            &[0],
        )
        .unwrap();
        let left = db.scan("t", &[0, 1], None).unwrap();
        let right = db.scan("d", &[0, 1], None).unwrap();
        let join = CStoreHashJoin::new(left, right, 0, 0).unwrap();
        let got = collect(join).unwrap();
        assert_eq!(got.len(), 4, "keys 1 and 2, twice each in t");
        assert!(got.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn row_id_overhead_is_real() {
        let mut db = CStoreDb::new();
        db.load_table(schema(), rows(10_000), &[0]).unwrap();
        let p = db.table("t").unwrap();
        assert_eq!(p.row_ids.len(), 10_000 * 8, "8 bytes per explicit row id");
        assert!(db.disk_bytes() > 80_000);
    }

    #[test]
    fn rle_used_for_sorted_leading_column() {
        let mut db = CStoreDb::new();
        db.load_table(schema(), rows(10_000), &[0]).unwrap();
        let p = db.table("t").unwrap();
        // Column 0 (sorted, 10 distinct): tiny. Column 1 (unsorted after
        // the leading sort): plain, big.
        assert!(p.columns[0].len() < 200);
        assert!(p.columns[1].len() > 10_000);
    }
}
