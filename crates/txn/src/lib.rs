//! `vdb-txn` — transactions: epoch-based MVCC and the analytic-workload
//! lock model (§5 of the paper).
//!
//! Queries never lock: they read a consistent snapshot identified by an
//! epoch ([`epoch::EpochManager`]). DML takes table locks from the 7-mode
//! model of Tables 1 and 2 ([`locks`]) — notably the `I` (Insert) mode is
//! self-compatible so parallel bulk loads proceed concurrently, "critical
//! to maintain high ingest rates". [`txn::Transaction`] tracks a
//! transaction's locks and buffered effects; commit stamping and
//! application to storage are orchestrated by `vdb-core` (single node) and
//! `vdb-cluster` (quorum commit without two-phase commit).

#![deny(rustdoc::broken_intra_doc_links)]

pub mod epoch;
pub mod locks;
pub mod txn;

pub use epoch::EpochManager;
pub use locks::{LockManager, LockMode};
pub use txn::{Transaction, TransactionManager, TxnState};
