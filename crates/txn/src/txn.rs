//! Transaction bookkeeping.
//!
//! A [`Transaction`] tracks identity, isolation, state and held locks.
//! Effects (inserted rows, delete marks) are buffered by the layers above
//! and applied at commit with the epoch stamped by
//! [`EpochManager::commit_dml`]; "transaction rollback simply entails
//! discarding any ROS container or WOS data created by the transaction"
//! (§5) — with buffered effects, rollback is literally dropping the buffer.

use crate::epoch::EpochManager;
use crate::locks::{LockManager, LockMode};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vdb_types::{DbError, DbResult, Epoch, TxnId};

/// Isolation levels offered (§5: default READ COMMITTED; SERIALIZABLE via
/// Shared locks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    ReadCommitted,
    Serializable,
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    Active,
    Committed,
    Aborted,
}

/// One transaction's control block.
#[derive(Debug)]
pub struct Transaction {
    pub id: TxnId,
    pub isolation: Isolation,
    state: Mutex<TxnState>,
    /// Snapshot epoch fixed at BEGIN for reads.
    pub snapshot: Epoch,
}

impl Transaction {
    pub fn state(&self) -> TxnState {
        *self.state.lock()
    }

    fn set_state(&self, s: TxnState) {
        *self.state.lock() = s;
    }
}

/// Creates transactions and mediates their locks and commit epochs.
pub struct TransactionManager {
    pub epochs: Arc<EpochManager>,
    pub locks: Arc<LockManager>,
    next_id: AtomicU64,
}

impl Default for TransactionManager {
    fn default() -> TransactionManager {
        TransactionManager::new(Arc::new(EpochManager::default()))
    }
}

impl TransactionManager {
    pub fn new(epochs: Arc<EpochManager>) -> TransactionManager {
        TransactionManager {
            epochs,
            locks: Arc::new(LockManager::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Begin a transaction; the read snapshot is fixed here.
    pub fn begin(&self, isolation: Isolation) -> Arc<Transaction> {
        let id = TxnId(self.next_id.fetch_add(1, Ordering::Relaxed));
        Arc::new(Transaction {
            id,
            isolation,
            state: Mutex::new(TxnState::Active),
            snapshot: self.epochs.read_committed_snapshot(),
        })
    }

    /// Acquire a table lock for the transaction (Table 1/2 semantics).
    pub fn lock(&self, txn: &Transaction, table: &str, mode: LockMode) -> DbResult<LockMode> {
        self.ensure_active(txn)?;
        self.locks.acquire(txn.id, table, mode)
    }

    /// Commit: stamps a fresh epoch (if `dml`), releases locks. The caller
    /// applies buffered effects *using the returned epoch* before calling
    /// this — within the single-node engine that ordering makes the commit
    /// atomic with respect to new snapshots, because readers only see
    /// epoch ≤ current−1.
    pub fn commit(&self, txn: &Transaction, dml: bool) -> DbResult<Option<Epoch>> {
        self.ensure_active(txn)?;
        let epoch = if dml {
            Some(self.epochs.commit_dml())
        } else {
            None
        };
        txn.set_state(TxnState::Committed);
        self.locks.release_all(txn.id);
        Ok(epoch)
    }

    /// The epoch the *next* DML commit will receive; effects must be
    /// stamped with this before `commit` is invoked.
    pub fn pending_commit_epoch(&self) -> Epoch {
        self.epochs.current()
    }

    /// Roll back: discard state, release locks.
    pub fn rollback(&self, txn: &Transaction) {
        if txn.state() == TxnState::Active {
            txn.set_state(TxnState::Aborted);
            self.locks.release_all(txn.id);
        }
    }

    fn ensure_active(&self, txn: &Transaction) -> DbResult<()> {
        match txn.state() {
            TxnState::Active => Ok(()),
            other => Err(DbError::Txn(format!(
                "transaction {} is {:?}",
                txn.id, other
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::locks::LockMode;

    #[test]
    fn begin_commit_lifecycle() {
        let tm = TransactionManager::default();
        let t = tm.begin(Isolation::ReadCommitted);
        assert_eq!(t.state(), TxnState::Active);
        tm.lock(&t, "sales", LockMode::I).unwrap();
        let epoch = tm.commit(&t, true).unwrap();
        assert!(epoch.is_some());
        assert_eq!(t.state(), TxnState::Committed);
        // Locks released: another txn can take X.
        let t2 = tm.begin(Isolation::ReadCommitted);
        tm.lock(&t2, "sales", LockMode::X).unwrap();
    }

    #[test]
    fn read_only_commit_does_not_advance_epoch() {
        let tm = TransactionManager::default();
        let before = tm.epochs.current();
        let t = tm.begin(Isolation::ReadCommitted);
        assert_eq!(tm.commit(&t, false).unwrap(), None);
        assert_eq!(tm.epochs.current(), before);
    }

    #[test]
    fn rollback_releases_locks() {
        let tm = TransactionManager::default();
        let t = tm.begin(Isolation::ReadCommitted);
        tm.lock(&t, "sales", LockMode::X).unwrap();
        tm.rollback(&t);
        assert_eq!(t.state(), TxnState::Aborted);
        let t2 = tm.begin(Isolation::ReadCommitted);
        tm.lock(&t2, "sales", LockMode::X).unwrap();
    }

    #[test]
    fn operations_on_finished_txn_fail() {
        let tm = TransactionManager::default();
        let t = tm.begin(Isolation::ReadCommitted);
        tm.commit(&t, false).unwrap();
        assert!(tm.lock(&t, "x", LockMode::S).is_err());
        assert!(tm.commit(&t, false).is_err());
    }

    #[test]
    fn snapshots_are_stable_within_txn() {
        let tm = TransactionManager::default();
        let t = tm.begin(Isolation::ReadCommitted);
        let snap = t.snapshot;
        // Another transaction commits; t's snapshot must not move.
        let t2 = tm.begin(Isolation::ReadCommitted);
        tm.commit(&t2, true).unwrap();
        assert_eq!(t.snapshot, snap);
        // But a *new* transaction sees the new data.
        let t3 = tm.begin(Isolation::ReadCommitted);
        assert!(t3.snapshot > snap);
    }

    #[test]
    fn concurrent_inserts_serial_updates() {
        let tm = TransactionManager::default();
        let a = tm.begin(Isolation::ReadCommitted);
        let b = tm.begin(Isolation::ReadCommitted);
        tm.lock(&a, "t", LockMode::I).unwrap();
        tm.lock(&b, "t", LockMode::I).unwrap();
        let c = tm.begin(Isolation::ReadCommitted);
        assert!(tm.lock(&c, "t", LockMode::X).is_err());
        tm.commit(&a, true).unwrap();
        tm.commit(&b, true).unwrap();
        tm.lock(&c, "t", LockMode::X).unwrap();
    }
}
