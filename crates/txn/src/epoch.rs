//! Epoch management (§5.1).
//!
//! "Vertica automatically advances the epoch as part of commit when the
//! committing transaction includes DML" — so each DML commit gets its own
//! epoch and becomes immediately visible to READ COMMITTED queries, which
//! target the *latest epoch* (current − 1).
//!
//! Two tracked marks: the **Last Good Epoch** (per projection, owned by the
//! storage layer) and the **Ancient History Mark** — history before the AHM
//! may be purged by the tuple mover. The AHM advances by a user policy
//! (here: keep the most recent `history_retention` epochs) and "normally
//! does not advance when nodes are down", which the cluster layer enforces
//! by calling [`EpochManager::freeze_ahm`].

use parking_lot::Mutex;
use vdb_types::{DbResult, Epoch};

#[derive(Debug)]
struct EpochState {
    current: Epoch,
    ahm: Epoch,
    ahm_frozen: bool,
}

/// Cluster-wide logical clock. All nodes agree on commit epochs (the
/// cluster layer broadcasts commits; within this single-process simulation
/// the manager itself is shared).
#[derive(Debug)]
pub struct EpochManager {
    state: Mutex<EpochState>,
    /// AHM policy: number of epochs of history to retain.
    history_retention: u64,
}

impl Default for EpochManager {
    fn default() -> EpochManager {
        EpochManager::new(u64::MAX)
    }
}

impl EpochManager {
    /// `history_retention`: how many epochs of history the AHM policy
    /// preserves (`u64::MAX` = keep everything).
    pub fn new(history_retention: u64) -> EpochManager {
        EpochManager {
            state: Mutex::new(EpochState {
                current: Epoch(1),
                ahm: Epoch::ZERO,
                ahm_frozen: false,
            }),
            history_retention,
        }
    }

    /// The epoch an in-flight DML commit will stamp.
    pub fn current(&self) -> Epoch {
        self.state.lock().current
    }

    /// READ COMMITTED snapshot: "each query targets the latest epoch (the
    /// current epoch − 1)".
    pub fn read_committed_snapshot(&self) -> Epoch {
        self.state.lock().current.prev()
    }

    /// Commit a DML transaction: returns the commit epoch and advances the
    /// current epoch (automatic epoch advancement, §5.1). The AHM advances
    /// per policy unless frozen.
    pub fn commit_dml(&self) -> Epoch {
        let mut s = self.state.lock();
        let commit = s.current;
        s.current = s.current.next();
        if !s.ahm_frozen {
            let target = s.current.0.saturating_sub(self.history_retention);
            if target > s.ahm.0 {
                s.ahm = Epoch(target);
            }
        }
        commit
    }

    /// Restore the epoch clock on database reopen: the next DML commit
    /// stamps `current`. Recovery sets this to one past the last durably
    /// committed epoch read back from the commit markers (§5.1).
    pub fn restore_current(&self, current: Epoch) {
        self.state.lock().current = current;
    }

    /// Ancient History Mark: history at or before this epoch may be purged.
    pub fn ahm(&self) -> Epoch {
        self.state.lock().ahm
    }

    /// Freeze the AHM (nodes are down: preserve history for incremental
    /// recovery, §5.1) or unfreeze it.
    pub fn freeze_ahm(&self, frozen: bool) {
        self.state.lock().ahm_frozen = frozen;
    }

    /// Manually advance the AHM (administrative override). Fails if it
    /// would move backwards or past the last committed epoch.
    pub fn advance_ahm_to(&self, to: Epoch) -> DbResult<()> {
        let mut s = self.state.lock();
        if to < s.ahm {
            return Err(vdb_types::DbError::Txn(format!(
                "AHM cannot move backwards ({} -> {to})",
                s.ahm
            )));
        }
        if to >= s.current {
            return Err(vdb_types::DbError::Txn(format!(
                "AHM {to} cannot reach the current epoch {}",
                s.current
            )));
        }
        s.ahm = to;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_advances_epoch() {
        let em = EpochManager::default();
        assert_eq!(em.current(), Epoch(1));
        assert_eq!(em.read_committed_snapshot(), Epoch(0));
        let e1 = em.commit_dml();
        assert_eq!(e1, Epoch(1));
        assert_eq!(em.current(), Epoch(2));
        // The committed epoch is immediately visible to READ COMMITTED.
        assert_eq!(em.read_committed_snapshot(), e1);
    }

    #[test]
    fn ahm_follows_retention_policy() {
        let em = EpochManager::new(3);
        for _ in 0..10 {
            em.commit_dml();
        }
        // current = 11; retain 3 → AHM = 8.
        assert_eq!(em.current(), Epoch(11));
        assert_eq!(em.ahm(), Epoch(8));
    }

    #[test]
    fn frozen_ahm_does_not_advance() {
        let em = EpochManager::new(1);
        em.commit_dml();
        let before = em.ahm();
        em.freeze_ahm(true);
        for _ in 0..5 {
            em.commit_dml();
        }
        assert_eq!(em.ahm(), before, "AHM frozen while nodes down");
        em.freeze_ahm(false);
        em.commit_dml();
        assert!(em.ahm() > before);
    }

    #[test]
    fn manual_ahm_bounds() {
        let em = EpochManager::default();
        for _ in 0..5 {
            em.commit_dml();
        }
        em.advance_ahm_to(Epoch(3)).unwrap();
        assert_eq!(em.ahm(), Epoch(3));
        assert!(em.advance_ahm_to(Epoch(2)).is_err(), "backwards");
        assert!(em.advance_ahm_to(Epoch(99)).is_err(), "past current");
    }
}
