//! The 7-mode table lock model (Tables 1 and 2 of the paper).
//!
//! * **S** (Shared) — prevents concurrent modification; SERIALIZABLE reads.
//! * **I** (Insert) — required to insert; compatible with itself so
//!   parallel loads coexist.
//! * **SI** (SharedInsert) — read + insert, but not update/delete.
//! * **X** (Exclusive) — deletes and updates.
//! * **T** (Tuple mover) — short tuple-mover operations on delete vectors;
//!   compatible with everything except X and O.
//! * **U** (Usage) — parts of moveout/mergeout; compatible with everything
//!   except O.
//! * **O** (Owner) — significant DDL; compatible with nothing.

use parking_lot::Mutex;
use std::collections::HashMap;
use vdb_types::{DbError, DbResult, TxnId};

/// Table lock modes, in the matrix order of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LockMode {
    S,
    I,
    SI,
    X,
    T,
    U,
    O,
}

pub use LockMode::*;

/// All modes in matrix order.
pub const ALL_MODES: [LockMode; 7] = [S, I, SI, X, T, U, O];

impl LockMode {
    pub fn name(self) -> &'static str {
        match self {
            S => "S",
            I => "I",
            SI => "SI",
            X => "X",
            T => "T",
            U => "U",
            O => "O",
        }
    }

    /// Table 1: may a `self` request be granted while `granted` is held by
    /// another transaction?
    pub fn compatible_with(self, granted: LockMode) -> bool {
        // Rows: requested mode; columns: granted mode.
        const YES: bool = true;
        const NO: bool = false;
        const TABLE1: [[bool; 7]; 7] = [
            // granted:  S    I    SI   X    T    U    O
            /* S  */
            [YES, NO, NO, NO, YES, YES, NO],
            /* I  */ [NO, YES, NO, NO, YES, YES, NO],
            /* SI */ [NO, NO, NO, NO, YES, YES, NO],
            /* X  */ [NO, NO, NO, NO, NO, YES, NO],
            /* T  */ [YES, YES, YES, NO, YES, YES, NO],
            /* U  */ [YES, YES, YES, YES, YES, YES, NO],
            /* O  */ [NO, NO, NO, NO, NO, NO, NO],
        ];
        TABLE1[self.index()][granted.index()]
    }

    /// Table 2: the mode held after a transaction already holding
    /// `granted` requests `self`.
    pub fn convert_from(self, granted: LockMode) -> LockMode {
        const TABLE2: [[LockMode; 7]; 7] = [
            // granted:  S   I   SI  X  T   U   O
            /* S  */
            [S, SI, SI, X, S, S, O],
            /* I  */ [SI, I, SI, X, I, I, O],
            /* SI */ [SI, SI, SI, X, SI, SI, O],
            /* X  */ [X, X, X, X, X, X, O],
            /* T  */ [S, I, SI, X, T, T, O],
            /* U  */ [S, I, SI, X, T, U, O],
            /* O  */ [O, O, O, O, O, O, O],
        ];
        TABLE2[self.index()][granted.index()]
    }

    fn index(self) -> usize {
        match self {
            S => 0,
            I => 1,
            SI => 2,
            X => 3,
            T => 4,
            U => 5,
            O => 6,
        }
    }
}

impl std::fmt::Display for LockMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Render Table 1 as printed in the paper (the bench harness regenerates
/// the table from the live implementation).
pub fn render_compatibility_table() -> String {
    let mut out = String::from("Requested\\Granted  S    I    SI   X    T    U    O\n");
    for req in ALL_MODES {
        out.push_str(&format!("{:<18}", req.name()));
        for granted in ALL_MODES {
            let cell = if req.compatible_with(granted) {
                "Yes"
            } else {
                "No"
            };
            out.push_str(&format!("{cell:<5}"));
        }
        out.push('\n');
    }
    out
}

/// Render Table 2.
pub fn render_conversion_table() -> String {
    let mut out = String::from("Requested\\Granted  S    I    SI   X    T    U    O\n");
    for req in ALL_MODES {
        out.push_str(&format!("{:<18}", req.name()));
        for granted in ALL_MODES {
            out.push_str(&format!("{:<5}", req.convert_from(granted).name()));
        }
        out.push('\n');
    }
    out
}

/// Per-table lock state: which transactions hold which modes.
#[derive(Debug, Default)]
struct TableLocks {
    holders: HashMap<TxnId, LockMode>,
}

/// Try-lock table lock manager. Conflicts return
/// [`DbError::LockConflict`] immediately (analytic workloads prefer fast
/// failure + retry over blocking queues; queries never take locks at all).
#[derive(Debug, Default)]
pub struct LockManager {
    tables: Mutex<HashMap<String, TableLocks>>,
}

impl LockManager {
    pub fn new() -> LockManager {
        LockManager::default()
    }

    /// Acquire (or upgrade via Table 2) `mode` on `table` for `txn`.
    pub fn acquire(&self, txn: TxnId, table: &str, mode: LockMode) -> DbResult<LockMode> {
        let mut tables = self.tables.lock();
        let entry = tables.entry(table.to_string()).or_default();
        let effective = match entry.holders.get(&txn) {
            Some(&held) => mode.convert_from(held),
            None => mode,
        };
        for (&other, &held) in &entry.holders {
            if other == txn {
                continue;
            }
            if !effective.compatible_with(held) {
                return Err(DbError::LockConflict {
                    table: table.to_string(),
                    requested: effective.name().to_string(),
                    held: held.name().to_string(),
                });
            }
        }
        entry.holders.insert(txn, effective);
        Ok(effective)
    }

    /// Mode `txn` currently holds on `table`.
    pub fn held(&self, txn: TxnId, table: &str) -> Option<LockMode> {
        self.tables
            .lock()
            .get(table)
            .and_then(|t| t.holders.get(&txn).copied())
    }

    /// Release every lock held by `txn` (commit/rollback).
    pub fn release_all(&self, txn: TxnId) {
        let mut tables = self.tables.lock();
        tables.retain(|_, t| {
            t.holders.remove(&txn);
            !t.holders.is_empty()
        });
    }

    /// Release `txn`'s lock on one table (tuple mover's short T/U locks).
    pub fn release(&self, txn: TxnId, table: &str) {
        let mut tables = self.tables.lock();
        if let Some(t) = tables.get_mut(table) {
            t.holders.remove(&txn);
            if t.holders.is_empty() {
                tables.remove(table);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 exactly as printed in the paper.
    #[test]
    fn compatibility_matrix_matches_table1() {
        let expected: [[bool; 7]; 7] = [
            [true, false, false, false, true, true, false],
            [false, true, false, false, true, true, false],
            [false, false, false, false, true, true, false],
            [false, false, false, false, false, true, false],
            [true, true, true, false, true, true, false],
            [true, true, true, true, true, true, false],
            [false, false, false, false, false, false, false],
        ];
        for (i, req) in ALL_MODES.iter().enumerate() {
            for (j, granted) in ALL_MODES.iter().enumerate() {
                assert_eq!(
                    req.compatible_with(*granted),
                    expected[i][j],
                    "requested {req} vs granted {granted}"
                );
            }
        }
    }

    /// Table 2 exactly as printed in the paper.
    #[test]
    fn conversion_matrix_matches_table2() {
        let expected: [[LockMode; 7]; 7] = [
            [S, SI, SI, X, S, S, O],
            [SI, I, SI, X, I, I, O],
            [SI, SI, SI, X, SI, SI, O],
            [X, X, X, X, X, X, O],
            [S, I, SI, X, T, T, O],
            [S, I, SI, X, T, U, O],
            [O, O, O, O, O, O, O],
        ];
        for (i, req) in ALL_MODES.iter().enumerate() {
            for (j, granted) in ALL_MODES.iter().enumerate() {
                assert_eq!(
                    req.convert_from(*granted),
                    expected[i][j],
                    "requested {req} converting from {granted}"
                );
            }
        }
    }

    #[test]
    fn insert_locks_enable_parallel_loads() {
        let lm = LockManager::new();
        // Three concurrent bulk loads on the same table all get I.
        for t in 1..=3 {
            assert_eq!(lm.acquire(TxnId(t), "sales", I).unwrap(), I);
        }
        // An updater (X) must fail while inserts are in flight.
        assert!(matches!(
            lm.acquire(TxnId(9), "sales", X),
            Err(DbError::LockConflict { .. })
        ));
        // The tuple mover (T, U) slips through.
        assert_eq!(lm.acquire(TxnId(10), "sales", T).unwrap(), T);
        assert_eq!(lm.acquire(TxnId(11), "sales", U).unwrap(), U);
    }

    #[test]
    fn exclusive_blocks_everything_but_usage() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "t", X).unwrap();
        for (mode, ok) in [
            (S, false),
            (I, false),
            (SI, false),
            (X, false),
            (T, false),
            (U, true),
            (O, false),
        ] {
            let r = lm.acquire(TxnId(2), "t", mode);
            assert_eq!(r.is_ok(), ok, "mode {mode} against held X");
            lm.release(TxnId(2), "t");
            // Re-grant X holder state is untouched.
            assert_eq!(lm.held(TxnId(1), "t"), Some(X));
        }
    }

    #[test]
    fn upgrade_follows_conversion_matrix() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "t", S).unwrap();
        // S + I request → SI.
        assert_eq!(lm.acquire(TxnId(1), "t", I).unwrap(), SI);
        assert_eq!(lm.held(TxnId(1), "t"), Some(SI));
        // SI + X request → X.
        assert_eq!(lm.acquire(TxnId(1), "t", X).unwrap(), X);
    }

    #[test]
    fn upgrade_respects_other_holders() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "t", I).unwrap();
        lm.acquire(TxnId(2), "t", I).unwrap();
        // Txn 1 upgrading to X (I→X = X) conflicts with txn 2's I.
        assert!(lm.acquire(TxnId(1), "t", X).is_err());
        // Failed upgrade must not have changed the held mode.
        assert_eq!(lm.held(TxnId(1), "t"), Some(I));
    }

    #[test]
    fn owner_lock_requires_solitude() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "t", U).unwrap();
        assert!(lm.acquire(TxnId(2), "t", O).is_err(), "O vs U conflicts");
        lm.release_all(TxnId(1));
        assert_eq!(lm.acquire(TxnId(2), "t", O).unwrap(), O);
        // Nothing can join while O is held.
        for mode in ALL_MODES {
            assert!(lm.acquire(TxnId(3), "t", mode).is_err(), "{mode} vs O");
        }
    }

    #[test]
    fn release_all_frees_every_table() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "a", X).unwrap();
        lm.acquire(TxnId(1), "b", I).unwrap();
        lm.release_all(TxnId(1));
        assert_eq!(lm.acquire(TxnId(2), "a", X).unwrap(), X);
        assert_eq!(lm.acquire(TxnId(2), "b", X).unwrap(), X);
    }

    #[test]
    fn locks_are_per_table() {
        let lm = LockManager::new();
        lm.acquire(TxnId(1), "a", X).unwrap();
        assert_eq!(lm.acquire(TxnId(2), "b", X).unwrap(), X);
    }

    #[test]
    fn rendered_tables_match_paper_shape() {
        let t1 = render_compatibility_table();
        assert!(t1.lines().count() == 8);
        assert!(t1.contains("Yes"));
        let t2 = render_conversion_table();
        assert!(t2.lines().count() == 8);
        // Spot checks against the printed tables.
        assert!(t1.lines().nth(1).unwrap().starts_with('S'));
        assert!(t2
            .lines()
            .nth(4)
            .unwrap()
            .split_whitespace()
            .all(|c| c == "X" || c == "O"));
    }

    #[test]
    fn compatibility_asymmetry_of_x_and_u() {
        // Table 1 is asymmetric: requesting X while U is held is allowed,
        // and requesting U while X is held is also allowed — but requesting
        // X while S is held is not, while S-while-U is.
        assert!(X.compatible_with(U));
        assert!(U.compatible_with(X));
        assert!(!X.compatible_with(S));
        assert!(S.compatible_with(U));
        assert!(!S.compatible_with(I));
    }
}
