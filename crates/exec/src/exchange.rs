//! Data movement operators (§6.1 #7 and Figure 3).
//!
//! * [`SendOp`]/[`RecvOp`] — "Sends tuples from one node to another. Both
//!   broadcast and sending to nodes based on segmentation expression
//!   evaluation is supported." Channels are in-process (the cluster is
//!   simulated) with byte counters so the optimizer's network-cost model
//!   can be validated.
//! * [`MergingRecvOp`] — a Recv that k-way-merges several sorted senders,
//!   "capable of retaining the sortedness of the input stream".
//! * [`ParallelUnionOp`] — Figure 3's ParallelUnion: runs child pipelines
//!   on worker threads and unions their batches.
//! * [`parallel_segmented`] — Figure 3's StorageUnion + resegment pattern:
//!   splits a stream by key hash into N lanes, runs a pipeline per lane on
//!   its own thread (alike values co-located, so per-lane GroupBys compute
//!   complete groups), and unions the results.

use crate::batch::{Batch, ColumnSlice, BATCH_SIZE};
use crate::operator::{BoxedOperator, Operator};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use vdb_types::schema::{compare_rows, SortKey};
use vdb_types::{DbError, DbResult, Row};

/// How a Send routes rows.
#[derive(Debug, Clone)]
pub enum Routing {
    /// Every destination receives every row.
    Broadcast,
    /// Row goes to `hash(key columns) % destinations` (local resegment) —
    /// alike values co-locate.
    HashColumns(Vec<usize>),
    /// Ring segmentation (§3.6): destination owns a contiguous range of the
    /// unsigned 64-bit expression value. `dests` ranges are equal slices.
    Ring(vdb_types::Expr),
}

/// Shared byte counter for network accounting.
pub type ByteCounter = Arc<AtomicU64>;

/// Cooperative abort signal for an exchange. The cluster sets it when a
/// downstream node is declared dead; routers observe it instead of blocking
/// forever on a channel the dead node's consumer will never drain, so
/// exchange workers drain and join cleanly and the query can be retried
/// against buddy replicas.
pub type ShutdownFlag = Arc<AtomicBool>;

/// Pulls from a child and pushes batches to N channels by routing rule.
/// Drives to completion on first `next_batch` call and yields no rows
/// itself (a sink); pair it with [`RecvOp`]s on the other end.
pub struct SendOp {
    input: BoxedOperator,
    routing: Routing,
    senders: Vec<Sender<Batch>>,
    bytes_sent: ByteCounter,
    shutdown: Option<ShutdownFlag>,
}

impl SendOp {
    pub fn new(
        input: BoxedOperator,
        routing: Routing,
        senders: Vec<Sender<Batch>>,
        bytes_sent: ByteCounter,
    ) -> SendOp {
        SendOp {
            input,
            routing,
            senders,
            bytes_sent,
            shutdown: None,
        }
    }

    /// Attach a shutdown flag: once set, the router stops pulling input and
    /// every in-flight send aborts with a retryable [`DbError::Unavailable`]
    /// instead of blocking on a full channel whose consumer died.
    pub fn with_shutdown(mut self, flag: ShutdownFlag) -> SendOp {
        self.shutdown = Some(flag);
        self
    }

    fn shutting_down(&self) -> bool {
        self.shutdown
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Deliver one batch to one lane. Without a shutdown flag this is the
    /// plain blocking send; with one, the send polls so a declared-dead
    /// downstream can't wedge the router on a full channel.
    fn deliver(&self, lane: usize, piece: Batch) -> DbResult<()> {
        let Some(flag) = &self.shutdown else {
            return self.senders[lane].send(piece).map_err(closed);
        };
        let mut msg = piece;
        loop {
            if flag.load(Ordering::Acquire) {
                return Err(aborted());
            }
            match self.senders[lane].try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => {
                    return Err(closed(crossbeam::channel::SendError(())))
                }
                Err(TrySendError::Full(m)) => {
                    msg = m;
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
            }
        }
    }

    /// Run the send loop to completion (blocking). Channels close when the
    /// senders drop. Typically spawned on a router thread — keep the
    /// `JoinHandle<DbResult<()>>` and join it (e.g. via
    /// [`ParallelUnionOp::with_feeder`]) so a routing failure surfaces as
    /// an error instead of a silently truncated stream.
    ///
    /// Routing is columnar: the per-row lane is computed from column
    /// accessors (typed key columns hash natively via
    /// [`crate::vector::TypedVector::hash64_at`]; the ring expression
    /// evaluates through the vectorized engine) and each lane receives a
    /// column-sliced sub-batch — no row is pivoted in the router.
    pub fn run(mut self) -> DbResult<()> {
        let n = self.senders.len();
        while let Some(batch) = self.input.next_batch()? {
            if self.shutting_down() {
                return Err(aborted());
            }
            if batch.is_empty() {
                continue;
            }
            match &self.routing {
                Routing::Broadcast => {
                    self.bytes_sent
                        .fetch_add((batch.approx_bytes() * n) as u64, Ordering::Relaxed);
                    for lane in 0..n {
                        self.deliver(lane, batch.clone())?;
                    }
                }
                Routing::HashColumns(cols) => {
                    let lanes: Vec<usize> = (0..batch.len())
                        .map(|li| {
                            let pi = batch.physical_index(li);
                            let mut h = 0u64;
                            for &c in cols {
                                let hv = match &batch.columns[c] {
                                    ColumnSlice::Typed(tv) => tv.hash64_at(pi),
                                    other => other.value_at(pi).hash64(),
                                };
                                h = h.rotate_left(21) ^ hv;
                            }
                            (h % n as u64) as usize
                        })
                        .collect();
                    self.send_lanes(&batch, &lanes)?;
                }
                Routing::Ring(expr) => {
                    let ring_col = crate::expr_vec::eval_expr_column(&batch, expr)?;
                    let mut lanes = Vec::with_capacity(batch.len());
                    for i in 0..ring_col.len() {
                        let ring = ring_col.value_at(i).as_i64().ok_or_else(|| {
                            DbError::Execution("ring expression must be integral".into())
                        })? as u64;
                        lanes.push(((ring as u128 * n as u128) >> 64) as usize);
                    }
                    self.send_lanes(&batch, &lanes)?;
                }
            }
        }
        Ok(())
    }

    /// Send each lane its slice of the batch (`lanes` is aligned with the
    /// batch's logical rows). One pass buckets physical row positions per
    /// lane (O(rows + lanes)); slices are materialized with their column
    /// representations preserved — RLE runs shorten, typed buffers gather.
    fn send_lanes(&self, batch: &Batch, lanes: &[usize]) -> DbResult<()> {
        let mut per_lane: Vec<Vec<u32>> = vec![Vec::new(); self.senders.len()];
        for (li, &lane) in lanes.iter().enumerate() {
            per_lane[lane].push(batch.physical_index(li) as u32);
        }
        for (lane, idx) in per_lane.into_iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            let piece = batch.materialized(&crate::vector::SelectionVector::new(idx));
            self.bytes_sent
                .fetch_add(piece.approx_bytes() as u64, Ordering::Relaxed);
            self.deliver(lane, piece)?;
        }
        Ok(())
    }
}

fn closed<T>(_: crossbeam::channel::SendError<T>) -> DbError {
    DbError::Execution("receiver hung up (node ejected?)".into())
}

fn aborted() -> DbError {
    DbError::Unavailable("exchange shut down: downstream node declared dead".into())
}

/// Receives batches from one channel.
pub struct RecvOp {
    rx: Receiver<Batch>,
}

impl RecvOp {
    pub fn new(rx: Receiver<Batch>) -> RecvOp {
        RecvOp { rx }
    }
}

impl Operator for RecvOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        match self.rx.recv() {
            Ok(b) => Ok(Some(b)),
            Err(_) => Ok(None), // all senders dropped: end of stream
        }
    }

    fn name(&self) -> String {
        "Recv".into()
    }
}

/// Receives from several channels whose streams are each sorted by `keys`,
/// producing a globally sorted stream (sortedness-retaining Recv).
pub struct MergingRecvOp {
    sources: Vec<SourceCursor>,
    keys: Vec<SortKey>,
}

struct SourceCursor {
    rx: Receiver<Batch>,
    buf: Vec<Row>,
    pos: usize,
    done: bool,
}

impl SourceCursor {
    fn peek(&mut self) -> DbResult<Option<&Row>> {
        while self.pos >= self.buf.len() && !self.done {
            match self.rx.recv() {
                Ok(b) => {
                    self.buf = b.rows();
                    self.pos = 0;
                }
                Err(_) => self.done = true,
            }
        }
        if self.pos < self.buf.len() {
            Ok(Some(&self.buf[self.pos]))
        } else {
            Ok(None)
        }
    }
}

impl MergingRecvOp {
    pub fn new(receivers: Vec<Receiver<Batch>>, keys: Vec<SortKey>) -> MergingRecvOp {
        MergingRecvOp {
            sources: receivers
                .into_iter()
                .map(|rx| SourceCursor {
                    rx,
                    buf: Vec::new(),
                    pos: 0,
                    done: false,
                })
                .collect(),
            keys,
        }
    }
}

impl Operator for MergingRecvOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        let mut out = Vec::with_capacity(BATCH_SIZE);
        while out.len() < BATCH_SIZE {
            let mut best: Option<usize> = None;
            for i in 0..self.sources.len() {
                if self.sources[i].peek()?.is_none() {
                    continue;
                }
                best = Some(match best {
                    None => i,
                    Some(j) => {
                        let a = &self.sources[i].buf[self.sources[i].pos];
                        let b = &self.sources[j].buf[self.sources[j].pos];
                        if compare_rows(a, b, &self.keys) == std::cmp::Ordering::Less {
                            i
                        } else {
                            j
                        }
                    }
                });
            }
            match best {
                None => break,
                Some(i) => {
                    let src = &mut self.sources[i];
                    out.push(src.buf[src.pos].clone());
                    src.pos += 1;
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(Batch::from_rows(out)))
        }
    }

    fn name(&self) -> String {
        "Recv(merge)".into()
    }
}

/// Figure 3's ParallelUnion: each child pipeline runs on its own worker
/// thread; batches are unioned in arrival order. Worker failures travel
/// through the channel; upstream feeder failures (e.g. the resegmenting
/// router of [`parallel_segmented`]) travel through the feeder's join
/// handle — both surface as `DbResult::Err` from [`Operator::next_batch`].
pub struct ParallelUnionOp {
    children: Option<Vec<BoxedOperator>>,
    rx: Option<Receiver<DbResult<Batch>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Upstream thread feeding the children (joined at end of stream so a
    /// failed feed becomes an error instead of a truncated result).
    feeder: Option<std::thread::JoinHandle<DbResult<()>>>,
}

impl ParallelUnionOp {
    pub fn new(children: Vec<BoxedOperator>) -> ParallelUnionOp {
        ParallelUnionOp {
            children: Some(children),
            rx: None,
            handles: Vec::new(),
            feeder: None,
        }
    }

    /// A ParallelUnion whose children are fed by `feeder` (the router
    /// thread of the resegment pattern).
    pub fn with_feeder(
        children: Vec<BoxedOperator>,
        feeder: std::thread::JoinHandle<DbResult<()>>,
    ) -> ParallelUnionOp {
        ParallelUnionOp {
            feeder: Some(feeder),
            ..ParallelUnionOp::new(children)
        }
    }

    fn start(&mut self) {
        let Some(children) = self.children.take() else {
            return;
        };
        let (tx, rx) = bounded::<DbResult<Batch>>(children.len().max(2) * 2);
        for mut child in children {
            let tx = tx.clone();
            self.handles.push(std::thread::spawn(move || loop {
                match child.next_batch() {
                    Ok(Some(b)) => {
                        if tx.send(Ok(b)).is_err() {
                            return;
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }));
        }
        self.rx = Some(rx);
    }

    /// Join every lane and the feeder, surfacing panics and feed errors.
    fn finish(&mut self) -> DbResult<()> {
        let mut result = Ok(());
        for h in self.handles.drain(..) {
            if h.join().is_err() {
                result = Err(DbError::Execution(
                    "parallel union worker thread panicked".into(),
                ));
            }
        }
        if let Some(f) = self.feeder.take() {
            match f.join() {
                Ok(fed) => result = result.and(fed),
                Err(_) => {
                    result = Err(DbError::Execution(
                        "parallel union feeder thread panicked".into(),
                    ))
                }
            }
        }
        result
    }
}

impl Operator for ParallelUnionOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if self.rx.is_none() {
            self.start();
        }
        let recv = match &self.rx {
            Some(rx) => rx.recv(),
            None => return Ok(None),
        };
        match recv {
            Ok(res) => res.map(Some),
            Err(_) => {
                self.finish()?;
                Ok(None)
            }
        }
    }

    fn name(&self) -> String {
        "ParallelUnion".into()
    }
}

/// Plain serial union (StorageUnion without threads): drains children in
/// order. Used where determinism matters more than parallelism.
pub struct UnionOp {
    children: Vec<BoxedOperator>,
    current: usize,
}

impl UnionOp {
    pub fn new(children: Vec<BoxedOperator>) -> UnionOp {
        UnionOp {
            children,
            current: 0,
        }
    }
}

impl Operator for UnionOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while self.current < self.children.len() {
            match self.children[self.current].next_batch()? {
                Some(b) => return Ok(Some(b)),
                None => self.current += 1,
            }
        }
        Ok(None)
    }

    fn name(&self) -> String {
        format!("StorageUnion({} inputs)", self.children.len())
    }
}

/// Figure 3's parallel pattern: resegment `input` on `key_columns` into
/// `lanes` hash lanes; run `pipeline(recv)` per lane on a worker thread;
/// union the lane outputs. Because alike key values land in the same lane,
/// per-lane GroupBys "compute complete results".
pub fn parallel_segmented(
    input: BoxedOperator,
    key_columns: Vec<usize>,
    lanes: usize,
    pipeline: impl Fn(BoxedOperator) -> BoxedOperator,
) -> ParallelUnionOp {
    let lanes = lanes.max(1);
    let mut senders = Vec::with_capacity(lanes);
    let mut receivers = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        let (tx, rx) = bounded::<Batch>(4);
        senders.push(tx);
        receivers.push(rx);
    }
    let bytes = Arc::new(AtomicU64::new(0));
    let send = SendOp::new(input, Routing::HashColumns(key_columns), senders, bytes);
    // Router thread feeds the lanes; its result is joined by the union at
    // end of stream, so a failed feed surfaces as `DbResult::Err` instead
    // of a silently truncated result.
    let feeder = std::thread::spawn(move || send.run());
    let children: Vec<BoxedOperator> = receivers
        .into_iter()
        .map(|rx| pipeline(Box::new(RecvOp::new(rx)) as BoxedOperator))
        .collect();
    ParallelUnionOp::with_feeder(children, feeder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AggCall, AggFunc};
    use crate::groupby::HashGroupByOp;
    use crate::memory::MemoryBudget;
    use crate::operator::{collect_rows, ValuesOp};
    use vdb_types::Value;

    fn rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Integer(i % 17), Value::Integer(i)])
            .collect()
    }

    #[test]
    fn send_recv_hash_routing_partitions_keys() {
        let (tx1, rx1) = bounded(64);
        let (tx2, rx2) = bounded(64);
        let bytes = Arc::new(AtomicU64::new(0));
        let send = SendOp::new(
            Box::new(ValuesOp::from_rows(rows(1000))),
            Routing::HashColumns(vec![0]),
            vec![tx1, tx2],
            bytes.clone(),
        );
        let router = std::thread::spawn(move || send.run());
        let a = collect_rows(&mut RecvOp::new(rx1)).unwrap();
        let b = collect_rows(&mut RecvOp::new(rx2)).unwrap();
        assert!(router.join().expect("no panic").is_ok());
        assert_eq!(a.len() + b.len(), 1000);
        assert!(bytes.load(Ordering::Relaxed) > 0, "bytes accounted");
        // No key appears in both lanes.
        let keys_a: std::collections::HashSet<i64> =
            a.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let keys_b: std::collections::HashSet<i64> =
            b.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert!(keys_a.is_disjoint(&keys_b));
    }

    #[test]
    fn broadcast_duplicates_to_all() {
        let (tx1, rx1) = bounded(64);
        let (tx2, rx2) = bounded(64);
        let send = SendOp::new(
            Box::new(ValuesOp::from_rows(rows(100))),
            Routing::Broadcast,
            vec![tx1, tx2],
            Arc::new(AtomicU64::new(0)),
        );
        let router = std::thread::spawn(move || send.run());
        assert_eq!(collect_rows(&mut RecvOp::new(rx1)).unwrap().len(), 100);
        assert_eq!(collect_rows(&mut RecvOp::new(rx2)).unwrap().len(), 100);
        assert!(router.join().expect("no panic").is_ok());
    }

    #[test]
    fn ring_routing_uses_contiguous_ranges() {
        // Ring on column 1 values scaled to the top of the u64 range.
        let data: Vec<Row> = vec![
            vec![Value::Integer(0)],        // ring position 0 → lane 0
            vec![Value::Integer(i64::MIN)], // as u64 = 2^63 → lane 1
            vec![Value::Integer(-1)],       // as u64 = MAX → lane 1
        ];
        let (tx1, rx1) = bounded(8);
        let (tx2, rx2) = bounded(8);
        let send = SendOp::new(
            Box::new(ValuesOp::from_rows(data)),
            Routing::Ring(vdb_types::Expr::col(0, "k")),
            vec![tx1, tx2],
            Arc::new(AtomicU64::new(0)),
        );
        let router = std::thread::spawn(move || send.run());
        let a = collect_rows(&mut RecvOp::new(rx1)).unwrap();
        let b = collect_rows(&mut RecvOp::new(rx2)).unwrap();
        assert!(router.join().expect("no panic").is_ok());
        assert_eq!(a.len(), 1, "low half: only 0");
        assert_eq!(b.len(), 2, "high half: 2^63 and MAX");
    }

    #[test]
    fn shutdown_flag_unblocks_router_stuck_on_full_channel() {
        // A one-slot channel whose consumer never drains: the dead-node
        // scenario. Without the flag the router would block in send()
        // forever; with it, the router drains and joins with a retryable
        // Unavailable error.
        let (tx, rx) = bounded(1);
        let flag: ShutdownFlag = Arc::new(AtomicBool::new(false));
        let send = SendOp::new(
            Box::new(ValuesOp::from_rows(rows(5000))),
            Routing::Broadcast,
            vec![tx],
            Arc::new(AtomicU64::new(0)),
        )
        .with_shutdown(flag.clone());
        let router = std::thread::spawn(move || send.run());
        // Let the router wedge on the full channel, then declare the
        // downstream dead.
        std::thread::sleep(std::time::Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        let got = router.join().expect("router joins instead of hanging");
        match got {
            Err(e @ DbError::Unavailable(_)) => {
                assert!(e.is_retryable(), "exchange abort must be retryable: {e}")
            }
            other => panic!("expected Unavailable from aborted exchange, got {other:?}"),
        }
        drop(rx);
    }

    #[test]
    fn shutdown_flag_clear_leaves_routing_intact() {
        let (tx1, rx1) = bounded(64);
        let (tx2, rx2) = bounded(64);
        let send = SendOp::new(
            Box::new(ValuesOp::from_rows(rows(1000))),
            Routing::HashColumns(vec![0]),
            vec![tx1, tx2],
            Arc::new(AtomicU64::new(0)),
        )
        .with_shutdown(Arc::new(AtomicBool::new(false)));
        let router = std::thread::spawn(move || send.run());
        let a = collect_rows(&mut RecvOp::new(rx1)).unwrap();
        let b = collect_rows(&mut RecvOp::new(rx2)).unwrap();
        assert!(router.join().expect("no panic").is_ok());
        assert_eq!(a.len() + b.len(), 1000);
    }

    #[test]
    fn merging_recv_retains_sortedness() {
        let (tx1, rx1) = bounded(8);
        let (tx2, rx2) = bounded(8);
        tx1.send(Batch::from_rows(
            [1i64, 3, 5]
                .iter()
                .map(|&i| vec![Value::Integer(i)])
                .collect(),
        ))
        .unwrap();
        tx2.send(Batch::from_rows(
            [2i64, 4, 6]
                .iter()
                .map(|&i| vec![Value::Integer(i)])
                .collect(),
        ))
        .unwrap();
        drop((tx1, tx2));
        let mut op = MergingRecvOp::new(vec![rx1, rx2], vec![SortKey::asc(0)]);
        let got = collect_rows(&mut op).unwrap();
        let vals: Vec<i64> = got.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn parallel_union_collects_all_children() {
        let children: Vec<BoxedOperator> = (0..4)
            .map(|_| Box::new(ValuesOp::from_rows(rows(500))) as BoxedOperator)
            .collect();
        let mut op = ParallelUnionOp::new(children);
        assert_eq!(collect_rows(&mut op).unwrap().len(), 2000);
    }

    #[test]
    fn parallel_union_propagates_errors() {
        struct FailOp;
        impl Operator for FailOp {
            fn next_batch(&mut self) -> DbResult<Option<Batch>> {
                Err(DbError::Execution("boom".into()))
            }
            fn name(&self) -> String {
                "Fail".into()
            }
        }
        let mut op = ParallelUnionOp::new(vec![Box::new(FailOp)]);
        let mut saw_err = false;
        loop {
            match op.next_batch() {
                Err(_) => {
                    saw_err = true;
                    break;
                }
                Ok(None) => break,
                Ok(Some(_)) => {}
            }
        }
        assert!(saw_err);
    }

    #[test]
    fn failed_router_surfaces_as_error_not_truncation() {
        // Ring routing over a varchar column fails inside the router
        // thread; the union must report Err, not a short result.
        let rows: Vec<Row> = (0..100)
            .map(|i| vec![Value::Varchar(format!("v{i}"))])
            .collect();
        let (tx, rx) = bounded(4);
        let send = SendOp::new(
            Box::new(ValuesOp::from_rows(rows)),
            Routing::Ring(vdb_types::Expr::col(0, "k")),
            vec![tx],
            Arc::new(AtomicU64::new(0)),
        );
        let feeder = std::thread::spawn(move || send.run());
        let mut op =
            ParallelUnionOp::with_feeder(vec![Box::new(RecvOp::new(rx)) as BoxedOperator], feeder);
        let mut saw_err = false;
        loop {
            match op.next_batch() {
                Err(e) => {
                    saw_err = true;
                    assert!(e.to_string().contains("integral"), "{e}");
                    break;
                }
                Ok(None) => break,
                Ok(Some(_)) => {}
            }
        }
        assert!(saw_err, "router failure must propagate");
    }

    #[test]
    fn figure3_parallel_groupby_computes_complete_groups() {
        // Serial reference.
        let mut reference = HashGroupByOp::new(
            Box::new(ValuesOp::from_rows(rows(10_000))),
            vec![0],
            vec![
                AggCall::new(AggFunc::CountStar, 0, "cnt"),
                AggCall::new(AggFunc::Sum, 1, "sum"),
            ],
            MemoryBudget::unlimited(),
        );
        let expected = collect_rows(&mut reference).unwrap();
        // Parallel: resegment by group key across 4 lanes, GroupBy per lane.
        let mut par = parallel_segmented(
            Box::new(ValuesOp::from_rows(rows(10_000))),
            vec![0],
            4,
            |lane| {
                Box::new(HashGroupByOp::new(
                    lane,
                    vec![0],
                    vec![
                        AggCall::new(AggFunc::CountStar, 0, "cnt"),
                        AggCall::new(AggFunc::Sum, 1, "sum"),
                    ],
                    MemoryBudget::unlimited(),
                ))
            },
        );
        let mut got = collect_rows(&mut par).unwrap();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn serial_union_preserves_child_order() {
        let mut op = UnionOp::new(vec![
            Box::new(ValuesOp::from_rows(vec![vec![Value::Integer(1)]])),
            Box::new(ValuesOp::from_rows(vec![vec![Value::Integer(2)]])),
        ]);
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got, vec![vec![Value::Integer(1)], vec![Value::Integer(2)]]);
    }
}
