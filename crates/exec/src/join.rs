//! Join operators (§6.1 #3).
//!
//! "Vertica supports both hash join and merge join algorithms which are
//! capable of externalizing if necessary. All flavors of INNER, LEFT OUTER,
//! RIGHT OUTER, FULL OUTER, SEMI, and ANTI joins are supported."
//!
//! [`HashJoinOp`] builds on the right input. After the build it publishes
//! the key set to an attached [`SipFilter`] so the probe-side Scan can drop
//! non-matching rows early (§6.1 SIP). If the build side exceeds its memory
//! budget, the operator "will perform a sort-merge join instead" — both
//! sides are external-sorted on the keys and merged.
//!
//! [`MergeJoinOp`] joins two inputs already sorted on the join keys (the
//! projection-sort-order fast path the optimizer prefers for co-sorted
//! projections).

use crate::batch::{Batch, ColumnSlice, BATCH_SIZE};
use crate::memory::MemoryBudget;
use crate::operator::{BoxedOperator, Operator, ValuesOp};
use crate::sip::SipFilter;
use crate::sort::SortOp;
use crate::vector::{TypedVector, VectorData};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use vdb_types::schema::SortKey;
use vdb_types::{DbResult, Row, Value};

/// Join flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinType {
    Inner,
    LeftOuter,
    RightOuter,
    FullOuter,
    Semi,
    Anti,
}

impl JoinType {
    pub fn name(self) -> &'static str {
        match self {
            JoinType::Inner => "INNER",
            JoinType::LeftOuter => "LEFT OUTER",
            JoinType::RightOuter => "RIGHT OUTER",
            JoinType::FullOuter => "FULL OUTER",
            JoinType::Semi => "SEMI",
            JoinType::Anti => "ANTI",
        }
    }

    /// Does the output include right-side columns?
    pub fn emits_right_columns(self) -> bool {
        !matches!(self, JoinType::Semi | JoinType::Anti)
    }
}

/// Join key of `row` over `cols`, or `None` when any key column is NULL
/// (SQL: NULL keys never match). Shared with the parallel hash join.
pub(crate) fn key_of(row: &[Value], cols: &[usize]) -> Option<Vec<Value>> {
    let mut key = Vec::with_capacity(cols.len());
    for &c in cols {
        let v = &row[c];
        if v.is_null() {
            return None; // SQL: NULL keys never match
        }
        key.push(v.clone());
    }
    Some(key)
}

/// Build-side hash table, specialized for the dominant single-column-key
/// case so probing never allocates a `Vec<Value>` per row.
enum BuildTable {
    One(HashMap<Value, (Vec<Row>, bool)>),
    Many(HashMap<Vec<Value>, (Vec<Row>, bool)>),
}

impl BuildTable {
    fn new(key_arity: usize) -> BuildTable {
        if key_arity == 1 {
            BuildTable::One(HashMap::new())
        } else {
            BuildTable::Many(HashMap::new())
        }
    }

    fn insert_row(&mut self, key: Vec<Value>, row: Row) {
        match self {
            BuildTable::One(m) => {
                let [k] = <[Value; 1]>::try_from(key).expect("single key");
                m.entry(k)
                    .or_insert_with(|| (Vec::new(), false))
                    .0
                    .push(row);
            }
            BuildTable::Many(m) => {
                m.entry(key)
                    .or_insert_with(|| (Vec::new(), false))
                    .0
                    .push(row);
            }
        }
    }

    /// Probe a single-column key (caller has already rejected NULLs).
    fn probe_one_mut(&mut self, v: &Value) -> Option<&mut (Vec<Row>, bool)> {
        match self {
            BuildTable::One(m) => m.get_mut(v),
            BuildTable::Many(_) => unreachable!("single-column table"),
        }
    }

    /// Probe a multi-column key (caller has already rejected NULLs).
    fn probe_many_mut(&mut self, key: &[Value]) -> Option<&mut (Vec<Row>, bool)> {
        match self {
            BuildTable::Many(m) => m.get_mut(key),
            BuildTable::One(_) => unreachable!("multi-column table"),
        }
    }

    fn drain_rows(&mut self) -> Vec<(Vec<Row>, bool)> {
        match self {
            BuildTable::One(m) => m.drain().map(|(_, v)| v).collect(),
            BuildTable::Many(m) => m.drain().map(|(_, v)| v).collect(),
        }
    }

    fn publish_sip(&self, sip: &SipFilter) {
        let keys = match self {
            BuildTable::One(m) => m
                .keys()
                .map(|k| SipFilter::key_hash(std::slice::from_ref(&k)))
                .collect(),
            BuildTable::Many(m) => m
                .keys()
                .map(|k| {
                    let refs: Vec<&Value> = k.iter().collect();
                    SipFilter::key_hash(&refs)
                })
                .collect(),
        };
        sip.publish(keys);
    }
}

/// Hash join: builds on the right, probes with the left.
pub struct HashJoinOp {
    left: Option<BoxedOperator>,
    right: Option<BoxedOperator>,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    join_type: JoinType,
    budget: MemoryBudget,
    sip: Option<Arc<SipFilter>>,
    /// Build table: key → (rows, matched flag).
    table: BuildTable,
    /// NULL-keyed build rows retained for RIGHT/FULL OUTER emission.
    null_build_rows: Vec<Row>,
    right_arity: usize,
    left_arity: usize,
    /// Assembled output batches awaiting emission.
    ready: VecDeque<Batch>,
    state: JoinState,
    /// Filled when the build overflowed and we switched algorithms.
    fallback: Option<BoxedOperator>,
    switched_to_merge: bool,
}

enum JoinState {
    Building,
    Probing,
    EmittingUnmatchedBuild(std::vec::IntoIter<Row>),
    Done,
}

impl HashJoinOp {
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
        budget: MemoryBudget,
        sip: Option<Arc<SipFilter>>,
    ) -> HashJoinOp {
        assert_eq!(left_keys.len(), right_keys.len());
        let key_arity = left_keys.len();
        HashJoinOp {
            left: Some(left),
            right: Some(right),
            left_keys,
            right_keys,
            join_type,
            budget,
            sip,
            table: BuildTable::new(key_arity),
            null_build_rows: Vec::new(),
            right_arity: 0,
            left_arity: 0,
            ready: VecDeque::new(),
            state: JoinState::Building,
            fallback: None,
            switched_to_merge: false,
        }
    }

    /// Did the runtime switch to sort-merge (§6.1 algorithm switching)?
    pub fn switched_to_merge(&self) -> bool {
        self.switched_to_merge
    }

    fn build(&mut self) -> DbResult<()> {
        let mut right = self.right.take().expect("build called once");
        let mut bytes = 0usize;
        let mut overflow: Vec<Row> = Vec::new();
        while let Some(batch) = right.next_batch()? {
            self.right_arity = batch.arity();
            bytes += batch.approx_bytes();
            if self.budget.exceeded_by(bytes) {
                // Abandon hashing: collect the remainder and fall back to
                // sort-merge on both (fully materialized) sides.
                for (rows, _) in self.table.drain_rows() {
                    overflow.extend(rows);
                }
                overflow.extend(batch.into_rows());
                while let Some(b) = right.next_batch()? {
                    overflow.extend(b.into_rows());
                }
                self.switched_to_merge = true;
                return self.build_fallback(overflow);
            }
            for row in batch.into_rows() {
                if let Some(key) = key_of(&row, &self.right_keys) {
                    self.table.insert_row(key, row);
                } else if matches!(self.join_type, JoinType::RightOuter | JoinType::FullOuter) {
                    // NULL-keyed right rows still appear in right/full
                    // outer (they can never match, but must be emitted).
                    self.null_build_rows.push(row);
                }
            }
        }
        // Publish SIP keys now that the build side is complete.
        if let Some(sip) = &self.sip {
            self.table.publish_sip(sip);
        }
        self.state = JoinState::Probing;
        Ok(())
    }

    /// Sort-merge fallback: external-sort both sides by key columns, then
    /// run the generic sorted-merge with identical semantics. The drained
    /// build rows are *moved* into the fallback source (`ValuesOp` batches
    /// them without cloning) — the build side already blew its memory
    /// budget, so duplicating it here would double the peak.
    fn build_fallback(&mut self, right_rows: Vec<Row>) -> DbResult<()> {
        let left = self.left.take().expect("fallback before probe");
        let right_op: BoxedOperator = Box::new(ValuesOp::from_rows(right_rows));
        let left_sorted = SortOp::new(
            left,
            self.left_keys.iter().map(|&c| SortKey::asc(c)).collect(),
            self.budget,
        );
        let right_sorted = SortOp::new(
            right_op,
            self.right_keys.iter().map(|&c| SortKey::asc(c)).collect(),
            self.budget,
        );
        self.fallback = Some(Box::new(MergeJoinOp::new(
            Box::new(left_sorted),
            Box::new(right_sorted),
            self.left_keys.clone(),
            self.right_keys.clone(),
            self.join_type,
        )));
        self.state = JoinState::Probing;
        Ok(())
    }

    /// Probe one batch columnar: keys come from column accessors (one
    /// `Value` per row, never a pivoted row); SEMI/ANTI refine the batch
    /// with a match selection (zero-copy, representation preserved); the
    /// emitting flavors gather probe-side columns at the match positions
    /// and transpose the matched build rows — no `rows()`/`from_rows`
    /// pivot anywhere on the probe path.
    fn probe_batch(&mut self, batch: Batch) -> DbResult<()> {
        self.left_arity = batch.arity();
        let n = batch.len();
        // Dictionary-coded probe keys test the build table once per
        // *distinct* value; the per-row loop then indexes the memoized
        // verdict by code and never hashes a code with no build match.
        let prep = ProbeKeys::new(&self.table, &self.left_keys, &batch);
        if matches!(self.join_type, JoinType::Semi | JoinType::Anti) {
            let semi = self.join_type == JoinType::Semi;
            let mut mask = Vec::with_capacity(n);
            let mut any = false;
            for li in 0..n {
                let pi = batch.physical_index(li);
                let keep = prep
                    .hit(&mut self.table, &self.left_keys, &batch, pi)
                    .is_some()
                    == semi;
                any |= keep;
                mask.push(keep);
            }
            if any {
                self.ready.push_back(batch.into_filtered(&mask));
            }
            return Ok(());
        }
        // Emitting flavors: collect (probe physical index, build row) match
        // pairs in probe order, then assemble columns via gather.
        let mut probe_idx: Vec<u32> = Vec::new();
        let mut build_side: Vec<Option<Row>> = Vec::new();
        for li in 0..n {
            let pi = batch.physical_index(li);
            match (
                self.join_type,
                prep.hit(&mut self.table, &self.left_keys, &batch, pi),
            ) {
                (_, Some((matches, matched))) => {
                    if matches!(self.join_type, JoinType::RightOuter | JoinType::FullOuter) {
                        *matched = true;
                    }
                    for m in matches.iter() {
                        probe_idx.push(pi as u32);
                        build_side.push(Some(m.clone()));
                    }
                }
                (JoinType::LeftOuter | JoinType::FullOuter, None) => {
                    probe_idx.push(pi as u32);
                    build_side.push(None);
                }
                _ => {}
            }
        }
        if probe_idx.is_empty() {
            return Ok(());
        }
        self.ready.push_back(crate::batch::gather_join_output(
            &batch,
            &probe_idx,
            build_side,
            self.right_arity,
        ));
        Ok(())
    }
}

/// Per-batch probe-key preparation: dictionary-coded single-column keys
/// materialize each distinct value once and remember whether the build
/// table contains it, so the per-row probe is a code-indexed lookup (no
/// `Value` construction, and no hash at all for non-matching codes).
enum ProbeKeys<'a> {
    DictOne {
        tv: &'a TypedVector,
        codes: &'a [u32],
        /// Indexed by dict code; `Some` only when the build table has it.
        keys: Vec<Option<Value>>,
    },
    Generic,
}

impl<'a> ProbeKeys<'a> {
    fn new(table: &BuildTable, keys: &[usize], batch: &'a Batch) -> ProbeKeys<'a> {
        if let ([c], BuildTable::One(m)) = (keys, table) {
            if let ColumnSlice::Typed(tv) = &batch.columns[*c] {
                if let VectorData::Dict { dict, codes } = tv.data() {
                    let keys = dict
                        .entries()
                        .iter()
                        .map(|s| {
                            let v = Value::Varchar(s.clone());
                            m.contains_key(&v).then_some(v)
                        })
                        .collect();
                    return ProbeKeys::DictOne { tv, codes, keys };
                }
            }
        }
        ProbeKeys::Generic
    }

    /// Build-table hit for the probe row at physical index `pi`.
    fn hit<'t>(
        &self,
        table: &'t mut BuildTable,
        key_cols: &[usize],
        batch: &Batch,
        pi: usize,
    ) -> Option<&'t mut (Vec<Row>, bool)> {
        match self {
            ProbeKeys::DictOne { tv, codes, keys } => {
                if !tv.is_valid(pi) {
                    return None; // NULL keys never match
                }
                match &keys[codes[pi] as usize] {
                    Some(v) => table.probe_one_mut(v),
                    None => None,
                }
            }
            ProbeKeys::Generic => probe_hit(table, key_cols, batch, pi),
        }
    }
}

/// Build-table hit for the probe row at physical index `pi`, with NULL
/// keys never matching. Key values come from column accessors — one
/// `Value` per key column, never a pivoted row.
fn probe_hit<'t>(
    table: &'t mut BuildTable,
    keys: &[usize],
    batch: &Batch,
    pi: usize,
) -> Option<&'t mut (Vec<Row>, bool)> {
    if let [c] = keys {
        let v = batch.columns[*c].value_at(pi);
        if v.is_null() {
            return None;
        }
        return table.probe_one_mut(&v);
    }
    let key: Option<Vec<Value>> = keys
        .iter()
        .map(|&c| {
            let v = batch.columns[c].value_at(pi);
            (!v.is_null()).then_some(v)
        })
        .collect();
    key.and_then(|k| table.probe_many_mut(&k))
}

impl Operator for HashJoinOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if matches!(self.state, JoinState::Building) {
            self.build()?;
        }
        if let Some(fb) = &mut self.fallback {
            return fb.next_batch();
        }
        loop {
            if let Some(batch) = self.ready.pop_front() {
                return Ok(Some(batch));
            }
            match &mut self.state {
                JoinState::Probing => {
                    let left = self.left.as_mut().expect("probe side");
                    match left.next_batch()? {
                        Some(batch) => self.probe_batch(batch)?,
                        None => {
                            // Right/full outer: emit unmatched build rows.
                            if matches!(self.join_type, JoinType::RightOuter | JoinType::FullOuter)
                            {
                                let arity = self.left_arity.max(self.left_keys.len());
                                let mut unmatched = Vec::new();
                                for (rows, matched) in self.table.drain_rows() {
                                    if !matched {
                                        for r in rows {
                                            let mut out = vec![Value::Null; arity];
                                            out.extend(r);
                                            unmatched.push(out);
                                        }
                                    }
                                }
                                for r in self.null_build_rows.drain(..) {
                                    let mut out = vec![Value::Null; arity];
                                    out.extend(r);
                                    unmatched.push(out);
                                }
                                self.state =
                                    JoinState::EmittingUnmatchedBuild(unmatched.into_iter());
                            } else {
                                self.state = JoinState::Done;
                            }
                        }
                    }
                }
                JoinState::EmittingUnmatchedBuild(iter) => {
                    let rows: Vec<Row> = iter.by_ref().take(BATCH_SIZE).collect();
                    if rows.is_empty() {
                        self.state = JoinState::Done;
                    } else {
                        return Ok(Some(crate::batch::typed_batch_from_rows(rows)));
                    }
                }
                JoinState::Done => return Ok(None),
                JoinState::Building => unreachable!(),
            }
        }
    }

    fn name(&self) -> String {
        format!(
            "HashJoin({}{})",
            self.join_type.name(),
            if self.sip.is_some() { ", SIP" } else { "" }
        )
    }
}

/// Merge join over inputs sorted ascending on their join keys. Handles all
/// flavors; duplicate keys produce the full cross product per key group.
pub struct MergeJoinOp {
    left: BoxedOperator,
    right: BoxedOperator,
    left_keys: Vec<usize>,
    right_keys: Vec<usize>,
    join_type: JoinType,
    left_buf: Vec<Row>,
    right_buf: Vec<Row>,
    left_done: bool,
    right_done: bool,
    left_pos: usize,
    right_pos: usize,
    left_arity: usize,
    right_arity: usize,
    pending: Vec<Row>,
    done: bool,
}

impl MergeJoinOp {
    pub fn new(
        left: BoxedOperator,
        right: BoxedOperator,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        join_type: JoinType,
    ) -> MergeJoinOp {
        MergeJoinOp {
            left,
            right,
            left_keys,
            right_keys,
            join_type,
            left_buf: Vec::new(),
            right_buf: Vec::new(),
            left_done: false,
            right_done: false,
            left_pos: 0,
            right_pos: 0,
            left_arity: 0,
            right_arity: 0,
            pending: Vec::new(),
            done: false,
        }
    }

    fn fill_left(&mut self) -> DbResult<bool> {
        while self.left_pos >= self.left_buf.len() && !self.left_done {
            match self.left.next_batch()? {
                Some(b) => {
                    self.left_arity = b.arity();
                    self.left_buf = b.rows();
                    self.left_pos = 0;
                }
                None => self.left_done = true,
            }
        }
        Ok(self.left_pos < self.left_buf.len())
    }

    fn fill_right(&mut self) -> DbResult<bool> {
        while self.right_pos >= self.right_buf.len() && !self.right_done {
            match self.right.next_batch()? {
                Some(b) => {
                    self.right_arity = b.arity();
                    self.right_buf = b.rows();
                    self.right_pos = 0;
                }
                None => self.right_done = true,
            }
        }
        Ok(self.right_pos < self.right_buf.len())
    }

    /// Collect the group of consecutive rows with the current key.
    fn take_left_group(&mut self) -> DbResult<Vec<Row>> {
        let key: Vec<Value> = self
            .left_keys
            .iter()
            .map(|&c| self.left_buf[self.left_pos][c].clone())
            .collect();
        let mut group = Vec::new();
        loop {
            if !self.fill_left()? {
                break;
            }
            let row = &self.left_buf[self.left_pos];
            let rkey: Vec<Value> = self.left_keys.iter().map(|&c| row[c].clone()).collect();
            if rkey != key {
                break;
            }
            group.push(row.clone());
            self.left_pos += 1;
        }
        Ok(group)
    }

    fn take_right_group(&mut self) -> DbResult<Vec<Row>> {
        let key: Vec<Value> = self
            .right_keys
            .iter()
            .map(|&c| self.right_buf[self.right_pos][c].clone())
            .collect();
        let mut group = Vec::new();
        loop {
            if !self.fill_right()? {
                break;
            }
            let row = &self.right_buf[self.right_pos];
            let rkey: Vec<Value> = self.right_keys.iter().map(|&c| row[c].clone()).collect();
            if rkey != key {
                break;
            }
            group.push(row.clone());
            self.right_pos += 1;
        }
        Ok(group)
    }

    fn emit_left_unmatched(&mut self, rows: Vec<Row>) {
        match self.join_type {
            JoinType::LeftOuter | JoinType::FullOuter => {
                for mut r in rows {
                    r.extend(vec![Value::Null; self.right_arity]);
                    self.pending.push(r);
                }
            }
            JoinType::Anti => self.pending.extend(rows),
            _ => {}
        }
    }

    fn emit_right_unmatched(&mut self, rows: Vec<Row>) {
        if matches!(self.join_type, JoinType::RightOuter | JoinType::FullOuter) {
            for r in rows {
                let mut out = vec![Value::Null; self.left_arity];
                out.extend(r);
                self.pending.push(out);
            }
        }
    }

    fn emit_matched(&mut self, left: Vec<Row>, right: Vec<Row>) {
        match self.join_type {
            JoinType::Semi => self.pending.extend(left),
            JoinType::Anti => {}
            _ => {
                for l in &left {
                    for r in &right {
                        let mut out = l.clone();
                        out.extend(r.iter().cloned());
                        self.pending.push(out);
                    }
                }
            }
        }
    }

    fn advance(&mut self) -> DbResult<()> {
        loop {
            if !self.pending.is_empty() {
                return Ok(());
            }
            let has_left = self.fill_left()?;
            let has_right = self.fill_right()?;
            match (has_left, has_right) {
                (false, false) => {
                    self.done = true;
                    return Ok(());
                }
                (true, false) => {
                    let group = self.take_left_group()?;
                    self.emit_left_unmatched(group);
                    if self.pending.is_empty() {
                        continue;
                    }
                    return Ok(());
                }
                (false, true) => {
                    let group = self.take_right_group()?;
                    self.emit_right_unmatched(group);
                    if self.pending.is_empty() {
                        continue;
                    }
                    return Ok(());
                }
                (true, true) => {
                    let lkey: Vec<&Value> = self
                        .left_keys
                        .iter()
                        .map(|&c| &self.left_buf[self.left_pos][c])
                        .collect();
                    let rkey: Vec<&Value> = self
                        .right_keys
                        .iter()
                        .map(|&c| &self.right_buf[self.right_pos][c])
                        .collect();
                    let lnull = lkey.iter().any(|v| v.is_null());
                    let rnull = rkey.iter().any(|v| v.is_null());
                    let ord = lkey.cmp(&rkey);
                    // NULL keys sort first and never match.
                    if lnull || ord == std::cmp::Ordering::Less {
                        let group = self.take_left_group()?;
                        self.emit_left_unmatched(group);
                    } else if rnull || ord == std::cmp::Ordering::Greater {
                        let group = self.take_right_group()?;
                        self.emit_right_unmatched(group);
                    } else {
                        let l = self.take_left_group()?;
                        let r = self.take_right_group()?;
                        self.emit_matched(l, r);
                    }
                    if self.pending.is_empty() {
                        continue;
                    }
                    return Ok(());
                }
            }
        }
    }
}

impl Operator for MergeJoinOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        loop {
            if !self.pending.is_empty() {
                let take = self.pending.len().min(BATCH_SIZE * 4);
                let rows: Vec<Row> = self.pending.drain(..take).collect();
                return Ok(Some(Batch::from_rows(rows)));
            }
            if self.done {
                return Ok(None);
            }
            self.advance()?;
        }
    }

    fn name(&self) -> String {
        format!("MergeJoin({})", self.join_type.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_rows;

    fn left_rows() -> Vec<Row> {
        vec![
            vec![Value::Integer(1), Value::Varchar("l1".into())],
            vec![Value::Integer(2), Value::Varchar("l2".into())],
            vec![Value::Integer(2), Value::Varchar("l2b".into())],
            vec![Value::Integer(4), Value::Varchar("l4".into())],
            vec![Value::Null, Value::Varchar("lnull".into())],
        ]
    }

    fn right_rows() -> Vec<Row> {
        vec![
            vec![Value::Integer(2), Value::Varchar("r2".into())],
            vec![Value::Integer(3), Value::Varchar("r3".into())],
            vec![Value::Integer(4), Value::Varchar("r4".into())],
            vec![Value::Integer(4), Value::Varchar("r4b".into())],
            vec![Value::Null, Value::Varchar("rnull".into())],
        ]
    }

    fn hash_join(jt: JoinType) -> Vec<Row> {
        let mut op = HashJoinOp::new(
            Box::new(ValuesOp::from_rows(left_rows())),
            Box::new(ValuesOp::from_rows(right_rows())),
            vec![0],
            vec![0],
            jt,
            MemoryBudget::unlimited(),
            None,
        );
        let mut rows = collect_rows(&mut op).unwrap();
        rows.sort();
        rows
    }

    fn merge_join(jt: JoinType) -> Vec<Row> {
        let mut l = left_rows();
        let mut r = right_rows();
        l.sort();
        r.sort();
        let mut op = MergeJoinOp::new(
            Box::new(ValuesOp::from_rows(l)),
            Box::new(ValuesOp::from_rows(r)),
            vec![0],
            vec![0],
            jt,
        );
        let mut rows = collect_rows(&mut op).unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn dict_coded_probe_matches_plain_probe() {
        // Dictionary-coded probe keys (with NULLs and a selection) must
        // join identically to the same keys as plain values, across every
        // flavor the probe loop serves.
        use crate::vector::SelectionVector;
        let n = 2000usize;
        let keys: Vec<Value> = (0..n)
            .map(|i| {
                if i % 13 == 0 {
                    Value::Null
                } else {
                    Value::Varchar(format!("k{}", i % 11))
                }
            })
            .collect();
        let payload: Vec<Value> = (0..n).map(|i| Value::Integer(i as i64)).collect();
        let sel = SelectionVector::new((0..n as u32).filter(|i| i % 2 == 0).collect());
        let build_rows: Vec<Row> = (0..5)
            .map(|i| vec![Value::Varchar(format!("k{i}")), Value::Integer(i)])
            .collect();
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let dict_batch = Batch::new(vec![
                ColumnSlice::Typed(TypedVector::from_values(&keys).unwrap()),
                ColumnSlice::Typed(TypedVector::from_values(&payload).unwrap()),
            ])
            .with_selection(sel.clone());
            assert!(matches!(
                &dict_batch.columns[0],
                ColumnSlice::Typed(tv) if matches!(tv.data(), VectorData::Dict { .. })
            ));
            let plain_batch = Batch::new(vec![
                ColumnSlice::Plain(keys.clone()),
                ColumnSlice::Plain(payload.clone()),
            ])
            .with_selection(sel.clone());
            let mut fast = HashJoinOp::new(
                Box::new(ValuesOp::new(vec![dict_batch])),
                Box::new(ValuesOp::from_rows(build_rows.clone())),
                vec![0],
                vec![0],
                jt,
                MemoryBudget::unlimited(),
                None,
            );
            let mut reference = HashJoinOp::new(
                Box::new(ValuesOp::new(vec![plain_batch])),
                Box::new(ValuesOp::from_rows(build_rows.clone())),
                vec![0],
                vec![0],
                jt,
                MemoryBudget::unlimited(),
                None,
            );
            let mut f = collect_rows(&mut fast).unwrap();
            let mut r = collect_rows(&mut reference).unwrap();
            f.sort();
            r.sort();
            assert_eq!(f, r, "join type {jt:?}");
        }
    }

    #[test]
    fn inner_join_counts() {
        let rows = hash_join(JoinType::Inner);
        // keys 2 (2 left × 1 right) + 4 (1 × 2) = 4 rows; NULLs never match.
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.len() == 4));
    }

    #[test]
    fn left_outer_keeps_unmatched_left() {
        let rows = hash_join(JoinType::LeftOuter);
        // 4 inner + l1 + lnull with null right sides.
        assert_eq!(rows.len(), 6);
        assert!(rows
            .iter()
            .any(|r| r[1] == Value::Varchar("l1".into()) && r[2].is_null()));
    }

    #[test]
    fn right_outer_keeps_unmatched_right() {
        let rows = hash_join(JoinType::RightOuter);
        // 4 inner + r3 + rnull.
        assert_eq!(rows.len(), 6);
        assert!(rows
            .iter()
            .any(|r| r[0].is_null() && r[3] == Value::Varchar("r3".into())));
    }

    #[test]
    fn full_outer_keeps_both() {
        let rows = hash_join(JoinType::FullOuter);
        // 4 inner + 2 left-unmatched + 2 right-unmatched.
        assert_eq!(rows.len(), 8);
    }

    #[test]
    fn semi_and_anti() {
        let semi = hash_join(JoinType::Semi);
        assert_eq!(semi.len(), 3, "l2, l2b, l4");
        assert!(semi.iter().all(|r| r.len() == 2), "left columns only");
        let anti = hash_join(JoinType::Anti);
        assert_eq!(anti.len(), 2, "l1 and lnull");
    }

    #[test]
    fn merge_join_matches_hash_join_all_flavors() {
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            assert_eq!(hash_join(jt), merge_join(jt), "flavor {}", jt.name());
        }
    }

    #[test]
    fn sip_published_after_build() {
        let sip = SipFilter::new();
        let mut op = HashJoinOp::new(
            Box::new(ValuesOp::from_rows(left_rows())),
            Box::new(ValuesOp::from_rows(right_rows())),
            vec![0],
            vec![0],
            JoinType::Inner,
            MemoryBudget::unlimited(),
            Some(sip.clone()),
        );
        assert!(!sip.is_ready());
        let _ = collect_rows(&mut op).unwrap();
        assert!(sip.is_ready());
        assert!(sip.might_contain(&[&Value::Integer(2)]));
        assert!(!sip.might_contain(&[&Value::Integer(99)]));
    }

    #[test]
    fn memory_overflow_switches_to_sort_merge() {
        let big_right: Vec<Row> = (0..10_000)
            .map(|i| vec![Value::Integer(i % 100), Value::Integer(i)])
            .collect();
        let left: Vec<Row> = (0..100).map(|i| vec![Value::Integer(i)]).collect();
        let mut op = HashJoinOp::new(
            Box::new(ValuesOp::from_rows(left)),
            Box::new(ValuesOp::from_rows(big_right)),
            vec![0],
            vec![0],
            JoinType::Inner,
            MemoryBudget::new(8 * 1024),
            None,
        );
        let rows = collect_rows(&mut op).unwrap();
        assert!(op.switched_to_merge(), "tiny budget must trigger fallback");
        assert_eq!(rows.len(), 10_000, "every right row matches one left key");
    }

    /// Regression test for the sort-merge fallback over *unsorted* inputs:
    /// the overflowed build rows are moved (not cloned) into the fallback's
    /// `ValuesOp`, and the external sort + merge must still produce the
    /// same multiset of rows as the in-memory hash join, for inner and
    /// outer flavors, with NULL keys in play.
    #[test]
    fn sort_merge_fallback_matches_hash_join_on_unsorted_inputs() {
        // Deliberately unsorted, with duplicate and NULL keys.
        let mk_left: Vec<Row> = (0..600)
            .map(|i: i64| {
                let k = (i * 7919) % 37;
                vec![
                    if k == 5 {
                        Value::Null
                    } else {
                        Value::Integer(k)
                    },
                    Value::Integer(i),
                ]
            })
            .collect();
        let mk_right: Vec<Row> = (0..900)
            .map(|i: i64| {
                let k = (i * 104_729) % 41;
                vec![
                    if k == 7 {
                        Value::Null
                    } else {
                        Value::Integer(k)
                    },
                    Value::Integer(-i),
                ]
            })
            .collect();
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::RightOuter,
            JoinType::FullOuter,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let run = |budget: MemoryBudget| {
                let mut op = HashJoinOp::new(
                    Box::new(ValuesOp::from_rows(mk_left.clone())),
                    Box::new(ValuesOp::from_rows(mk_right.clone())),
                    vec![0],
                    vec![0],
                    jt,
                    budget,
                    None,
                );
                let mut rows = collect_rows(&mut op).unwrap();
                let switched = op.switched_to_merge();
                rows.sort();
                (rows, switched)
            };
            let (expected, s1) = run(MemoryBudget::unlimited());
            let (got, s2) = run(MemoryBudget::new(2 * 1024));
            assert!(!s1, "unlimited budget must not fall back");
            assert!(s2, "tiny budget must fall back to sort-merge");
            assert_eq!(got, expected, "flavor {}", jt.name());
        }
    }

    #[test]
    fn multi_column_keys() {
        let l = vec![
            vec![
                Value::Integer(1),
                Value::Integer(10),
                Value::Varchar("a".into()),
            ],
            vec![
                Value::Integer(1),
                Value::Integer(20),
                Value::Varchar("b".into()),
            ],
        ];
        let r = vec![vec![
            Value::Integer(1),
            Value::Integer(10),
            Value::Varchar("x".into()),
        ]];
        let mut op = HashJoinOp::new(
            Box::new(ValuesOp::from_rows(l)),
            Box::new(ValuesOp::from_rows(r)),
            vec![0, 1],
            vec![0, 1],
            JoinType::Inner,
            MemoryBudget::unlimited(),
            None,
        );
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][2], Value::Varchar("a".into()));
    }
}
