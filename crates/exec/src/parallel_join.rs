//! Morsel-parallel hash join over ROS containers (§5 + §6.1).
//!
//! The paper's join performance comes from parallel partitioned hash joins
//! tightly coupled with sideways information passing into the scan. This
//! module extends the PR 3 morsel framework ([`crate::parallel`]) to joins:
//!
//! ```text
//!   build side (right)                      probe side (left)
//!   ┌──── morsel queue ────┐                ┌──── morsel queue ────┐
//!   │ ros1 │ ros2 │ … │WOS │                │ ros1 │ ros2 │ … │WOS │
//!   └──┬──────┬───────┬────┘                └──┬──────┬───────┬────┘
//!   worker 0..B: scan → hash-partition      worker 0..P: scan → SIP →
//!   rows into B per-worker buckets          predicate → typed probe of the
//!      └──────┴───────┘                     merged partition tables
//!     build barrier: merge buckets             └──────┴───────┘
//!     per partition (seq-sorted), then      probe barrier: concat joined
//!     publish the SIP filter                output in morsel order
//! ```
//!
//! * **Partitioned build, no locks.** Each build worker pulls morsels and
//!   hash-partitions rows by the combined key hash ([`SipFilter::key_hash`]
//!   over [`Value::hash64`], i.e. the `Value::hash64_of_*` family) into its
//!   own `B` buckets — workers never share a hash table. The barrier merges
//!   bucket `p` from every worker into partition table `p`; entries are
//!   sorted by their build-scan sequence number first, so per-key row lists
//!   match the serial [`HashJoinOp`]'s insertion order exactly.
//! * **SIP publication at the barrier.** Once the partition tables exist,
//!   the distinct key hashes (already computed for partitioning) are
//!   published to the attached [`SipFilter`] — probe-side workers have not
//!   started yet, so every probe scan sees a ready filter, exactly like the
//!   serial pull model.
//! * **Typed vectorized probe.** Probe workers pull scan morsels and probe
//!   [`crate::vector::TypedVector`] key columns natively: i64/f64 keys hash
//!   via `Value::hash64_of_*` without constructing a `Value` per row,
//!   dictionary-coded keys probe once per distinct code, RLE keys once per
//!   run. SEMI/ANTI matches become a [`crate::vector::SelectionVector`]
//!   refinement of the batch (zero-copy); the emitting flavors gather
//!   probe-side columns at the match positions and transpose the matched
//!   build rows — no row pivot anywhere on the probe path.
//! * **Memory.** The operator's budget covers the whole build side. If the
//!   build exceeds it, the operator falls back to the serial [`HashJoinOp`]
//!   over the same morsels, which externalizes to sort-merge (§6.1
//!   algorithm switching).
//! * **Failures.** Worker lanes are tasks on the shared process-wide pool
//!   ([`crate::pool`]; no per-query thread spawning) and return `DbResult`
//!   through the task set's result slots — no `unwrap` on worker lanes;
//!   `threads = 1` runs inline.

use crate::batch::Batch;
use crate::join::{key_of, HashJoinOp, JoinType};
use crate::memory::MemoryBudget;
use crate::operator::{BoxedOperator, Operator};
use crate::parallel::{MorselQueue, ParallelScanSpec};
use crate::scan::{ScanOperator, ScanStats};
use crate::sip::SipFilter;
use crate::vector::VectorData;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;
use vdb_storage::store::ScanMorsel;
use vdb_types::{DbError, DbResult, Row, Value};

/// Everything the operator needs to run both sides of the join.
pub struct ParallelJoinSpec {
    /// Probe (left) side scan parameters; its `sip` bindings may include
    /// the filter this very join publishes.
    pub probe: ParallelScanSpec,
    pub probe_morsels: Vec<ScanMorsel>,
    /// Probe-side degree of parallelism (clamped to the morsel count).
    pub probe_threads: usize,
    /// Build (right) side scan parameters.
    pub build: ParallelScanSpec,
    pub build_morsels: Vec<ScanMorsel>,
    /// Build-side degree of parallelism; also the partition fan-out.
    pub build_threads: usize,
    /// Key columns over the probe scan's output.
    pub left_keys: Vec<usize>,
    /// Key columns over the build scan's output.
    pub right_keys: Vec<usize>,
    pub join_type: JoinType,
    /// SIP filter this join publishes at the build barrier.
    pub sip: Option<Arc<SipFilter>>,
}

/// One build-side entry awaiting the merge barrier: `(sequence, combined
/// key hash, key, row)`. The sequence encodes `(morsel index, row within
/// morsel)` so the barrier can restore serial build-insertion order.
type BuildEntry = (u64, u64, Vec<Value>, Row);
/// A probe worker's output: joined batches tagged by probe-morsel index,
/// concatenated in morsel order at the probe barrier.
type ProbeOutput = Vec<(usize, Vec<Batch>)>;

/// Merged build side: one table per partition, specialized like the serial
/// [`HashJoinOp`] for the dominant single-column-key case.
enum BuildTables {
    One(Vec<HashMap<Value, Vec<Row>>>),
    Many(Vec<HashMap<Vec<Value>, Vec<Row>>>),
}

impl BuildTables {
    fn partitions(&self) -> usize {
        match self {
            BuildTables::One(p) => p.len(),
            BuildTables::Many(p) => p.len(),
        }
    }

    /// Partition index for a combined key hash.
    #[inline]
    fn part_of(&self, kh: u64) -> usize {
        (kh % self.partitions() as u64) as usize
    }

    /// Single-key lookup with a precomputed [`Value::hash64`] — the typed
    /// probe path's entry point (no `Value` is constructed for the hash).
    #[inline]
    fn lookup_hashed(&self, value_hash: u64, key: &Value) -> Option<&Vec<Row>> {
        let kh = SipFilter::key_hash_of_one(value_hash);
        match self {
            BuildTables::One(parts) => parts[self.part_of(kh)].get(key),
            BuildTables::Many(_) => None,
        }
    }

    /// Single-key lookup from a borrowed `Value` (plain/RLE columns).
    fn lookup_one(&self, key: &Value) -> Option<&Vec<Row>> {
        if key.is_null() {
            return None;
        }
        self.lookup_hashed(key.hash64(), key)
    }

    /// Multi-column lookup (cold path).
    fn lookup_many(&self, key: &[Value]) -> Option<&Vec<Row>> {
        let refs: Vec<&Value> = key.iter().collect();
        let kh = SipFilter::key_hash(&refs);
        match self {
            BuildTables::Many(parts) => parts[self.part_of(kh)].get(key),
            BuildTables::One(_) => None,
        }
    }
}

/// Combined key hash matching [`SipFilter::key_hash`], from an owned key.
fn combined_hash(key: &[Value]) -> u64 {
    let refs: Vec<&Value> = key.iter().collect();
    SipFilter::key_hash(&refs)
}

/// The morsel-parallel partitioned hash join. Blocking (the build barrier
/// and the probe barrier make it a plan zone boundary); output then
/// streams in batches. Supports the join flavors that emit only during the
/// probe — INNER, LEFT OUTER, SEMI, ANTI; the planner keeps
/// RIGHT/FULL OUTER (which need build-side matched flags) on the serial
/// operator.
///
/// Like [`crate::parallel::ParallelStage::Collect`], the probe barrier
/// materializes the joined output before streaming it (the serial join
/// streams probe output) — the operator therefore counts as stateful for
/// the §6.1 memory split; its [`MemoryBudget`] bounds the build side, and
/// streaming morsel-ordered emission as workers retire is future work.
pub struct ParallelHashJoinOp {
    join_type: JoinType,
    pending: Option<(ParallelJoinSpec, MemoryBudget)>,
    output: std::vec::IntoIter<Batch>,
    /// Serial fallback when the parallel build exceeds its budget.
    fallback: Option<BoxedOperator>,
    probe_stats: Arc<Mutex<ScanStats>>,
    build_stats: Arc<Mutex<ScanStats>>,
    build_threads_used: usize,
    probe_threads_used: usize,
    switched_to_serial: bool,
    build_ms: f64,
    probe_ms: f64,
}

impl ParallelHashJoinOp {
    pub fn new(spec: ParallelJoinSpec, budget: MemoryBudget) -> ParallelHashJoinOp {
        ParallelHashJoinOp {
            join_type: spec.join_type,
            pending: Some((spec, budget)),
            output: Vec::new().into_iter(),
            fallback: None,
            probe_stats: Arc::new(Mutex::new(ScanStats::default())),
            build_stats: Arc::new(Mutex::new(ScanStats::default())),
            build_threads_used: 0,
            probe_threads_used: 0,
            switched_to_serial: false,
            build_ms: 0.0,
            probe_ms: 0.0,
        }
    }

    /// Probe-side scan stats handle (inspect after draining).
    pub fn probe_stats(&self) -> Arc<Mutex<ScanStats>> {
        self.probe_stats.clone()
    }

    /// Did the build overflow its budget and switch to the serial
    /// (externalizing) hash join?
    pub fn switched_to_serial(&self) -> bool {
        self.switched_to_serial
    }

    /// Workers actually launched per phase (after clamping).
    pub fn threads_used(&self) -> (usize, usize) {
        (self.build_threads_used, self.probe_threads_used)
    }

    /// Wall-clock spent in the build (scan + partition + merge + SIP) and
    /// probe phases, in milliseconds.
    pub fn phase_ms(&self) -> (f64, f64) {
        (self.build_ms, self.probe_ms)
    }

    fn run(&mut self, spec: ParallelJoinSpec, budget: MemoryBudget) -> DbResult<()> {
        if !matches!(
            spec.join_type,
            JoinType::Inner | JoinType::LeftOuter | JoinType::Semi | JoinType::Anti
        ) {
            return Err(DbError::Plan(format!(
                "parallel hash join does not support {} joins",
                spec.join_type.name()
            )));
        }
        let build_threads = spec.build_threads.clamp(1, spec.build_morsels.len().max(1));
        let probe_threads = spec.probe_threads.clamp(1, spec.probe_morsels.len().max(1));
        self.build_threads_used = build_threads;
        self.probe_threads_used = probe_threads;

        // Degenerate DoP 1 on both sides: hash-partitioning, the merge
        // barrier, and materialized probe output buy nothing without
        // parallelism — they only add copies over the serial operator.
        // Delegate to the serial hash join over the same morsels (identical
        // output order, streaming probe, same SIP publication point). This
        // is a plan-shape decision, not an overflow, so `switched_to_serial`
        // stays false.
        if build_threads <= 1 && probe_threads <= 1 {
            let t = Instant::now();
            let left = serial_scan_over(&spec.probe, spec.probe_morsels, &self.probe_stats);
            let right = serial_scan_over(&spec.build, spec.build_morsels, &self.build_stats);
            self.fallback = Some(Box::new(HashJoinOp::new(
                Box::new(left),
                Box::new(right),
                spec.left_keys,
                spec.right_keys,
                spec.join_type,
                budget,
                spec.sip,
            )));
            self.build_ms = t.elapsed().as_secs_f64() * 1000.0;
            return Ok(());
        }

        // ---- Phase 1: partitioned parallel build --------------------------
        let t = Instant::now();
        let queue = Arc::new(MorselQueue::new(spec.build_morsels.clone()));
        let overflow = Arc::new(AtomicBool::new(false));
        let used_bytes = Arc::new(AtomicUsize::new(0));
        let bucket_sets: Vec<Vec<Vec<BuildEntry>>> = if build_threads <= 1 {
            vec![run_build_worker(
                &queue,
                &spec.build,
                &spec.right_keys,
                build_threads,
                budget,
                &used_bytes,
                &overflow,
                &self.build_stats,
            )?]
        } else {
            let jobs: Vec<crate::pool::Job<Vec<Vec<BuildEntry>>>> = (0..build_threads)
                .map(|_| {
                    let queue = queue.clone();
                    let bspec = spec.build.clone();
                    let keys = spec.right_keys.clone();
                    let used = used_bytes.clone();
                    let overflow = overflow.clone();
                    let stats = self.build_stats.clone();
                    Box::new(move || {
                        run_build_worker(
                            &queue,
                            &bspec,
                            &keys,
                            build_threads,
                            budget,
                            &used,
                            &overflow,
                            &stats,
                        )
                    }) as crate::pool::Job<Vec<Vec<BuildEntry>>>
                })
                .collect();
            crate::pool::shared().run_tasks(jobs, "parallel join build worker")?
        };
        if overflow.load(Ordering::Relaxed) {
            // Budget exceeded: hand both sides to the serial hash join,
            // which re-detects the overflow and externalizes to sort-merge.
            self.switched_to_serial = true;
            self.build_ms = t.elapsed().as_secs_f64() * 1000.0;
            let left = serial_scan_over(&spec.probe, spec.probe_morsels, &self.probe_stats);
            let right = serial_scan_over(&spec.build, spec.build_morsels, &self.build_stats);
            self.fallback = Some(Box::new(HashJoinOp::new(
                Box::new(left),
                Box::new(right),
                spec.left_keys,
                spec.right_keys,
                spec.join_type,
                budget,
                spec.sip,
            )));
            return Ok(());
        }

        // ---- Build barrier: merge partitions, publish SIP -----------------
        let single_key = spec.right_keys.len() == 1;
        let mut parts: Vec<Vec<BuildEntry>> = (0..build_threads).map(|_| Vec::new()).collect();
        for buckets in bucket_sets {
            for (p, bucket) in buckets.into_iter().enumerate() {
                parts[p].extend(bucket);
            }
        }
        let merged: Vec<(PartitionTable, Vec<u64>)> = if build_threads <= 1 {
            parts
                .into_iter()
                .map(|p| merge_partition(p, single_key))
                .collect()
        } else {
            let jobs: Vec<crate::pool::Job<(PartitionTable, Vec<u64>)>> = parts
                .into_iter()
                .map(|p| {
                    Box::new(move || Ok(merge_partition(p, single_key)))
                        as crate::pool::Job<(PartitionTable, Vec<u64>)>
                })
                .collect();
            crate::pool::shared().run_tasks(jobs, "parallel join merge worker")?
        };
        if let Some(sip) = &spec.sip {
            sip.publish_iter(merged.iter().flat_map(|(_, hashes)| hashes.iter().copied()));
        }
        let tables = if single_key {
            BuildTables::One(
                merged
                    .into_iter()
                    .map(|(t, _)| match t {
                        PartitionTable::One(m) => m,
                        PartitionTable::Many(_) => HashMap::new(),
                    })
                    .collect(),
            )
        } else {
            BuildTables::Many(
                merged
                    .into_iter()
                    .map(|(t, _)| match t {
                        PartitionTable::Many(m) => m,
                        PartitionTable::One(_) => HashMap::new(),
                    })
                    .collect(),
            )
        };
        self.build_ms = t.elapsed().as_secs_f64() * 1000.0;

        // ---- Phase 2: parallel typed probe --------------------------------
        let t = Instant::now();
        let right_arity = spec.build.output_columns.len();
        let tables = Arc::new(tables);
        let queue = Arc::new(MorselQueue::new(spec.probe_morsels));
        let outputs: Vec<ProbeOutput> = if probe_threads <= 1 {
            vec![run_probe_worker(
                &queue,
                &spec.probe,
                &tables,
                &spec.left_keys,
                spec.join_type,
                right_arity,
                &self.probe_stats,
            )?]
        } else {
            let jobs: Vec<crate::pool::Job<ProbeOutput>> = (0..probe_threads)
                .map(|_| {
                    let queue = queue.clone();
                    let pspec = spec.probe.clone();
                    let tables = tables.clone();
                    let keys = spec.left_keys.clone();
                    let jt = spec.join_type;
                    let stats = self.probe_stats.clone();
                    Box::new(move || {
                        run_probe_worker(&queue, &pspec, &tables, &keys, jt, right_arity, &stats)
                    }) as crate::pool::Job<ProbeOutput>
                })
                .collect();
            crate::pool::shared().run_tasks(jobs, "parallel join probe worker")?
        };
        // Probe barrier: morsel-ordered concat equals the serial probe.
        let mut tagged: Vec<(usize, Vec<Batch>)> = outputs.into_iter().flatten().collect();
        tagged.sort_by_key(|&(idx, _)| idx);
        self.output = tagged
            .into_iter()
            .flat_map(|(_, b)| b)
            .collect::<Vec<_>>()
            .into_iter();
        self.probe_ms = t.elapsed().as_secs_f64() * 1000.0;
        Ok(())
    }
}

impl Operator for ParallelHashJoinOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if let Some((spec, budget)) = self.pending.take() {
            self.run(spec, budget)?;
        }
        if let Some(fb) = &mut self.fallback {
            return fb.next_batch();
        }
        Ok(self.output.next())
    }

    fn name(&self) -> String {
        format!("ParallelHashJoin({})", self.join_type.name())
    }
}

/// Reassemble one serial [`ScanOperator`] over a morsel list (the fallback
/// path re-reads both sides through the ordinary serial pipeline).
fn serial_scan_over(
    spec: &ParallelScanSpec,
    morsels: Vec<ScanMorsel>,
    stats: &Arc<Mutex<ScanStats>>,
) -> ScanOperator {
    let mut containers = Vec::new();
    let mut wos_rows = Vec::new();
    for m in morsels {
        containers.extend(m.containers);
        wos_rows.extend(m.wos_rows);
    }
    ScanOperator::with_stats(
        spec.backend.clone(),
        containers,
        wos_rows,
        spec.output_columns.clone(),
        spec.predicate.clone(),
        spec.partition_predicate.clone(),
        spec.sip.clone(),
        stats.clone(),
    )
}

/// One build worker: pull morsels, scan, hash-partition keyed rows into
/// this worker's private buckets. NULL-keyed rows are dropped (they can
/// never match, and the supported flavors never emit build-side rows).
#[allow(clippy::too_many_arguments)]
fn run_build_worker(
    queue: &Arc<MorselQueue>,
    spec: &ParallelScanSpec,
    right_keys: &[usize],
    nparts: usize,
    budget: MemoryBudget,
    used_bytes: &AtomicUsize,
    overflow: &AtomicBool,
    stats: &Arc<Mutex<ScanStats>>,
) -> DbResult<Vec<Vec<BuildEntry>>> {
    let mut buckets: Vec<Vec<BuildEntry>> = (0..nparts).map(|_| Vec::new()).collect();
    while let Some((idx, morsel)) = queue.pop() {
        if overflow.load(Ordering::Relaxed) {
            break; // another worker tripped the budget; fallback rescans
        }
        let mut scan = spec.open(morsel, stats);
        let mut row_no: u64 = 0;
        while let Some(batch) = scan.next_batch()? {
            let bytes = batch.approx_bytes();
            let total = used_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
            if budget.exceeded_by(total) {
                overflow.store(true, Ordering::Relaxed);
                return Ok(buckets);
            }
            for row in batch.into_rows() {
                let seq = ((idx as u64) << 32) | row_no;
                row_no += 1;
                if let Some(key) = key_of(&row, right_keys) {
                    let kh = combined_hash(&key);
                    buckets[(kh % nparts as u64) as usize].push((seq, kh, key, row));
                }
            }
        }
    }
    Ok(buckets)
}

/// One merged partition plus the distinct key hashes it contributes to the
/// SIP filter.
enum PartitionTable {
    One(HashMap<Value, Vec<Row>>),
    Many(HashMap<Vec<Value>, Vec<Row>>),
}

/// Merge one partition's entries (from every build worker) into its final
/// table. Sorting by the build-scan sequence number first makes each key's
/// row list identical to the serial operator's insertion order, so the
/// parallel join's output is row-for-row equal to [`HashJoinOp`]'s.
fn merge_partition(mut entries: Vec<BuildEntry>, single_key: bool) -> (PartitionTable, Vec<u64>) {
    entries.sort_unstable_by_key(|e| e.0);
    let mut hashes = Vec::new();
    if single_key {
        let mut map: HashMap<Value, Vec<Row>> = HashMap::new();
        for (_, kh, mut key, row) in entries {
            let Some(k) = key.pop() else { continue };
            match map.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    hashes.push(kh);
                    e.insert(vec![row]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
            }
        }
        (PartitionTable::One(map), hashes)
    } else {
        let mut map: HashMap<Vec<Value>, Vec<Row>> = HashMap::new();
        for (_, kh, key, row) in entries {
            match map.entry(key) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    hashes.push(kh);
                    e.insert(vec![row]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(row),
            }
        }
        (PartitionTable::Many(map), hashes)
    }
}

/// One probe worker: pull morsels, run the scan pipeline (visibility, SIP,
/// predicate), probe each surviving batch, and tag the joined output with
/// the morsel index for the order-preserving concat at the barrier.
fn run_probe_worker(
    queue: &Arc<MorselQueue>,
    spec: &ParallelScanSpec,
    tables: &BuildTables,
    left_keys: &[usize],
    join_type: JoinType,
    right_arity: usize,
    stats: &Arc<Mutex<ScanStats>>,
) -> DbResult<Vec<(usize, Vec<Batch>)>> {
    let mut out = Vec::new();
    while let Some((idx, morsel)) = queue.pop() {
        let mut scan = spec.open(morsel, stats);
        let mut pending: Vec<Batch> = Vec::new();
        while let Some(batch) = scan.next_batch()? {
            if batch.is_empty() {
                continue;
            }
            probe_batch(
                batch,
                tables,
                left_keys,
                join_type,
                right_arity,
                &mut pending,
            );
        }
        out.push((idx, pending));
    }
    Ok(out)
}

/// Per-logical-row lookup results for one batch: the typed vectorized
/// probe path. Native i64/f64 key hashing, one probe per distinct
/// dictionary code, one probe per RLE run; `Value`-per-row construction
/// only on the plain / multi-column cold paths.
fn probe_hits<'t>(
    batch: &Batch,
    tables: &'t BuildTables,
    left_keys: &[usize],
) -> Vec<Option<&'t Vec<Row>>> {
    let cands: Vec<u32> = match batch.selection() {
        Some(sel) => sel.indices().to_vec(),
        None => (0..batch.physical_len() as u32).collect(),
    };
    if let (BuildTables::One(_), [only]) = (tables, left_keys) {
        return match &batch.columns[*only] {
            crate::batch::ColumnSlice::Typed(tv) => match tv.data() {
                VectorData::Int64(xs) | VectorData::Timestamp(xs) => cands
                    .into_iter()
                    .map(|i| {
                        let i = i as usize;
                        tv.is_valid(i).then(|| {
                            tables
                                .lookup_hashed(Value::hash64_of_i64(xs[i]), &Value::Integer(xs[i]))
                        })?
                    })
                    .collect(),
                VectorData::Float64(xs) => cands
                    .into_iter()
                    .map(|i| {
                        let i = i as usize;
                        tv.is_valid(i).then(|| {
                            tables.lookup_hashed(Value::hash64_of_f64(xs[i]), &Value::Float(xs[i]))
                        })?
                    })
                    .collect(),
                VectorData::Bool(bits) => cands
                    .into_iter()
                    .map(|i| {
                        let i = i as usize;
                        tv.is_valid(i)
                            .then(|| tables.lookup_one(&Value::Boolean(bits.get(i))))?
                    })
                    .collect(),
                VectorData::Dict { dict, codes } => {
                    // One table probe per *distinct* string in the block.
                    let code_hits: Vec<Option<&Vec<Row>>> = dict
                        .entries()
                        .iter()
                        .map(|s| {
                            tables
                                .lookup_hashed(Value::hash64_of_str(s), &Value::Varchar(s.clone()))
                        })
                        .collect();
                    cands
                        .into_iter()
                        .map(|i| {
                            let i = i as usize;
                            tv.is_valid(i).then(|| code_hits[codes[i] as usize])?
                        })
                        .collect()
                }
            },
            crate::batch::ColumnSlice::Rle(rv) => {
                // One probe per run; candidates are sorted, so a single
                // forward run pointer suffices.
                let decisions: Vec<Option<&Vec<Row>>> = rv
                    .runs()
                    .iter()
                    .map(|(v, _)| tables.lookup_one(v))
                    .collect();
                let mut ri = 0usize;
                cands
                    .into_iter()
                    .map(|i| {
                        while rv.run_start(ri + 1) <= i as usize {
                            ri += 1;
                        }
                        decisions[ri]
                    })
                    .collect()
            }
            crate::batch::ColumnSlice::Plain(values) => cands
                .into_iter()
                .map(|i| tables.lookup_one(&values[i as usize]))
                .collect(),
        };
    }
    // Multi-column keys: gather per candidate (cold path).
    cands
        .into_iter()
        .map(|i| {
            let key: Vec<Value> = left_keys
                .iter()
                .map(|&c| batch.columns[c].value_at(i as usize))
                .collect();
            if key.iter().any(Value::is_null) {
                None
            } else {
                tables.lookup_many(&key)
            }
        })
        .collect()
}

/// Probe one batch and append the joined output batches. SEMI/ANTI refine
/// the batch with a match selection (zero-copy via
/// [`Batch::into_filtered`], column representations preserved); INNER and
/// LEFT OUTER gather probe-side columns at the match positions and
/// transpose the matched build rows into output columns — the probe path
/// performs no row pivot.
fn probe_batch(
    batch: Batch,
    tables: &BuildTables,
    left_keys: &[usize],
    join_type: JoinType,
    right_arity: usize,
    out: &mut Vec<Batch>,
) {
    let hits = probe_hits(&batch, tables, left_keys);
    debug_assert_eq!(hits.len(), batch.len());
    match join_type {
        JoinType::Semi => {
            let mask: Vec<bool> = hits.iter().map(Option::is_some).collect();
            if mask.iter().any(|&b| b) {
                out.push(batch.into_filtered(&mask));
            }
        }
        JoinType::Anti => {
            let mask: Vec<bool> = hits.iter().map(Option::is_none).collect();
            if mask.iter().any(|&b| b) {
                out.push(batch.into_filtered(&mask));
            }
        }
        // INNER and LEFT OUTER (the only other flavors the operator
        // accepts) emit probe⊕build columns.
        _ => {
            let left_outer = join_type == JoinType::LeftOuter;
            let phys: Vec<u32> = match batch.selection() {
                Some(sel) => sel.indices().to_vec(),
                None => (0..batch.physical_len() as u32).collect(),
            };
            let mut probe_idx: Vec<u32> = Vec::new();
            let mut build_side: Vec<Option<Row>> = Vec::new();
            for (&pi, hit) in phys.iter().zip(hits) {
                match hit {
                    Some(matches) => {
                        for m in matches {
                            probe_idx.push(pi);
                            build_side.push(Some(m.clone()));
                        }
                    }
                    None if left_outer => {
                        probe_idx.push(pi);
                        build_side.push(None);
                    }
                    None => {}
                }
            }
            if probe_idx.is_empty() {
                return;
            }
            out.push(crate::batch::gather_join_output(
                &batch,
                &probe_idx,
                build_side,
                right_arity,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_rows;
    use crate::scan::SipBinding;
    use vdb_storage::projection::ProjectionDef;
    use vdb_storage::{MemBackend, ProjectionStore};
    use vdb_types::{BinOp, ColumnDef, DataType, Epoch, Expr, TableSchema};

    /// `(k, v)` rows over `chunks` containers plus a WOS row; `k = v %
    /// modulo`, with NULL keys sprinkled in when `with_nulls`.
    fn make_store(
        name: &str,
        rows: i64,
        chunks: usize,
        modulo: i64,
        with_nulls: bool,
    ) -> ProjectionStore {
        let schema = TableSchema::new(
            "t",
            vec![
                ColumnDef::new("k", DataType::Integer),
                ColumnDef::new("v", DataType::Integer),
            ],
        );
        let def = ProjectionDef::super_projection(&schema, name, &[1], &[]);
        let mut store = ProjectionStore::new(def, None, 1, Arc::new(MemBackend::new()));
        let all: Vec<Row> = (0..rows)
            .map(|i| {
                let k = if with_nulls && i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Integer(i % modulo)
                };
                vec![k, Value::Integer(i)]
            })
            .collect();
        for chunk in all.chunks((rows as usize).div_ceil(chunks.max(1))) {
            store.insert_direct_ros(chunk.to_vec(), Epoch(1)).unwrap();
        }
        store
            .insert_wos(
                vec![vec![Value::Integer(1), Value::Integer(rows)]],
                Epoch(1),
            )
            .unwrap();
        store
    }

    fn spec_of(store: &ProjectionStore) -> ParallelScanSpec {
        ParallelScanSpec::new(store.backend().clone(), vec![0, 1])
    }

    fn morsels_of(store: &ProjectionStore) -> Vec<ScanMorsel> {
        store.scan_snapshot(Epoch(1)).into_morsels()
    }

    fn serial_join(
        probe: &ProjectionStore,
        build: &ProjectionStore,
        jt: JoinType,
        budget: MemoryBudget,
    ) -> Vec<Row> {
        let left = serial_scan_over(
            &spec_of(probe),
            morsels_of(probe),
            &Arc::new(Mutex::new(ScanStats::default())),
        );
        let right = serial_scan_over(
            &spec_of(build),
            morsels_of(build),
            &Arc::new(Mutex::new(ScanStats::default())),
        );
        let mut op = HashJoinOp::new(
            Box::new(left),
            Box::new(right),
            vec![0],
            vec![0],
            jt,
            budget,
            None,
        );
        collect_rows(&mut op).unwrap()
    }

    fn parallel_join_op(
        probe: &ProjectionStore,
        build: &ProjectionStore,
        jt: JoinType,
        threads: usize,
        sip: Option<Arc<SipFilter>>,
    ) -> ParallelHashJoinOp {
        let mut probe_spec = spec_of(probe);
        if let Some(f) = &sip {
            probe_spec.sip = vec![SipBinding {
                filter: f.clone(),
                key_columns: vec![0],
            }];
        }
        ParallelHashJoinOp::new(
            ParallelJoinSpec {
                probe: probe_spec,
                probe_morsels: morsels_of(probe),
                probe_threads: threads,
                build: spec_of(build),
                build_morsels: morsels_of(build),
                build_threads: threads,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: jt,
                sip,
            },
            MemoryBudget::unlimited(),
        )
    }

    #[test]
    fn parallel_join_equals_serial_across_lanes_and_flavors() {
        let probe = make_store("probe", 6000, 5, 97, true);
        let build = make_store("build", 400, 3, 61, true);
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let expected = serial_join(&probe, &build, jt, MemoryBudget::unlimited());
            for threads in [1, 2, 7] {
                let mut op = parallel_join_op(&probe, &build, jt, threads, None);
                let got = collect_rows(&mut op).unwrap();
                assert_eq!(got, expected, "flavor {} threads {threads}", jt.name());
            }
        }
    }

    #[test]
    fn sip_published_before_probe_and_filters_probe_rows() {
        let probe = make_store("probe", 3000, 4, 1000, false);
        let build = make_store("build", 30, 2, 10, false);
        let sip = SipFilter::new();
        let mut op = parallel_join_op(&probe, &build, JoinType::Inner, 4, Some(sip.clone()));
        let stats = op.probe_stats();
        let expected = serial_join(&probe, &build, JoinType::Inner, MemoryBudget::unlimited());
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got, expected);
        assert!(sip.is_ready(), "SIP must publish at the build barrier");
        assert!(
            stats.lock().rows_sip_filtered > 0,
            "probe-side scan must drop non-matching rows via SIP"
        );
    }

    #[test]
    fn budget_overflow_falls_back_to_serial_externalizing_join() {
        let probe = make_store("probe", 500, 3, 13, false);
        let build = make_store("build", 4000, 4, 13, false);
        let expected = serial_join(&probe, &build, JoinType::Inner, MemoryBudget::unlimited());
        let mut probe_spec = spec_of(&probe);
        probe_spec.predicate = None;
        let mut op = ParallelHashJoinOp::new(
            ParallelJoinSpec {
                probe: probe_spec,
                probe_morsels: morsels_of(&probe),
                probe_threads: 3,
                build: spec_of(&build),
                build_morsels: morsels_of(&build),
                build_threads: 3,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Inner,
                sip: None,
            },
            MemoryBudget::new(4 * 1024),
        );
        let mut got = collect_rows(&mut op).unwrap();
        assert!(
            op.switched_to_serial(),
            "tiny budget must trip the fallback"
        );
        // The serial fallback externalizes to sort-merge, which emits in
        // key order rather than probe order; compare as multisets.
        let mut expected = expected;
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn worker_errors_surface_as_dbresult() {
        let probe = make_store("probe", 2000, 4, 7, false);
        let build = make_store("build", 100, 2, 7, false);
        // Type error inside the probe workers: v + 'x'.
        let mut probe_spec = spec_of(&probe);
        probe_spec.predicate = Some(Expr::binary(
            BinOp::Add,
            Expr::col(1, "v"),
            Expr::lit(Value::Varchar("x".into())),
        ));
        let mut op = ParallelHashJoinOp::new(
            ParallelJoinSpec {
                probe: probe_spec,
                probe_morsels: morsels_of(&probe),
                probe_threads: 4,
                build: spec_of(&build),
                build_morsels: morsels_of(&build),
                build_threads: 2,
                left_keys: vec![0],
                right_keys: vec![0],
                join_type: JoinType::Inner,
                sip: None,
            },
            MemoryBudget::unlimited(),
        );
        let err = collect_rows(&mut op);
        assert!(err.is_err(), "probe worker failure must propagate: {err:?}");
    }

    #[test]
    fn threads_clamp_and_inline_single_lane() {
        let probe = make_store("probe", 200, 1, 5, false);
        let build = make_store("build", 50, 1, 5, false);
        let expected = serial_join(&probe, &build, JoinType::Inner, MemoryBudget::unlimited());
        let mut op = parallel_join_op(&probe, &build, JoinType::Inner, 64, None);
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got, expected);
        // 1 container + WOS tail = 2 morsels per side.
        assert_eq!(op.threads_used(), (2, 2));
        let (build_ms, probe_ms) = op.phase_ms();
        assert!(build_ms >= 0.0 && probe_ms >= 0.0);
    }

    #[test]
    fn single_lane_delegates_to_serial_inline() {
        let probe = make_store("probe", 1500, 3, 17, true);
        let build = make_store("build", 90, 2, 17, true);
        for jt in [
            JoinType::Inner,
            JoinType::LeftOuter,
            JoinType::Semi,
            JoinType::Anti,
        ] {
            let expected = serial_join(&probe, &build, jt, MemoryBudget::unlimited());
            let mut op = parallel_join_op(&probe, &build, jt, 1, None);
            let got = collect_rows(&mut op).unwrap();
            assert_eq!(got, expected, "flavor {}", jt.name());
            assert_eq!(op.threads_used(), (1, 1));
            assert!(
                !op.switched_to_serial(),
                "DoP-1 delegation is a plan shape, not a budget overflow"
            );
        }
    }

    #[test]
    fn right_outer_is_rejected() {
        let probe = make_store("probe", 10, 1, 3, false);
        let build = make_store("build", 10, 1, 3, false);
        let mut op = parallel_join_op(&probe, &build, JoinType::RightOuter, 2, None);
        assert!(matches!(op.next_batch(), Err(DbError::Plan(_))));
    }
}
