//! Process-wide work-stealing worker pool shared by all concurrent queries.
//!
//! PR 3/4's morsel operators spawned fresh worker threads per operator
//! invocation — fine for one query at a time, but N concurrent sessions
//! would each spawn their own lanes, oversubscribing the host and paying
//! thread start/teardown on every query (the overhead floor behind the
//! ~1.0x parallel speedups measured on small boxes). This module replaces
//! that with **one persistent pool** the whole process multiplexes:
//!
//! ```text
//!   query A ─ run_tasks([scan w0, scan w1, ...]) ─┐
//!   query B ─ run_tasks([build p0, build p1, ..]) ─┼─► shared set list
//!   query C ─ run_tasks([probe w0, ...]) ─────────┘      │
//!                  persistent workers steal tasks from any active set
//! ```
//!
//! * **Task sets, not bare tasks.** A caller submits a batch of jobs as one
//!   task set and blocks until the whole set finishes. Workers steal
//!   tasks from the front-most set with work remaining, so concurrent
//!   queries interleave at morsel-task granularity instead of fighting over
//!   raw threads.
//! * **Caller runs.** The submitting thread immediately starts draining its
//!   *own* set's queue alongside the workers. Two consequences: a pool of
//!   any size (even zero live workers) always completes every set — the
//!   caller is a guaranteed lane — and nested submission can't deadlock: a
//!   task that itself submits a set drains that set's queue before waiting,
//!   so a blocked submitter only ever waits on *running* tasks, and the
//!   waits-for graph bottoms out.
//! * **No panics across the boundary.** Jobs return [`DbResult`]; panics
//!   are caught and surfaced as [`DbError::Execution`], mirroring the old
//!   per-operator `JoinHandle` coordinators.
//! * **Sizing.** `VDB_POOL_WORKERS` pins the pool size directly; otherwise
//!   `VDB_EXEC_THREADS` (the per-operator lane knob, so existing CI lanes
//!   also pin the pool); otherwise the host's available parallelism.
//!   [`WorkerPool::resize`] retargets live workers at runtime (tests sweep
//!   {1, 2, 7}); excess workers exit when idle, missing ones spawn on
//!   demand. Correctness is size-independent — only throughput changes.
//!
//! The per-operator degree of parallelism (how many jobs an operator
//! submits) still clamps to the morsel count; the pool bounds how many of
//! those jobs make progress at once, across *all* queries.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use vdb_types::{DbError, DbResult};

/// Environment knob pinning the shared pool's worker count. Falls back to
/// [`crate::parallel::THREADS_ENV`], then to available parallelism.
pub const POOL_WORKERS_ENV: &str = "VDB_POOL_WORKERS";

/// One unit of work queued on the pool (a morsel-lane closure).
type Task = Box<dyn FnOnce() + Send + 'static>;

/// A job handed to [`WorkerPool::run_tasks`]: runs on some lane, returns a
/// result or an error.
pub type Job<T> = Box<dyn FnOnce() -> DbResult<T> + Send + 'static>;

/// Cumulative pool counters (process lifetime), exposed so the `serve`
/// repro can prove workers are being reused rather than respawned.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Task sets submitted via [`WorkerPool::run_tasks`].
    pub task_sets: AtomicU64,
    /// Tasks executed by persistent pool workers (stolen work).
    pub tasks_by_workers: AtomicU64,
    /// Tasks executed by the submitting thread itself (caller-runs lane).
    pub tasks_by_callers: AtomicU64,
    /// Worker threads spawned over the pool's lifetime. Reuse shows up as
    /// this staying flat while `tasks_by_workers` climbs.
    pub workers_spawned: AtomicU64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    pub task_sets: u64,
    pub tasks_by_workers: u64,
    pub tasks_by_callers: u64,
    pub workers_spawned: u64,
}

/// One submitted batch of tasks; lives until every task has finished.
struct TaskSet {
    /// Unclaimed tasks. Workers and the submitting caller both pop here.
    tasks: Mutex<VecDeque<Task>>,
    /// Tasks popped but not yet finished + tasks still queued.
    remaining: Mutex<usize>,
    done: Condvar,
}

impl TaskSet {
    fn new(tasks: VecDeque<Task>) -> TaskSet {
        let n = tasks.len();
        TaskSet {
            tasks: Mutex::new(tasks),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        }
    }

    fn pop(&self) -> Option<Task> {
        self.tasks
            .lock()
            .expect("pool task queue poisoned")
            .pop_front()
    }

    /// Mark one task finished; wake the submitter when the set drains.
    fn finish_one(&self) {
        let mut remaining = self.remaining.lock().expect("pool set counter poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every task in the set has finished.
    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("pool set counter poisoned");
        while *remaining > 0 {
            remaining = self
                .done
                .wait(remaining)
                .expect("pool set counter poisoned");
        }
    }
}

struct Inner {
    /// Active sets, oldest first. Workers steal from the front-most set
    /// with queued work (FIFO across queries, LPT within a set because the
    /// morsel queue feeding the jobs dispenses heaviest-first).
    sets: VecDeque<Arc<TaskSet>>,
    target_workers: usize,
    live_workers: usize,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Signals workers: new work arrived or the target size changed.
    work: Condvar,
    stats: PoolStats,
}

/// The persistent work-stealing pool. One instance per process — use
/// [`shared`]; constructing private pools is for unit tests.
pub struct WorkerPool {
    shared: Arc<Shared>,
}

impl WorkerPool {
    /// A pool with `workers` persistent threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> WorkerPool {
        let pool = WorkerPool {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner {
                    sets: VecDeque::new(),
                    target_workers: workers.max(1),
                    live_workers: 0,
                }),
                work: Condvar::new(),
                stats: PoolStats::default(),
            }),
        };
        pool.spawn_missing();
        pool
    }

    /// Current target worker count (the pool's capacity — the planner's
    /// default degree of parallelism).
    pub fn workers(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("pool poisoned")
            .target_workers
    }

    /// Retarget the pool. Growing spawns workers immediately; shrinking
    /// lets excess workers exit as they go idle. In-flight sets finish
    /// either way (the caller-runs lane guarantees progress).
    pub fn resize(&self, workers: usize) {
        {
            let mut inner = self.shared.inner.lock().expect("pool poisoned");
            inner.target_workers = workers.max(1);
        }
        self.shared.work.notify_all();
        self.spawn_missing();
    }

    pub fn stats(&self) -> PoolStatsSnapshot {
        let s = &self.shared.stats;
        PoolStatsSnapshot {
            task_sets: s.task_sets.load(Ordering::Relaxed),
            tasks_by_workers: s.tasks_by_workers.load(Ordering::Relaxed),
            tasks_by_callers: s.tasks_by_callers.load(Ordering::Relaxed),
            workers_spawned: s.workers_spawned.load(Ordering::Relaxed),
        }
    }

    /// Run a batch of jobs on the pool and wait for all of them. Results
    /// come back in submission order; the first error (or panic, surfaced
    /// as `DbError::Execution("<what> panicked")`) wins. The calling thread
    /// helps drain its own set, so this completes even on a saturated (or
    /// zero-worker) pool and is safe to call from inside a pool task.
    pub fn run_tasks<T: Send + 'static>(&self, jobs: Vec<Job<T>>, what: &str) -> DbResult<Vec<T>> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        let n = jobs.len();
        let slots: Arc<Mutex<Vec<Option<DbResult<T>>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let what_owned = what.to_string();
        let tasks: VecDeque<Task> = jobs
            .into_iter()
            .enumerate()
            .map(|(i, job)| {
                let slots = slots.clone();
                let what = what_owned.clone();
                Box::new(move || {
                    let result = match catch_unwind(AssertUnwindSafe(job)) {
                        Ok(r) => r,
                        Err(_) => Err(DbError::Execution(format!("{what} panicked"))),
                    };
                    if let Ok(mut s) = slots.lock() {
                        s[i] = Some(result);
                    }
                }) as Task
            })
            .collect();
        let set = Arc::new(TaskSet::new(tasks));
        {
            let mut inner = self.shared.inner.lock().expect("pool poisoned");
            inner.sets.push_back(set.clone());
        }
        self.shared.stats.task_sets.fetch_add(1, Ordering::Relaxed);
        self.shared.work.notify_all();
        // Caller-runs: drain our own set's queue, then wait for stolen
        // stragglers.
        while let Some(task) = set.pop() {
            task();
            set.finish_one();
            self.shared
                .stats
                .tasks_by_callers
                .fetch_add(1, Ordering::Relaxed);
        }
        set.wait();
        let mut slots = slots
            .lock()
            .map_err(|_| DbError::Execution(format!("{what_owned} poisoned its result slots")))?;
        let mut out = Vec::with_capacity(n);
        let mut first_err: Option<DbError> = None;
        for slot in slots.drain(..) {
            match slot {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => first_err = first_err.or(Some(e)),
                None => {
                    first_err = first_err
                        .or_else(|| Some(DbError::Execution(format!("{what_owned} lost a task"))))
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Spawn workers until `live == target`. Spawn failure is non-fatal:
    /// the caller-runs lane keeps every set completing regardless.
    fn spawn_missing(&self) {
        loop {
            {
                let mut inner = self.shared.inner.lock().expect("pool poisoned");
                if inner.live_workers >= inner.target_workers {
                    return;
                }
                inner.live_workers += 1;
            }
            let shared = self.shared.clone();
            let spawned = std::thread::Builder::new()
                .name("vdb-pool-worker".into())
                .spawn(move || worker_loop(&shared));
            match spawned {
                Ok(_) => {
                    self.shared
                        .stats
                        .workers_spawned
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    let mut inner = self.shared.inner.lock().expect("pool poisoned");
                    inner.live_workers -= 1;
                    return;
                }
            }
        }
    }
}

/// Persistent worker: steal a task from the front-most set with queued
/// work; park when there is none; exit when the pool shrank below us.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stolen: Option<(Arc<TaskSet>, Task)> = {
            let mut inner = shared.inner.lock().expect("pool poisoned");
            loop {
                // Drop fully-drained sets (all tasks claimed); a set's
                // completion is tracked by its own `remaining` counter.
                let mut found = None;
                inner.sets.retain(|set| {
                    if found.is_some() {
                        return true;
                    }
                    match set.pop() {
                        Some(task) => {
                            found = Some((set.clone(), task));
                            true
                        }
                        None => false,
                    }
                });
                if let Some(hit) = found {
                    break Some(hit);
                }
                if inner.live_workers > inner.target_workers {
                    inner.live_workers -= 1;
                    break None;
                }
                inner = shared.work.wait(inner).expect("pool poisoned");
            }
        };
        match stolen {
            Some((set, task)) => {
                task();
                set.finish_one();
                shared
                    .stats
                    .tasks_by_workers
                    .fetch_add(1, Ordering::Relaxed);
            }
            None => return,
        }
    }
}

/// The process-wide pool, sized from `VDB_POOL_WORKERS`, then
/// `VDB_EXEC_THREADS`, then the host's available parallelism. All parallel
/// operators submit here; [`crate::parallel::ExecOptions::from_env`]
/// derives the default degree of parallelism from this pool's capacity.
pub fn shared() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(default_workers()))
}

fn default_workers() -> usize {
    let from = |name: &str| {
        std::env::var(name)
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
    };
    from(POOL_WORKERS_ENV)
        .or_else(|| from(crate::parallel::THREADS_ENV))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Job<usize>> = (0..32usize)
            .map(|i| Box::new(move || Ok(i * 10)) as Job<usize>)
            .collect();
        let got = pool.run_tasks(jobs, "order test").unwrap();
        assert_eq!(got, (0..32usize).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn first_error_wins_and_set_still_drains() {
        let pool = WorkerPool::new(2);
        let ran = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Job<()>> = (0..8)
            .map(|i| {
                let ran = ran.clone();
                Box::new(move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i % 2 == 1 {
                        Err(DbError::Execution("boom".into()))
                    } else {
                        Ok(())
                    }
                }) as Job<()>
            })
            .collect();
        let err = pool.run_tasks(jobs, "error test");
        assert!(err.is_err());
        assert_eq!(ran.load(Ordering::Relaxed), 8, "errors don't strand tasks");
    }

    #[test]
    fn panics_surface_as_execution_errors() {
        let pool = WorkerPool::new(2);
        let jobs: Vec<Job<()>> = vec![
            Box::new(|| Ok(())),
            Box::new(|| panic!("deliberate")),
            Box::new(|| Ok(())),
        ];
        match pool.run_tasks(jobs, "panic test") {
            Err(DbError::Execution(msg)) => assert!(msg.contains("panic test panicked")),
            other => panic!("expected Execution error, got {other:?}"),
        }
    }

    #[test]
    fn nested_submission_completes_even_on_one_worker() {
        let pool = Arc::new(WorkerPool::new(1));
        let inner_pool = pool.clone();
        let jobs: Vec<Job<usize>> = vec![Box::new(move || {
            let inner: Vec<Job<usize>> = (0..4usize)
                .map(|i| Box::new(move || Ok(i)) as Job<usize>)
                .collect();
            Ok(inner_pool
                .run_tasks(inner, "nested inner")?
                .into_iter()
                .sum())
        })];
        let got = pool.run_tasks(jobs, "nested outer").unwrap();
        assert_eq!(got, vec![6]);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(2));
        let handles: Vec<_> = (0..6usize)
            .map(|q| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let jobs: Vec<Job<usize>> = (0..16usize)
                        .map(|i| Box::new(move || Ok(q * 100 + i)) as Job<usize>)
                        .collect();
                    pool.run_tasks(jobs, "concurrent test").unwrap()
                })
            })
            .collect();
        for (q, h) in handles.into_iter().enumerate() {
            let got = h.join().unwrap();
            assert_eq!(got, (0..16usize).map(|i| q * 100 + i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn resize_retargets_and_workers_persist_across_sets() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        pool.resize(1);
        assert_eq!(pool.workers(), 1);
        pool.resize(2);
        assert_eq!(pool.workers(), 2);
        let before = pool.stats().workers_spawned;
        for _ in 0..4 {
            let jobs: Vec<Job<()>> = (0..8).map(|_| Box::new(|| Ok(())) as Job<()>).collect();
            pool.run_tasks(jobs, "resize test").unwrap();
        }
        let after = pool.stats();
        assert_eq!(
            after.workers_spawned, before,
            "sets must reuse live workers, not spawn new ones"
        );
        assert!(after.tasks_by_workers + after.tasks_by_callers >= 32);
        assert_eq!(after.task_sets, 4);
    }

    #[test]
    fn shared_pool_is_a_singleton_with_positive_capacity() {
        assert!(shared().workers() >= 1);
        assert!(std::ptr::eq(shared(), shared()));
    }
}
