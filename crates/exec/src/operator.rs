//! The pull-model operator trait (§6.1).
//!
//! "Vertica's operators use a pull processing model: the most downstream
//! operator requests rows from the next operator upstream in the processing
//! pipeline." Operators are `Send` so ParallelUnion can run pipelines on
//! worker threads.

use crate::batch::Batch;
use vdb_types::{DbResult, Row};

/// A pull-model physical operator.
pub trait Operator: Send {
    /// Pull the next batch; `None` means end of stream. Once `None` is
    /// returned, further calls keep returning `None`.
    fn next_batch(&mut self) -> DbResult<Option<Batch>>;

    /// Operator name for EXPLAIN / debugging.
    fn name(&self) -> String;
}

pub type BoxedOperator = Box<dyn Operator>;

/// Drain an operator into row-major form (tests, DML application, and the
/// `Database` result facade — the single place a finished pipeline pivots
/// to rows). Batches are consumed via [`Batch::into_rows`] so plain column
/// values *move* instead of being cloned and then dropped.
pub fn collect_rows(op: &mut dyn Operator) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch()? {
        out.extend(batch.into_rows());
    }
    Ok(out)
}

/// An operator yielding a fixed set of batches (test/utility source; also
/// the materialized input for replans and recovery plans).
pub struct ValuesOp {
    batches: std::vec::IntoIter<Batch>,
}

impl ValuesOp {
    pub fn new(batches: Vec<Batch>) -> ValuesOp {
        ValuesOp {
            batches: batches.into_iter(),
        }
    }

    pub fn from_rows(rows: Vec<Row>) -> ValuesOp {
        // Chunks are moved, not cloned — cloning here doubled peak memory
        // on the hash join's sort-merge fallback.
        ValuesOp::new(crate::batch::rows_into_batches(
            rows,
            crate::batch::BATCH_SIZE,
        ))
    }
}

impl Operator for ValuesOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        Ok(self.batches.next())
    }

    fn name(&self) -> String {
        "Values".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vdb_types::Value;

    #[test]
    fn values_op_streams_batches() {
        let rows: Vec<Row> = (0..2500).map(|i| vec![Value::Integer(i)]).collect();
        let mut op = ValuesOp::from_rows(rows.clone());
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(got, rows);
        assert!(op.next_batch().unwrap().is_none(), "stays exhausted");
    }
}
