//! Sort (§6.1 #5) and Limit.
//!
//! "Sorts incoming data, externalizing if needed." Under budget the sort is
//! in-memory; over budget, sorted runs spill to temp files and are k-way
//! merged. Sort is also a plan *zone boundary* (§6.1): everything upstream
//! completes before the first output row, letting downstream operators
//! reclaim upstream memory.

use crate::batch::{Batch, BATCH_SIZE};
use crate::memory::MemoryBudget;
use crate::operator::{BoxedOperator, Operator};
use std::collections::BinaryHeap;
use std::io::{Read as _, Write as _};
use vdb_types::codec::{Reader, Writer};
use vdb_types::schema::{compare_rows, SortKey};
use vdb_types::{DbResult, Row};

pub struct SortOp {
    input: Option<BoxedOperator>,
    keys: Vec<SortKey>,
    budget: MemoryBudget,
    /// In-memory sorted output (no spill) being drained.
    output: Vec<Row>,
    emitted: usize,
    /// Spilled runs being merged.
    merge: Option<RunMerger>,
    spilled_runs: usize,
}

impl SortOp {
    pub fn new(input: BoxedOperator, keys: Vec<SortKey>, budget: MemoryBudget) -> SortOp {
        SortOp {
            input: Some(input),
            keys,
            budget,
            output: Vec::new(),
            emitted: 0,
            merge: None,
            spilled_runs: 0,
        }
    }

    pub fn spilled_runs(&self) -> usize {
        self.spilled_runs
    }

    fn consume(&mut self) -> DbResult<()> {
        let mut input = self.input.take().expect("consume once");
        let mut buf: Vec<Row> = Vec::new();
        let mut bytes = 0usize;
        let mut runs: Vec<std::path::PathBuf> = Vec::new();
        let dir = std::env::temp_dir().join(format!(
            "vdb-sort-{}-{:p}",
            std::process::id(),
            self as *const _
        ));
        while let Some(batch) = input.next_batch()? {
            bytes += batch.approx_bytes();
            buf.extend(batch.into_rows());
            if self.budget.exceeded_by(bytes) {
                std::fs::create_dir_all(&dir)?;
                buf.sort_by(|a, b| compare_rows(a, b, &self.keys));
                let path = dir.join(format!("run{}.sort", runs.len()));
                write_run(&path, &buf)?;
                runs.push(path);
                buf.clear();
                bytes = 0;
            }
        }
        buf.sort_by(|a, b| compare_rows(a, b, &self.keys));
        if runs.is_empty() {
            self.output = buf;
            return Ok(());
        }
        if !buf.is_empty() {
            std::fs::create_dir_all(&dir)?;
            let path = dir.join(format!("run{}.sort", runs.len()));
            write_run(&path, &buf)?;
            runs.push(path);
        }
        self.spilled_runs = runs.len();
        self.merge = Some(RunMerger::new(runs, self.keys.clone(), Some(dir))?);
        Ok(())
    }
}

impl Operator for SortOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        if self.input.is_some() {
            self.consume()?;
        }
        if let Some(m) = &mut self.merge {
            let rows = m.next_rows(BATCH_SIZE)?;
            if rows.is_empty() {
                return Ok(None);
            }
            return Ok(Some(crate::batch::typed_batch_from_rows(rows)));
        }
        if self.emitted >= self.output.len() {
            return Ok(None);
        }
        let end = (self.emitted + BATCH_SIZE).min(self.output.len());
        let rows = self.output[self.emitted..end].to_vec();
        self.emitted = end;
        // Sorted output leaves the zone boundary as typed columns.
        Ok(Some(crate::batch::typed_batch_from_rows(rows)))
    }

    fn name(&self) -> String {
        format!("Sort({} keys)", self.keys.len())
    }
}

fn write_run(path: &std::path::Path, rows: &[Row]) -> DbResult<()> {
    let mut w = Writer::new();
    for row in rows {
        w.put_uvarint(row.len() as u64);
        for v in row {
            w.put_value(v);
        }
    }
    let bytes = w.into_bytes();
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Streaming k-way merge over sorted spill runs.
struct RunMerger {
    /// Fully buffered per-run cursors (runs are read back lazily in chunks
    /// would be ideal; for simplicity each run is decoded once, which still
    /// bounds *sorting* memory — the point of externalization here is that
    /// the sort working set was bounded).
    runs: Vec<std::vec::IntoIter<Row>>,
    keys: std::sync::Arc<Vec<SortKey>>,
    heap: BinaryHeap<HeapEntry>,
    cleanup_dir: Option<std::path::PathBuf>,
}

struct HeapEntry {
    row: Row,
    run: usize,
    keys: std::sync::Arc<Vec<SortKey>>,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for min-heap; tie-break by run index for stability.
        compare_rows(&other.row, &self.row, &self.keys).then(other.run.cmp(&self.run))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl RunMerger {
    fn new(
        paths: Vec<std::path::PathBuf>,
        keys: Vec<SortKey>,
        cleanup_dir: Option<std::path::PathBuf>,
    ) -> DbResult<RunMerger> {
        let mut runs = Vec::with_capacity(paths.len());
        for p in &paths {
            let mut bytes = Vec::new();
            std::fs::File::open(p)?.read_to_end(&mut bytes)?;
            let mut rows = Vec::new();
            let mut r = Reader::new(&bytes);
            while !r.is_empty() {
                let arity = r.get_uvarint()? as usize;
                let mut row = Vec::with_capacity(arity);
                for _ in 0..arity {
                    row.push(r.get_value()?);
                }
                rows.push(row);
            }
            let _ = std::fs::remove_file(p);
            runs.push(rows.into_iter());
        }
        let keys = std::sync::Arc::new(keys);
        let mut merger = RunMerger {
            runs,
            keys: keys.clone(),
            heap: BinaryHeap::new(),
            cleanup_dir,
        };
        for i in 0..merger.runs.len() {
            if let Some(row) = merger.runs[i].next() {
                merger.heap.push(HeapEntry {
                    row,
                    run: i,
                    keys: keys.clone(),
                });
            }
        }
        Ok(merger)
    }

    fn next_rows(&mut self, n: usize) -> DbResult<Vec<Row>> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let Some(entry) = self.heap.pop() else {
                if let Some(dir) = self.cleanup_dir.take() {
                    let _ = std::fs::remove_dir_all(dir);
                }
                break;
            };
            if let Some(next) = self.runs[entry.run].next() {
                self.heap.push(HeapEntry {
                    row: next,
                    run: entry.run,
                    keys: self.keys.clone(),
                });
            }
            out.push(entry.row);
        }
        Ok(out)
    }
}

/// LIMIT n (with optional OFFSET).
pub struct LimitOp {
    input: BoxedOperator,
    skip: usize,
    remaining: usize,
}

impl LimitOp {
    pub fn new(input: BoxedOperator, limit: usize, offset: usize) -> LimitOp {
        LimitOp {
            input,
            skip: offset,
            remaining: limit,
        }
    }
}

impl Operator for LimitOp {
    fn next_batch(&mut self) -> DbResult<Option<Batch>> {
        while self.remaining > 0 {
            let Some(batch) = self.input.next_batch()? else {
                return Ok(None);
            };
            let n = batch.len();
            let drop = self.skip.min(n);
            let take = (n - drop).min(self.remaining);
            self.skip -= drop;
            if take == 0 {
                continue;
            }
            self.remaining -= take;
            if drop == 0 && take == n {
                return Ok(Some(batch));
            }
            // Zero-copy: refine the batch's selection to the kept window
            // instead of pivoting and truncating rows.
            let mask: Vec<bool> = (0..n).map(|i| i >= drop && i < drop + take).collect();
            return Ok(Some(batch.into_filtered(&mask)));
        }
        Ok(None)
    }

    fn name(&self) -> String {
        format!("Limit({})", self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{collect_rows, ValuesOp};
    use vdb_types::Value;

    fn shuffled(n: i64) -> Vec<Row> {
        let mut x = 0x2545_f491u64;
        let mut rows: Vec<Row> = (0..n).map(|i| vec![Value::Integer(i)]).collect();
        // Fisher-Yates with xorshift.
        for i in (1..rows.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            rows.swap(i, (x as usize) % (i + 1));
        }
        rows
    }

    #[test]
    fn in_memory_sort() {
        let mut op = SortOp::new(
            Box::new(ValuesOp::from_rows(shuffled(5000))),
            vec![SortKey::asc(0)],
            MemoryBudget::unlimited(),
        );
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(op.spilled_runs(), 0);
        assert_eq!(rows.len(), 5000);
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn external_sort_spills_and_merges() {
        let mut op = SortOp::new(
            Box::new(ValuesOp::from_rows(shuffled(20_000))),
            vec![SortKey::asc(0)],
            MemoryBudget::new(32 * 1024),
        );
        let rows = collect_rows(&mut op).unwrap();
        assert!(op.spilled_runs() >= 2, "runs: {}", op.spilled_runs());
        assert_eq!(rows.len(), 20_000);
        assert!(rows.windows(2).all(|w| w[0] <= w[1]));
        // Exact content preserved.
        assert_eq!(rows[0], vec![Value::Integer(0)]);
        assert_eq!(rows[19_999], vec![Value::Integer(19_999)]);
    }

    #[test]
    fn descending_and_compound_keys() {
        let rows = vec![
            vec![Value::Integer(1), Value::Integer(5)],
            vec![Value::Integer(1), Value::Integer(9)],
            vec![Value::Integer(0), Value::Integer(3)],
        ];
        let mut op = SortOp::new(
            Box::new(ValuesOp::from_rows(rows)),
            vec![SortKey::asc(0), SortKey::desc(1)],
            MemoryBudget::unlimited(),
        );
        let got = collect_rows(&mut op).unwrap();
        assert_eq!(
            got,
            vec![
                vec![Value::Integer(0), Value::Integer(3)],
                vec![Value::Integer(1), Value::Integer(9)],
                vec![Value::Integer(1), Value::Integer(5)],
            ]
        );
    }

    #[test]
    fn limit_and_offset() {
        let mut op = LimitOp::new(
            Box::new(ValuesOp::from_rows(
                (0..100).map(|i| vec![Value::Integer(i)]).collect(),
            )),
            5,
            10,
        );
        let rows = collect_rows(&mut op).unwrap();
        assert_eq!(
            rows,
            (10..15)
                .map(|i| vec![Value::Integer(i)])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn limit_zero() {
        let mut op = LimitOp::new(
            Box::new(ValuesOp::from_rows(vec![vec![Value::Integer(1)]])),
            0,
            0,
        );
        assert!(collect_rows(&mut op).unwrap().is_empty());
    }
}
