//! Sideways Information Passing (§6.1).
//!
//! "Special SIP filters are built during optimizer planning and placed in
//! the Scan operator. At run time, the Scan has access to the Join's hash
//! table and the SIP filters are used to evaluate whether the outer key
//! values exist in the hash table." In the pull model the hash join fully
//! builds its hash table before pulling the probe side, so by the time the
//! probe-side Scan runs, the filter is populated.

use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;
use vdb_types::Value;

/// A shared key-membership filter: the join build side fills it; the
/// probe-side scan consults it.
#[derive(Debug, Default)]
pub struct SipFilter {
    /// `None` until the build side publishes; scans pass everything until
    /// then (correctness never depends on SIP).
    keys: RwLock<Option<HashSet<u64>>>,
}

impl SipFilter {
    pub fn new() -> Arc<SipFilter> {
        Arc::new(SipFilter::default())
    }

    /// Combined hash of a multi-column key.
    pub fn key_hash(key: &[&Value]) -> u64 {
        let mut h: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        for v in key {
            h = Self::fold(h, v.hash64());
        }
        h
    }

    #[inline]
    fn fold(h: u64, value_hash: u64) -> u64 {
        h.rotate_left(23).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ value_hash
    }

    /// `key_hash` of a single-column key given the value's
    /// [`Value::hash64`] — lets typed vectors probe without constructing a
    /// `Value` (pair with `Value::hash64_of_i64` and friends).
    pub fn key_hash_of_one(value_hash: u64) -> u64 {
        Self::fold(0x51_7c_c1_b7_27_22_0a_95, value_hash)
    }

    /// Single-column membership by precomputed `Value::hash64`.
    pub fn might_contain_one_hash(&self, value_hash: u64) -> bool {
        match self.keys.read().as_ref() {
            None => true,
            Some(set) => set.contains(&Self::key_hash_of_one(value_hash)),
        }
    }

    /// Publish the build side's key set.
    pub fn publish(&self, keys: HashSet<u64>) {
        *self.keys.write() = Some(keys);
    }

    /// Publish from an iterator of precomputed [`SipFilter::key_hash`]
    /// values (the parallel join's merge barrier streams per-partition key
    /// hashes without materializing an intermediate set per partition).
    pub fn publish_iter(&self, keys: impl IntoIterator<Item = u64>) {
        self.publish(keys.into_iter().collect());
    }

    pub fn is_ready(&self) -> bool {
        self.keys.read().is_some()
    }

    /// Might this key exist on the build side? `true` when not yet ready.
    pub fn might_contain(&self, key: &[&Value]) -> bool {
        match self.keys.read().as_ref() {
            None => true,
            Some(set) => set.contains(&Self::key_hash(key)),
        }
    }

    /// Single-column fast path: no slice allocation per row.
    pub fn might_contain_one(&self, key: &Value) -> bool {
        match self.keys.read().as_ref() {
            None => true,
            Some(set) => set.contains(&Self::key_hash(std::slice::from_ref(&key))),
        }
    }

    /// Number of build keys, if published (scan uses this to skip SIP when
    /// it would not be selective).
    pub fn key_count(&self) -> Option<usize> {
        self.keys.read().as_ref().map(HashSet::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_everything_until_ready() {
        let f = SipFilter::new();
        assert!(!f.is_ready());
        assert!(f.might_contain(&[&Value::Integer(42)]));
    }

    #[test]
    fn filters_after_publish() {
        let f = SipFilter::new();
        let mut keys = HashSet::new();
        keys.insert(SipFilter::key_hash(&[&Value::Integer(1)]));
        keys.insert(SipFilter::key_hash(&[&Value::Integer(3)]));
        f.publish(keys);
        assert!(f.is_ready());
        assert!(f.might_contain(&[&Value::Integer(1)]));
        assert!(!f.might_contain(&[&Value::Integer(2)]));
        assert_eq!(f.key_count(), Some(2));
    }

    #[test]
    fn hash_based_probe_agrees_with_value_probe() {
        let f = SipFilter::new();
        let mut keys = HashSet::new();
        keys.insert(SipFilter::key_hash(&[&Value::Integer(5)]));
        f.publish(keys);
        assert!(f.might_contain_one_hash(Value::hash64_of_i64(5)));
        assert!(!f.might_contain_one_hash(Value::hash64_of_i64(6)));
        assert_eq!(
            SipFilter::key_hash_of_one(Value::Integer(5).hash64()),
            SipFilter::key_hash(&[&Value::Integer(5)])
        );
    }

    #[test]
    fn multi_column_keys() {
        let f = SipFilter::new();
        let a = Value::Integer(1);
        let b = Value::Varchar("x".into());
        let mut keys = HashSet::new();
        keys.insert(SipFilter::key_hash(&[&a, &b]));
        f.publish(keys);
        assert!(f.might_contain(&[&a, &b]));
        assert!(!f.might_contain(&[&b, &a]), "key order matters");
    }
}
