//! Operator memory budgets (§6.1).
//!
//! "During query compile time, each operator is given a memory budget based
//! on the resources available given a user defined workload policy ... All
//! operators are capable of handling arbitrary sized inputs, regardless of
//! the memory allocated, by externalizing their buffers to disk." Budgets
//! here are advisory byte counts; stateful operators check them and spill.

/// Byte budget handed to one stateful operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryBudget {
    pub bytes: usize,
}

impl MemoryBudget {
    pub fn new(bytes: usize) -> MemoryBudget {
        MemoryBudget { bytes }
    }

    /// Effectively-unbounded budget (tests, small queries).
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget { bytes: usize::MAX }
    }

    pub fn exceeded_by(&self, used: usize) -> bool {
        used > self.bytes
    }
}

impl Default for MemoryBudget {
    fn default() -> MemoryBudget {
        MemoryBudget::new(64 << 20)
    }
}

/// Workload policy: how a query's total memory is split across its
/// stateful operators, with plan-zone awareness — "downstream operators are
/// able to reclaim resources previously used by upstream operators"
/// because a Sort (a zone boundary) ends the upstream zone.
#[derive(Debug, Clone, Copy)]
pub struct ResourcePolicy {
    /// Total memory for one query.
    pub query_bytes: usize,
}

impl Default for ResourcePolicy {
    fn default() -> ResourcePolicy {
        ResourcePolicy {
            query_bytes: 256 << 20,
        }
    }
}

impl ResourcePolicy {
    /// Budget for each of `stateful_ops` operators that can be live at the
    /// same time within one zone.
    pub fn per_operator(&self, stateful_ops: usize) -> MemoryBudget {
        MemoryBudget::new(self.query_bytes / stateful_ops.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_checks() {
        let b = MemoryBudget::new(100);
        assert!(!b.exceeded_by(100));
        assert!(b.exceeded_by(101));
        assert!(!MemoryBudget::unlimited().exceeded_by(usize::MAX - 1));
    }

    #[test]
    fn policy_splits_across_operators() {
        let p = ResourcePolicy { query_bytes: 100 };
        assert_eq!(p.per_operator(4).bytes, 25);
        assert_eq!(p.per_operator(0).bytes, 100);
    }
}
