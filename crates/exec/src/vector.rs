//! Typed column vectors, RLE vectors, and selection vectors — the §6.1
//! "operate directly on encoded data" layer of the executor.
//!
//! A [`TypedVector`] stores one batch column in a native buffer
//! (`Vec<i64>`/`Vec<f64>`, a [`Bitmap`] for booleans, dictionary codes for
//! strings) plus a validity bitmap for SQL NULLs. An [`RleVector`] keeps
//! run-length-encoded columns first-class, with cached prefix offsets so
//! `len` is O(1) and point access is O(log runs). A [`SelectionVector`]
//! lists surviving row positions, so filters, SIP and delete-vector
//! visibility mark survivors without materializing a single value.
//!
//! The `Value`-per-cell representation remains the compatibility edge:
//! [`TypedVector::to_values`] / [`TypedVector::from_values`] convert at the
//! boundary where row-pivoting operators (join, sort, exchange, analytic)
//! take over.

use std::sync::Arc;
use vdb_types::{DataType, StringDictionary, Value};

// ---------------------------------------------------------------------------
// Bitmap
// ---------------------------------------------------------------------------

/// A fixed-length bit vector (64-bit words, LSB-first).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    pub fn new_filled(len: usize, value: bool) -> Bitmap {
        let word = if value { u64::MAX } else { 0 };
        Bitmap {
            words: vec![word; len.div_ceil(64)],
            len,
        }
    }

    pub fn from_bools(bits: impl IntoIterator<Item = bool>) -> Bitmap {
        let mut b = Bitmap::default();
        for bit in bits {
            b.push(bit);
        }
        b
    }

    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / 64] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    pub fn set(&mut self, i: usize, bit: bool) {
        debug_assert!(i < self.len);
        if bit {
            self.words[i / 64] |= 1 << (i % 64);
        } else {
            self.words[i / 64] &= !(1 << (i % 64));
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        // Mask the tail beyond `len` (push never sets those bits, but set()
        // after a truncation could; cheap to be safe).
        let mut total = 0usize;
        for (w, &word) in self.words.iter().enumerate() {
            let bits_here = (self.len - w * 64).min(64);
            let mask = if bits_here == 64 {
                u64::MAX
            } else {
                (1u64 << bits_here) - 1
            };
            total += (word & mask).count_ones() as usize;
        }
        total
    }

    /// Gather the bits at `indices` into a new bitmap.
    pub fn gather(&self, indices: &[u32]) -> Bitmap {
        Bitmap::from_bools(indices.iter().map(|&i| self.get(i as usize)))
    }
}

/// Build a validity bitmap (bit set = non-NULL) from an on-disk null bitmap
/// (bit set = NULL, byte-based). `None` when there are no nulls.
pub fn validity_from_null_bitmap(nulls: Option<&[u8]>, len: usize) -> Option<Bitmap> {
    nulls.map(|bitmap| Bitmap::from_bools((0..len).map(|i| bitmap[i / 8] & (1 << (i % 8)) == 0)))
}

// ---------------------------------------------------------------------------
// SelectionVector
// ---------------------------------------------------------------------------

/// Sorted physical row positions that survive filtering. Absence of a
/// selection vector (the `Option<SelectionVector>` on a batch) means "all
/// rows".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionVector {
    indices: Vec<u32>,
}

impl SelectionVector {
    pub fn new(indices: Vec<u32>) -> SelectionVector {
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        SelectionVector { indices }
    }

    pub fn from_mask(mask: &[bool]) -> SelectionVector {
        SelectionVector {
            indices: mask
                .iter()
                .enumerate()
                .filter_map(|(i, &keep)| keep.then_some(i as u32))
                .collect(),
        }
    }

    /// The identity selection over `len` rows.
    pub fn identity(len: usize) -> SelectionVector {
        SelectionVector {
            indices: (0..len as u32).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.indices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.indices.iter().map(|&i| i as usize)
    }

    /// Physical index of logical row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> usize {
        self.indices[i] as usize
    }

    /// Keep only the positions whose *logical* index passes `mask`
    /// (composing a downstream filter with this selection).
    pub fn refine_by_mask(&self, mask: &[bool]) -> SelectionVector {
        debug_assert_eq!(mask.len(), self.indices.len());
        SelectionVector {
            indices: self
                .indices
                .iter()
                .zip(mask)
                .filter_map(|(&p, &keep)| keep.then_some(p))
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// TypedVector
// ---------------------------------------------------------------------------

/// Native payload of a typed vector.
#[derive(Debug, Clone, PartialEq)]
pub enum VectorData {
    Int64(Vec<i64>),
    Timestamp(Vec<i64>),
    Float64(Vec<f64>),
    Bool(Bitmap),
    /// Dictionary-coded strings; the dictionary is shared (`Arc`) so
    /// copying a column copies no string bytes.
    Dict {
        dict: Arc<StringDictionary>,
        codes: Vec<u32>,
    },
}

/// One batch column in type-native form with a validity bitmap
/// (`None` = no NULLs; bit set = value present).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedVector {
    data: VectorData,
    validity: Option<Bitmap>,
}

impl TypedVector {
    pub fn new(data: VectorData, validity: Option<Bitmap>) -> TypedVector {
        if let Some(v) = &validity {
            debug_assert_eq!(v.len(), data_len(&data));
        }
        TypedVector { data, validity }
    }

    pub fn data(&self) -> &VectorData {
        &self.data
    }

    /// Decompose into the native payload and validity bitmap (used by the
    /// vectorized expression engine to move buffers without cloning).
    pub fn into_parts(self) -> (VectorData, Option<Bitmap>) {
        (self.data, self.validity)
    }

    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    pub fn len(&self) -> usize {
        data_len(&self.data)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical column type.
    pub fn data_type(&self) -> DataType {
        match &self.data {
            VectorData::Int64(_) => DataType::Integer,
            VectorData::Timestamp(_) => DataType::Timestamp,
            VectorData::Float64(_) => DataType::Float,
            VectorData::Bool(_) => DataType::Boolean,
            VectorData::Dict { .. } => DataType::Varchar,
        }
    }

    /// Is row `i` non-NULL?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.get(i))
    }

    /// Number of NULLs.
    pub fn null_count(&self) -> usize {
        match &self.validity {
            None => 0,
            Some(v) => v.len() - v.count_ones(),
        }
    }

    /// [`Value::hash64`] of row `i` computed natively — no `Value` is
    /// constructed. NULL rows hash as [`Value::hash64_null`]. Used by the
    /// SIP probes and the parallel hash join's typed probe path.
    #[inline]
    pub fn hash64_at(&self, i: usize) -> u64 {
        if !self.is_valid(i) {
            return Value::hash64_null();
        }
        match &self.data {
            VectorData::Int64(v) | VectorData::Timestamp(v) => Value::hash64_of_i64(v[i]),
            VectorData::Float64(v) => Value::hash64_of_f64(v[i]),
            VectorData::Bool(b) => Value::hash64_of_i64(i64::from(b.get(i))),
            VectorData::Dict { dict, codes } => Value::hash64_of_str(dict.get(codes[i])),
        }
    }

    /// Value at row `i` (constructs a `Value`; the compatibility edge).
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            VectorData::Int64(v) => Value::Integer(v[i]),
            VectorData::Timestamp(v) => Value::Timestamp(v[i]),
            VectorData::Float64(v) => Value::Float(v[i]),
            VectorData::Bool(b) => Value::Boolean(b.get(i)),
            VectorData::Dict { dict, codes } => Value::Varchar(dict.get(codes[i]).to_string()),
        }
    }

    /// Expand the whole vector to values.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.value_at(i)).collect()
    }

    /// Gather the values at `indices`.
    pub fn gather_values(&self, indices: &[u32]) -> Vec<Value> {
        indices.iter().map(|&i| self.value_at(i as usize)).collect()
    }

    /// Gather rows at `indices` into a new vector of the same type.
    pub fn filter(&self, sel: &SelectionVector) -> TypedVector {
        let idx = sel.indices();
        let data = match &self.data {
            VectorData::Int64(v) => VectorData::Int64(idx.iter().map(|&i| v[i as usize]).collect()),
            VectorData::Timestamp(v) => {
                VectorData::Timestamp(idx.iter().map(|&i| v[i as usize]).collect())
            }
            VectorData::Float64(v) => {
                VectorData::Float64(idx.iter().map(|&i| v[i as usize]).collect())
            }
            VectorData::Bool(b) => VectorData::Bool(b.gather(idx)),
            VectorData::Dict { dict, codes } => VectorData::Dict {
                dict: dict.clone(),
                codes: idx.iter().map(|&i| codes[i as usize]).collect(),
            },
        };
        let validity = self.validity.as_ref().map(|v| v.gather(idx));
        TypedVector { data, validity }
    }

    /// Build a typed vector from homogeneous values (NULLs allowed), taking
    /// ownership so `Varchar` strings move into the dictionary. Returns the
    /// input back when the values are mixed-type or all NULL.
    pub fn from_owned_values(values: Vec<Value>) -> Result<TypedVector, Vec<Value>> {
        let Some(ty) = values.iter().find_map(Value::data_type) else {
            return Err(values); // empty or all NULL: nothing to specialize on
        };
        if values
            .iter()
            .any(|v| !v.is_null() && v.data_type() != Some(ty))
        {
            return Err(values);
        }
        let n = values.len();
        let has_nulls = values.iter().any(Value::is_null);
        let validity = has_nulls.then(|| Bitmap::from_bools(values.iter().map(|v| !v.is_null())));
        let data = match ty {
            DataType::Integer => VectorData::Int64(
                values
                    .iter()
                    .map(|v| v.as_i64().unwrap_or_default())
                    .collect(),
            ),
            DataType::Timestamp => VectorData::Timestamp(
                values
                    .iter()
                    .map(|v| v.as_i64().unwrap_or_default())
                    .collect(),
            ),
            DataType::Float => VectorData::Float64(
                values
                    .iter()
                    .map(|v| v.as_f64().unwrap_or_default())
                    .collect(),
            ),
            DataType::Boolean => VectorData::Bool(Bitmap::from_bools(
                values.iter().map(|v| v.as_bool().unwrap_or_default()),
            )),
            DataType::Varchar => {
                let mut dict = StringDictionary::new();
                let mut codes = Vec::with_capacity(n);
                for v in values {
                    match v {
                        Value::Varchar(s) => codes.push(dict.intern_owned(s)),
                        _ => codes.push(0), // NULL padding; validity masks it
                    }
                }
                return Ok(TypedVector {
                    data: VectorData::Dict {
                        dict: Arc::new(dict),
                        codes,
                    },
                    validity,
                });
            }
        };
        Ok(TypedVector { data, validity })
    }

    /// Borrowing variant of [`TypedVector::from_owned_values`].
    pub fn from_values(values: &[Value]) -> Option<TypedVector> {
        TypedVector::from_owned_values(values.to_vec()).ok()
    }
}

fn data_len(data: &VectorData) -> usize {
    match data {
        VectorData::Int64(v) | VectorData::Timestamp(v) => v.len(),
        VectorData::Float64(v) => v.len(),
        VectorData::Bool(b) => b.len(),
        VectorData::Dict { codes, .. } => codes.len(),
    }
}

// ---------------------------------------------------------------------------
// RleVector
// ---------------------------------------------------------------------------

/// A run-length-encoded column kept first-class: `(value, run_length)`
/// pairs plus cached prefix offsets, so `len` is O(1) and point access is
/// a binary search instead of a linear run walk.
#[derive(Debug, Clone)]
pub struct RleVector {
    runs: Vec<(Value, u32)>,
    /// `offsets[i]` = first row of run `i`; a final entry holds the total.
    offsets: Vec<u64>,
}

impl PartialEq for RleVector {
    fn eq(&self, other: &RleVector) -> bool {
        self.runs == other.runs
    }
}

impl RleVector {
    pub fn new(runs: Vec<(Value, u32)>) -> RleVector {
        let mut offsets = Vec::with_capacity(runs.len() + 1);
        let mut total = 0u64;
        for (_, n) in &runs {
            offsets.push(total);
            total += u64::from(*n);
        }
        offsets.push(total);
        RleVector { runs, offsets }
    }

    /// Total row count — O(1) from the cached offsets.
    pub fn len(&self) -> usize {
        *self.offsets.last().unwrap_or(&0) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn runs(&self) -> &[(Value, u32)] {
        &self.runs
    }

    pub fn into_runs(self) -> Vec<(Value, u32)> {
        self.runs
    }

    /// Start row of run `ri`.
    pub fn run_start(&self, ri: usize) -> usize {
        self.offsets[ri] as usize
    }

    /// Value at row `i` — O(log runs) via the cached prefix offsets.
    pub fn value_at(&self, i: usize) -> &Value {
        assert!(i < self.len(), "row {i} out of bounds for rle vector");
        // partition_point returns the first offset > i; its predecessor is
        // the run containing i.
        let ri = self.offsets.partition_point(|&o| o <= i as u64) - 1;
        &self.runs[ri].0
    }

    /// Expand to plain values (cloning run values).
    pub fn to_values(&self) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.len());
        for (v, n) in &self.runs {
            for _ in 0..*n {
                out.push(v.clone());
            }
        }
        out
    }

    /// Gather values at physical `indices` (sorted): O(indices + runs).
    pub fn gather_values(&self, indices: &[u32]) -> Vec<Value> {
        let mut out = Vec::with_capacity(indices.len());
        let mut ri = 0usize;
        for &i in indices {
            let i = u64::from(i);
            // indices are sorted, so the run pointer only moves forward.
            while self.offsets[ri + 1] <= i {
                ri += 1;
            }
            out.push(self.runs[ri].0.clone());
        }
        out
    }

    /// New RLE vector holding only the rows in `sel` — runs survive with
    /// shortened lengths (never expanded), empty runs are dropped.
    pub fn filter(&self, sel: &SelectionVector) -> RleVector {
        let mut out: Vec<(Value, u32)> = Vec::new();
        let mut ri = 0usize;
        let mut last_ri = usize::MAX;
        for i in sel.iter() {
            let i = i as u64;
            while self.offsets[ri + 1] <= i {
                ri += 1;
            }
            if ri == last_ri {
                // Same run as the previous survivor: extend, no value
                // comparison needed.
                out.last_mut().unwrap().1 += 1;
            } else {
                out.push((self.runs[ri].0.clone(), 1));
                last_ri = ri;
            }
        }
        RleVector::new(out)
    }

    /// Keep rows where `mask[i]`, preserving run structure.
    pub fn filter_mask(&self, mask: &[bool]) -> RleVector {
        debug_assert_eq!(mask.len(), self.len());
        let mut out: Vec<(Value, u32)> = Vec::new();
        let mut pos = 0usize;
        for (v, n) in &self.runs {
            let kept = mask[pos..pos + *n as usize].iter().filter(|&&b| b).count() as u32;
            if kept > 0 {
                out.push((v.clone(), kept));
            }
            pos += *n as usize;
        }
        RleVector::new(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::from_bools([true, false, true]);
        assert_eq!(b.len(), 3);
        assert!(b.get(0) && !b.get(1) && b.get(2));
        assert_eq!(b.count_ones(), 2);
        b.set(1, true);
        assert_eq!(b.count_ones(), 3);
        let big = Bitmap::new_filled(130, true);
        assert_eq!(big.count_ones(), 130);
    }

    #[test]
    fn selection_from_mask_and_refine() {
        let sel = SelectionVector::from_mask(&[true, false, true, true]);
        assert_eq!(sel.indices(), &[0, 2, 3]);
        let refined = sel.refine_by_mask(&[false, true, true]);
        assert_eq!(refined.indices(), &[2, 3]);
    }

    #[test]
    fn typed_round_trip_with_nulls() {
        let vals = vec![Value::Integer(1), Value::Null, Value::Integer(3)];
        let tv = TypedVector::from_values(&vals).unwrap();
        assert_eq!(tv.len(), 3);
        assert_eq!(tv.null_count(), 1);
        assert_eq!(tv.to_values(), vals);
        assert_eq!(tv.value_at(1), Value::Null);
    }

    #[test]
    fn dict_vector_shares_strings() {
        let vals = vec![
            Value::Varchar("a".into()),
            Value::Varchar("b".into()),
            Value::Varchar("a".into()),
        ];
        let tv = TypedVector::from_values(&vals).unwrap();
        let VectorData::Dict { dict, codes } = tv.data() else {
            panic!("expected dict vector");
        };
        assert_eq!(dict.len(), 2);
        assert_eq!(codes, &[0, 1, 0]);
        assert_eq!(tv.to_values(), vals);
    }

    #[test]
    fn mixed_values_stay_plain() {
        let vals = vec![Value::Integer(1), Value::Varchar("x".into())];
        assert!(TypedVector::from_values(&vals).is_none());
        assert!(TypedVector::from_values(&[Value::Null, Value::Null]).is_none());
    }

    #[test]
    fn typed_filter_gathers() {
        let tv = TypedVector::from_values(&[
            Value::Integer(10),
            Value::Integer(20),
            Value::Null,
            Value::Integer(40),
        ])
        .unwrap();
        let sel = SelectionVector::new(vec![1, 2, 3]);
        let f = tv.filter(&sel);
        assert_eq!(
            f.to_values(),
            vec![Value::Integer(20), Value::Null, Value::Integer(40)]
        );
    }

    #[test]
    fn rle_offsets_cache_len_and_point_access() {
        let rv = RleVector::new(vec![
            (Value::Integer(7), 3),
            (Value::Integer(9), 2),
            (Value::Null, 4),
        ]);
        assert_eq!(rv.len(), 9);
        assert_eq!(rv.value_at(0), &Value::Integer(7));
        assert_eq!(rv.value_at(2), &Value::Integer(7));
        assert_eq!(rv.value_at(3), &Value::Integer(9));
        assert_eq!(rv.value_at(5), &Value::Null);
        assert_eq!(rv.value_at(8), &Value::Null);
    }

    #[test]
    fn rle_filter_preserves_runs() {
        let rv = RleVector::new(vec![(Value::Integer(1), 4), (Value::Integer(2), 4)]);
        // Keep rows 0,1,5 → runs (1,2),(2,1).
        let sel = SelectionVector::new(vec![0, 1, 5]);
        let f = rv.filter(&sel);
        assert_eq!(f.runs(), &[(Value::Integer(1), 2), (Value::Integer(2), 1)]);
        // Mask path: drop the whole first run.
        let f2 = rv.filter_mask(&[false, false, false, false, true, true, true, true]);
        assert_eq!(f2.runs(), &[(Value::Integer(2), 4)]);
        assert_eq!(f2.len(), 4);
    }
}
